//! Tests pinning the paper's qualitative claims — the *shape* of every
//! reported result (who wins, in which direction, and the microarchitecture
//! statistics the paper quotes). Magnitudes are asserted loosely; see
//! EXPERIMENTS.md for measured-vs-paper values.

use heterowire_bench::{run_one, run_suite, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator, TraceStats};

const SCALE: RunScale = RunScale {
    window: 12_000,
    warmup: 4_000,
};

fn suite_mean(model: InterconnectModel, topology: Topology, latency_scale: f64) -> f64 {
    let mut cfg = ProcessorConfig::for_model(model, topology);
    cfg.latency_scale = latency_scale;
    run_suite(&cfg, SCALE).mean_ipc()
}

#[test]
fn doubling_latency_degrades_performance() {
    // §1: "performance degrades by 12% when the inter-cluster latency is
    // doubled" — direction and a non-trivial magnitude.
    let base = suite_mean(InterconnectModel::I, Topology::crossbar4(), 1.0);
    let slow = suite_mean(InterconnectModel::I, Topology::crossbar4(), 2.0);
    let delta = slow / base - 1.0;
    assert!(delta < -0.015, "2x latency cost only {:.1}%", delta * 100.0);
}

#[test]
fn l_wires_help_and_help_more_when_wire_constrained() {
    // §5.3: +L-Wires helps at base latency; helps more at 2x latency.
    let base = suite_mean(InterconnectModel::I, Topology::crossbar4(), 1.0);
    let l = suite_mean(InterconnectModel::VII, Topology::crossbar4(), 1.0);
    let base2 = suite_mean(InterconnectModel::I, Topology::crossbar4(), 2.0);
    let l2 = suite_mean(InterconnectModel::VII, Topology::crossbar4(), 2.0);
    let gain = l / base - 1.0;
    let gain2 = l2 / base2 - 1.0;
    assert!(gain > 0.0, "L-Wires hurt at 1x: {:.2}%", gain * 100.0);
    assert!(
        gain2 > gain,
        "wire-constrained gain {:.2}% should beat base gain {:.2}%",
        gain2 * 100.0,
        gain * 100.0
    );
}

#[test]
fn sixteen_clusters_improve_single_thread_ipc() {
    // §5.3: 4 -> 16 clusters buys ~17% IPC on SPEC2000.
    let c4 = suite_mean(InterconnectModel::I, Topology::crossbar4(), 1.0);
    let c16 = suite_mean(InterconnectModel::I, Topology::hier16(), 1.0);
    assert!(
        c16 > c4 * 1.05,
        "16 clusters should clearly beat 4: {c16:.3} vs {c4:.3}"
    );
}

#[test]
fn pw_only_interconnect_degrades_ipc_but_saves_energy() {
    // Table 3, Model II vs Model I: slower but much cheaper dynamically.
    let p = by_name("crafty").expect("crafty");
    let base = run_one(
        ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4()),
        p,
        SCALE,
    );
    let pw = run_one(
        ProcessorConfig::for_model(InterconnectModel::II, Topology::crossbar4()),
        p,
        SCALE,
    );
    assert!(pw.ipc() < base.ipc());
    assert!(pw.net.dynamic_energy < base.net.dynamic_energy * 0.6);
}

#[test]
fn false_dependence_rate_stays_under_paper_bound() {
    // §4: "false dependences were encountered for fewer than 9% of all
    // loads when employing eight LS bits".
    let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    let suite = run_suite(&cfg, SCALE);
    let (fd, loads) = suite.runs.iter().fold((0u64, 0u64), |(f, l), r| {
        (f + r.lsq.false_dependences, l + r.lsq.loads)
    });
    let rate = fd as f64 / loads as f64;
    assert!(rate < 0.09, "false dependence rate {rate}");
    assert!(fd > 0, "the partial comparison should see some conflicts");
}

#[test]
fn narrow_predictor_matches_paper_quality() {
    // §4: 8K 2-bit counters identify ~95% of narrow results with ~2% of
    // predicted-narrow values actually wide.
    let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    let suite = run_suite(
        &cfg,
        RunScale {
            window: 30_000,
            warmup: 10_000,
        },
    );
    let coverage =
        suite.runs.iter().map(|r| r.narrow_coverage).sum::<f64>() / suite.runs.len() as f64;
    let false_rate =
        suite.runs.iter().map(|r| r.narrow_false_rate).sum::<f64>() / suite.runs.len() as f64;
    assert!(coverage > 0.80, "coverage {coverage}");
    assert!(false_rate < 0.10, "false narrow rate {false_rate}");
}

#[test]
fn narrow_share_of_register_traffic_is_paper_like() {
    // §5.3: "Only 14% of all register traffic ... are integers between 0
    // and 1023."
    let mut narrow = 0u64;
    let mut int_results = 0u64;
    for p in spec2000() {
        let stats = TraceStats::from_ops(TraceGenerator::new(p, 3).take(20_000));
        narrow += stats.narrow_results;
        int_results += stats.int_results;
    }
    let share = narrow as f64 / int_results as f64;
    assert!((0.08..=0.25).contains(&share), "narrow share {share}");
}

#[test]
fn memory_fraction_justifies_double_width_cache_links() {
    // §4: "more than one third of all instructions are loads or stores".
    let mut mem = 0u64;
    let mut total = 0u64;
    for p in spec2000() {
        let stats = TraceStats::from_ops(TraceGenerator::new(p, 5).take(10_000));
        mem += stats.loads + stats.stores;
        total += stats.total;
    }
    assert!(mem as f64 / total as f64 > 1.0 / 3.0);
}

#[test]
fn mcf_is_the_slowest_program() {
    // Figure 3's most prominent feature: mcf's memory-bound IPC floor.
    let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let suite = run_suite(&cfg, SCALE);
    let mcf_idx = suite.names.iter().position(|n| *n == "mcf").expect("mcf");
    let mcf_ipc = suite.runs[mcf_idx].ipc();
    for (i, r) in suite.runs.iter().enumerate() {
        if i != mcf_idx {
            assert!(
                r.ipc() > mcf_ipc,
                "{} ({}) should beat mcf ({})",
                suite.names[i],
                r.ipc(),
                mcf_ipc
            );
        }
    }
}
