//! Contract tests for the wire-fault injection and recovery subsystem:
//!
//! * a seeded [`FaultSpec`] is bit-reproducible — two runs with the same
//!   spec give identical `SimResults` AND identical fault-event probe
//!   sequences, on the 4-cluster crossbar and a generated 16-cluster ring;
//! * a zero-rate injector (faults *armed* but never firing) is
//!   bit-identical to the fault-free baseline, so the enabled fault path
//!   is behaviour-neutral until a fault actually fires;
//! * permanently stuck lanes retire capacity from the live link and the
//!   policies steer against what survives; retiring the last full-width
//!   plane is refused up front;
//! * a guaranteed retry storm (B-only link, B error rate 1.0) trips the
//!   forward-progress watchdog, which returns a structured [`StallReport`]
//!   through `try_run` and mirrors it through the telemetry probe;
//! * the `fault_sweep` binary exits 2 on malformed fault grammar.

use heterowire_bench::{degraded_config, run_one_policy_faults, PolicyKind, RunScale, SEED};
use heterowire_core::{
    FaultSpec, InterconnectModel, ModelSpec, NullProbe, PaperPolicy, Probe, Processor,
    ProcessorConfig, SimResults, StallReport,
};
use heterowire_interconnect::{Topology, TopologySpec};
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::WireClass;
use std::sync::Arc;

/// Records every fault-protocol probe event with its full payload, plus
/// any watchdog stall report.
#[derive(Debug, Default, Clone, PartialEq)]
struct FaultProbe {
    /// `(cycle, id, class, attempt, is_retransmit)` in emission order.
    events: Vec<(u64, u64, WireClass, u32, bool)>,
    stalls: Vec<String>,
}

impl Probe for FaultProbe {
    fn fault_detected(&mut self, cycle: u64, id: u64, class: WireClass, attempt: u32) {
        self.events.push((cycle, id, class, attempt, false));
    }

    fn retransmit(&mut self, cycle: u64, id: u64, class: WireClass, attempt: u32) {
        self.events.push((cycle, id, class, attempt, true));
    }

    fn stall(&mut self, report: &StallReport) {
        self.stalls.push(report.to_string());
    }
}

fn fault_run(topology: Topology, spec: &str, bench: &str) -> (SimResults, FaultProbe) {
    let cfg = Arc::new(ProcessorConfig::for_model(InterconnectModel::X, topology));
    let trace = TraceGenerator::new(by_name(bench).expect("benchmark"), SEED);
    let inj = FaultSpec::parse(spec).expect("valid spec").injector();
    let policy = PaperPolicy::new(&cfg);
    let mut p = Processor::with_faults_shared(cfg, trace, FaultProbe::default(), policy, inj);
    // Zero warmup: probe events span the whole run, so the warmup-window
    // subtraction would break the probe-count == stats-count asserts.
    let r = p.run(4_000, 0);
    (r, p.probe().clone())
}

#[test]
fn seeded_fault_runs_are_bit_reproducible() {
    // Same spec + same seed, twice: SimResults (a Copy/PartialEq struct,
    // so f64s compare exactly) and the full fault-event sequence must be
    // identical. The ring exercises multi-hop corruption probabilities.
    for (topology, bench) in [
        (Topology::crossbar4(), "gzip"),
        (
            TopologySpec::parse("ring:4x4")
                .expect("valid shape")
                .topology(),
            "swim",
        ),
    ] {
        let spec = "l@2e-3+pw@2e-4+seed:1234";
        let (r1, p1) = fault_run(topology, spec, bench);
        let (r2, p2) = fault_run(topology, spec, bench);
        assert_eq!(r1, r2, "{topology:?}: SimResults diverged between runs");
        assert_eq!(
            p1.events, p2.events,
            "{topology:?}: fault-event sequences diverged"
        );
        assert!(
            r1.net.faults_detected > 0,
            "{topology:?}: the rate never fired — nothing was proved"
        );
        assert_eq!(
            p1.events.iter().filter(|e| !e.4).count() as u64,
            r1.net.faults_detected,
            "every detection must emit exactly one probe event"
        );
        assert_eq!(
            p1.events.iter().filter(|e| e.4).count() as u64,
            r1.net.retransmits,
            "every retransmission must emit exactly one probe event"
        );

        // A different fault seed must actually perturb the run.
        let (r3, _) = fault_run(topology, "l@2e-3+pw@2e-4+seed:1235", bench);
        assert_ne!(
            r1.net.faults_detected, r3.net.faults_detected,
            "{topology:?}: different fault seeds drew identical corruption"
        );
    }
}

#[test]
fn zero_rate_injector_matches_the_fault_free_baseline() {
    // `l@0` arms the whole fault path (InjectedFaults monomorphization,
    // per-delivery corruption checks, dseq-sorted drains) without ever
    // corrupting: results must be bit-identical to the default
    // NullFaultModel processor, retry counters all zero.
    let cfg = Arc::new(ProcessorConfig::for_model(
        InterconnectModel::X,
        Topology::crossbar4(),
    ));
    let trace = || TraceGenerator::new(by_name("gcc").expect("benchmark"), SEED);
    let baseline =
        Processor::with_policy_shared(cfg.clone(), trace(), NullProbe, PaperPolicy::new(&cfg))
            .run(4_000, 800);
    let inj = FaultSpec::parse("l@0+seed:9")
        .expect("valid spec")
        .injector();
    let armed =
        Processor::with_faults_shared(cfg.clone(), trace(), NullProbe, PaperPolicy::new(&cfg), inj)
            .run(4_000, 800);
    assert_eq!(baseline, armed, "an idle injector changed the simulation");
    assert_eq!(armed.net.faults_detected, 0);
    assert_eq!(armed.net.retransmits, 0);
    assert_eq!(armed.net.escalations, 0);
    assert_eq!(armed.net.retry_cycles, 0);
}

#[test]
fn try_run_matches_run_when_no_stall_occurs() {
    let cfg = Arc::new(ProcessorConfig::for_model(
        InterconnectModel::X,
        Topology::crossbar4(),
    ));
    let trace = || TraceGenerator::new(by_name("gap").expect("benchmark"), SEED);
    let ran =
        Processor::with_policy_shared(cfg.clone(), trace(), NullProbe, PaperPolicy::new(&cfg))
            .run(2_000, 400);
    let tried =
        Processor::with_policy_shared(cfg.clone(), trace(), NullProbe, PaperPolicy::new(&cfg))
            .try_run(2_000, 400)
            .expect("no stall in a healthy run");
    assert_eq!(ran, tried);
}

#[test]
fn retry_storm_trips_the_watchdog_with_a_structured_report() {
    // Model I has only B-Wires, and `b@1` corrupts every B transfer on
    // every attempt; escalation targets B, so the first operand transfer
    // retries forever and commit stops. The watchdog must surface a
    // structured report (not a bare panic string) through try_run and the
    // probe, with the retry storm visible in its counters.
    let cfg = Arc::new(ProcessorConfig::for_model(
        InterconnectModel::I,
        Topology::crossbar4(),
    ));
    let trace = TraceGenerator::new(by_name("gzip").expect("benchmark"), SEED);
    let inj = FaultSpec::parse("b@1+seed:5")
        .expect("valid spec")
        .injector();
    let policy = PaperPolicy::new(&cfg);
    let mut p = Processor::with_faults_shared(cfg, trace, FaultProbe::default(), policy, inj);
    let report = p
        .try_run(2_000, 400)
        .expect_err("a total B corruption rate cannot make progress");

    assert!(report.cycle > 0);
    assert!(
        report.retransmits > 0,
        "the stall was not a retry storm: {report}"
    );
    assert_eq!(
        report.escalations, 0,
        "a B-only link has no plane to escalate to"
    );
    assert!(report.faults_detected >= report.retransmits);
    let oldest = report
        .oldest_blocked
        .expect("a retry storm leaves a transfer at the arbitration head");
    assert_eq!(oldest.class, WireClass::B);
    assert!(oldest.attempt > 0, "the blocked transfer never retried");
    assert!(report.link.contains("B-Wires"), "link was {}", report.link);
    let text = report.to_string();
    assert!(
        text.contains("pipeline deadlock at cycle"),
        "Display lost the historical prefix: {text}"
    );

    // The probe saw the same report, once, before the abort.
    assert_eq!(p.probe().stalls.len(), 1);
    assert_eq!(p.probe().stalls[0], text);
}

#[test]
fn stuck_lanes_retire_capacity_and_policies_steer_around_them() {
    let model = ModelSpec::parse("X").expect("model X");
    let topology = Topology::crossbar4();
    let scale = RunScale {
        window: 2_000,
        warmup: 400,
    };

    // Retiring both L lanes removes the L plane: the run still completes,
    // with every would-be L transfer carried by the surviving planes.
    let spec = FaultSpec::parse("lane:L0@stuck+lane:L1@stuck").expect("valid spec");
    let degraded =
        degraded_config(&model, topology, Some(&spec)).expect("a B+PW link is still legal");
    assert_eq!(degraded.link.lanes(WireClass::L), 0);
    assert_eq!(degraded.link.lanes(WireClass::B), 2);
    let healthy = degraded_config(&model, topology, None).expect("baseline");
    let profile = by_name("gzip").expect("benchmark");
    let degraded_run = run_one_policy_faults(
        Arc::new(degraded),
        profile,
        scale,
        PolicyKind::Paper,
        Some(&spec),
    )
    .expect("a degraded link must still make progress");
    let healthy_run =
        run_one_policy_faults(Arc::new(healthy), profile, scale, PolicyKind::Paper, None)
            .expect("baseline run");
    let l = WireClass::L as usize;
    assert_eq!(
        degraded_run.net.transfers[l], 0,
        "transfers rode a retired plane"
    );
    assert!(
        healthy_run.net.transfers[l] > 0,
        "the healthy link never used L — the comparison is vacuous"
    );
    assert!(degraded_run.instructions > 0 && degraded_run.cycles > 0);

    // Retiring every full-width lane leaves register values no legal
    // plane: refused up front, not deadlocked at runtime.
    let model_i = ModelSpec::parse("I").expect("model I");
    let fatal = FaultSpec::parse("lane:B0@stuck+lane:B1@stuck").expect("valid spec");
    let err = degraded_config(&model_i, topology, Some(&fatal))
        .expect_err("a link with no full-width plane must be refused");
    assert!(
        err.contains("full-width") || err.contains("no legal plane"),
        "unhelpful refusal message: {err}"
    );
}

#[test]
fn fault_sweep_rejects_malformed_grammar_with_exit_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fault_sweep"))
        .args(["--faults", "l@two-in-ten-thousand"])
        .output()
        .expect("spawn fault_sweep");
    assert_eq!(out.status.code(), Some(2), "malformed spec must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("l@two-in-ten-thousand"),
        "diagnostic must name the bad token: {stderr}"
    );

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_fault_sweep"))
        .args(["--faults", "lane:L9@stuck"])
        .output()
        .expect("spawn fault_sweep");
    assert_eq!(
        out.status.code(),
        Some(2),
        "an out-of-range lane must be refused up front"
    );
}
