//! Integration tests over the Table-3/4 sweep machinery: the energy model,
//! normalisation, and the orderings that define the paper's conclusions.

use heterowire_bench::{model_sweep, RunScale};
use heterowire_core::InterconnectModel;
use heterowire_interconnect::Topology;

fn quick_rows() -> Vec<heterowire_bench::ModelRow> {
    model_sweep(
        Topology::crossbar4(),
        RunScale {
            window: 6_000,
            warmup: 2_000,
        },
    )
}

#[test]
fn sweep_covers_all_ten_models_in_order() {
    let rows = quick_rows();
    assert_eq!(rows.len(), 10);
    for (row, model) in rows.iter().zip(InterconnectModel::ALL) {
        assert_eq!(row.model.as_preset(), Some(model));
        // Every preset row's token re-parses to the same spec.
        assert_eq!(
            heterowire_core::ModelSpec::parse(&row.model.name()).unwrap(),
            row.model
        );
    }
}

#[test]
fn model_i_is_the_normalisation_point() {
    let rows = quick_rows();
    let m1 = &rows[0];
    assert!((m1.at_10.rel_ic_dynamic - 100.0).abs() < 1e-6);
    assert!((m1.at_10.rel_ic_leakage - 100.0).abs() < 1e-6);
    assert!((m1.at_10.rel_processor_energy - 100.0).abs() < 1e-6);
    assert!((m1.at_10.rel_ed2 - 100.0).abs() < 1e-6);
    assert!((m1.at_20.rel_ed2 - 100.0).abs() < 1e-6);
}

#[test]
fn table3_orderings_hold() {
    let rows = quick_rows();
    let get = |m: InterconnectModel| {
        rows.iter()
            .find(|r| r.model.as_preset() == Some(m))
            .expect("present")
    };

    // PW-only (II) saves roughly half the interconnect dynamic energy.
    let m2 = get(InterconnectModel::II);
    assert!(
        m2.at_10.rel_ic_dynamic < 65.0,
        "{}",
        m2.at_10.rel_ic_dynamic
    );
    // ... at an IPC cost vs Model I.
    assert!(m2.at_10.ipc < get(InterconnectModel::I).at_10.ipc);

    // Leakage scales with the wire inventory: VIII (432 B) ~3x Model I.
    let m8 = get(InterconnectModel::VIII);
    assert!(
        (250.0..350.0).contains(&m8.at_10.rel_ic_leakage),
        "{}",
        m8.at_10.rel_ic_leakage
    );

    // More wires never hurt IPC: IV >= I, VIII >= IV (within tolerance).
    let (i, iv, viii) = (
        get(InterconnectModel::I).at_10.ipc,
        get(InterconnectModel::IV).at_10.ipc,
        get(InterconnectModel::VIII).at_10.ipc,
    );
    assert!(iv >= i * 0.995, "IV {iv} vs I {i}");
    assert!(viii >= iv * 0.995, "VIII {viii} vs IV {iv}");

    // The heterogeneous models III and VI beat their homogeneous
    // same-power cousin II on IPC (the L-plane wins back the PW loss).
    assert!(get(InterconnectModel::III).at_10.ipc >= m2.at_10.ipc);
    assert!(get(InterconnectModel::VI).at_10.ipc >= m2.at_10.ipc);
}

#[test]
fn a_heterogeneous_model_wins_ed2() {
    // The paper's central conclusion: the best ED2 belongs to a
    // heterogeneous interconnect, not a homogeneous one.
    let rows = quick_rows();
    let homogeneous = [
        InterconnectModel::I,
        InterconnectModel::II,
        InterconnectModel::IV,
        InterconnectModel::VIII,
    ];
    let best = rows
        .iter()
        .min_by(|a, b| a.at_20.rel_ed2.total_cmp(&b.at_20.rel_ed2))
        .expect("rows");
    let best_preset = best
        .model
        .as_preset()
        .expect("paper sweep rows are presets");
    assert!(
        !homogeneous.contains(&best_preset),
        "best ED2(20%) model was homogeneous: {}",
        best.model.label()
    );
    assert!(best.at_20.rel_ed2 < 100.0, "{}", best.at_20.rel_ed2);
}

#[test]
fn metal_area_column_matches_the_paper() {
    let rows = quick_rows();
    let areas: Vec<f64> = rows.iter().map(|r| r.metal_area).collect();
    assert_eq!(
        areas,
        vec![1.0, 1.0, 1.5, 2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
    );
}
