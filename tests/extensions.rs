//! Integration tests for the paper-discussed extensions (frequent-value
//! compaction, L2 critical-word-first, transmission-line L-Wires) running
//! in the full pipeline.

use heterowire_bench::{run_one, RunScale};
use heterowire_core::{Extensions, InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;
use heterowire_wires::WireClass;

const SCALE: RunScale = RunScale {
    window: 10_000,
    warmup: 3_000,
};

fn run_with(ext: Extensions, latency_scale: f64, bench: &str) -> heterowire_core::SimResults {
    let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    cfg.extensions = ext;
    cfg.latency_scale = latency_scale;
    run_one(cfg, by_name(bench).expect("benchmark"), SCALE)
}

#[test]
fn extensions_are_off_by_default() {
    let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    assert_eq!(cfg.extensions, Extensions::default());
    assert!(!cfg.extensions.frequent_value);
    assert!(!cfg.extensions.l2_critical_word);
    assert!(!cfg.extensions.transmission_lines);
}

#[test]
fn all_extensions_compose() {
    let all = Extensions {
        frequent_value: true,
        l2_critical_word: true,
        transmission_lines: true,
    };
    let base = run_with(Extensions::default(), 2.0, "mcf");
    let ext = run_with(all, 2.0, "mcf");
    assert!(
        ext.ipc() >= base.ipc(),
        "all extensions together should not lose: {} vs {}",
        ext.ipc(),
        base.ipc()
    );
}

#[test]
fn transmission_lines_cut_l_plane_energy() {
    let base = run_with(Extensions::default(), 1.0, "gcc");
    let tl = run_with(
        Extensions {
            transmission_lines: true,
            ..Extensions::default()
        },
        1.0,
        "gcc",
    );
    // Same traffic pattern, cheaper L bits.
    assert!(tl.net.dynamic_energy < base.net.dynamic_energy);
    // The saving is bounded by the L plane's share of energy.
    assert!(tl.net.dynamic_energy > base.net.dynamic_energy * 0.5);
}

#[test]
fn critical_word_first_requires_l_wires() {
    // On Model I (no L plane) the CWF flag must be inert.
    let mut with = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    with.extensions.l2_critical_word = true;
    let without = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let a = run_one(with, by_name("mcf").expect("mcf"), SCALE);
    let b = run_one(without, by_name("mcf").expect("mcf"), SCALE);
    assert_eq!(
        a.cycles, b.cycles,
        "CWF without L-Wires must change nothing"
    );
}

#[test]
fn frequent_value_never_reduces_l_traffic() {
    let base = run_with(Extensions::default(), 1.0, "twolf");
    let fvc = run_with(
        Extensions {
            frequent_value: true,
            ..Extensions::default()
        },
        1.0,
        "twolf",
    );
    let l = WireClass::ALL
        .iter()
        .position(|&c| c == WireClass::L)
        .unwrap();
    assert!(fvc.net.transfers[l] >= base.net.transfers[l]);
}
