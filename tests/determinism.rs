//! Determinism and reproducibility: identical inputs must give identical
//! simulations, and different inputs must actually differ.

use heterowire_core::{InterconnectModel, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator};

fn run(model: InterconnectModel, bench: &str, seed: u64) -> (u64, [u64; 4], f64) {
    let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
    let trace = TraceGenerator::new(by_name(bench).expect("benchmark"), seed);
    let r = Processor::simulate(cfg, trace, 5_000, 1_000);
    (r.cycles, r.net.transfers, r.net.dynamic_energy)
}

#[test]
fn identical_runs_are_bit_identical() {
    for model in [InterconnectModel::I, InterconnectModel::X] {
        let a = run(model, "gap", 17);
        let b = run(model, "gap", 17);
        assert_eq!(a, b, "{model} diverged between runs");
    }
}

#[test]
fn different_seeds_change_the_trace_but_not_the_story() {
    let a = run(InterconnectModel::I, "gap", 1);
    let b = run(InterconnectModel::I, "gap", 2);
    assert_ne!(a.0, b.0, "different seeds should perturb cycle counts");
    // ... but not wildly: same program character.
    let ratio = a.0 as f64 / b.0 as f64;
    assert!((0.7..1.3).contains(&ratio), "seeds changed IPC by {ratio}");
}

#[test]
fn different_benchmarks_differ() {
    let a = run(InterconnectModel::I, "mcf", 9);
    let b = run(InterconnectModel::I, "eon", 9);
    assert!(a.0 > b.0, "mcf must be much slower than eon");
}

#[test]
fn trace_streams_are_reproducible_across_construction() {
    for p in spec2000().into_iter().take(5) {
        let x: Vec<_> = TraceGenerator::new(p.clone(), 77).take(500).collect();
        let y: Vec<_> = TraceGenerator::new(p, 77).take(500).collect();
        assert_eq!(x, y);
    }
}

#[test]
fn window_extension_is_prefix_stable() {
    // Taking a longer window must not change the prefix of the stream.
    let p = by_name("apsi").expect("apsi");
    let short: Vec<_> = TraceGenerator::new(p.clone(), 4).take(1_000).collect();
    let long: Vec<_> = TraceGenerator::new(p, 4).take(2_000).collect();
    assert_eq!(short[..], long[..1_000]);
}

#[test]
fn window_length_stability() {
    // DESIGN.md §4: shorter windows with warmup preserve relative ordering.
    // Check that per-benchmark IPCs are stable (within 25%) between a short
    // and a 3x longer window, and that the slowest program stays slowest.
    let ipc = |bench: &str, window: u64| {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(by_name(bench).expect("benchmark"), 11);
        Processor::simulate(cfg, trace, window, window / 3).ipc()
    };
    for bench in ["gzip", "swim", "mcf"] {
        let short = ipc(bench, 6_000);
        let long = ipc(bench, 18_000);
        let ratio = short / long;
        assert!(
            (0.75..=1.33).contains(&ratio),
            "{bench}: short {short} vs long {long}"
        );
    }
    assert!(ipc("mcf", 18_000) < ipc("gzip", 18_000));
}
