//! Determinism and reproducibility: identical inputs must give identical
//! simulations, and different inputs must actually differ.

use heterowire_bench::{sweep_runs, sweep_runs_serial, RunScale};
use heterowire_core::{InterconnectModel, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator};

fn run(model: InterconnectModel, bench: &str, seed: u64) -> (u64, [u64; 4], f64) {
    let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
    let trace = TraceGenerator::new(by_name(bench).expect("benchmark"), seed);
    let r = Processor::simulate(cfg, trace, 5_000, 1_000);
    (r.cycles, r.net.transfers, r.net.dynamic_energy)
}

#[test]
fn identical_runs_are_bit_identical() {
    for model in [InterconnectModel::I, InterconnectModel::X] {
        let a = run(model, "gap", 17);
        let b = run(model, "gap", 17);
        assert_eq!(a, b, "{model} diverged between runs");
    }
}

#[test]
fn different_seeds_change_the_trace_but_not_the_story() {
    let a = run(InterconnectModel::I, "gap", 1);
    let b = run(InterconnectModel::I, "gap", 2);
    assert_ne!(a.0, b.0, "different seeds should perturb cycle counts");
    // ... but not wildly: same program character.
    let ratio = a.0 as f64 / b.0 as f64;
    assert!((0.7..1.3).contains(&ratio), "seeds changed IPC by {ratio}");
}

#[test]
fn different_benchmarks_differ() {
    let a = run(InterconnectModel::I, "mcf", 9);
    let b = run(InterconnectModel::I, "eon", 9);
    assert!(a.0 > b.0, "mcf must be much slower than eon");
}

#[test]
fn trace_streams_are_reproducible_across_construction() {
    for p in spec2000().into_iter().take(5) {
        let x: Vec<_> = TraceGenerator::new(p, 77).take(500).collect();
        let y: Vec<_> = TraceGenerator::new(p, 77).take(500).collect();
        assert_eq!(x, y);
    }
}

#[test]
fn window_extension_is_prefix_stable() {
    // Taking a longer window must not change the prefix of the stream.
    let p = by_name("apsi").expect("apsi");
    let short: Vec<_> = TraceGenerator::new(p, 4).take(1_000).collect();
    let long: Vec<_> = TraceGenerator::new(p, 4).take(2_000).collect();
    assert_eq!(short[..], long[..1_000]);
}

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    // The flattened work-queue executor must change wall-clock only: every
    // per-benchmark SimResults (a plain Copy/PartialEq struct) must equal
    // the serial reference bit for bit. Workers forced above 1 so the
    // queue is genuinely drained concurrently even on single-core hosts.
    let scale = RunScale {
        window: 1_500,
        warmup: 300,
    };
    let serial = sweep_runs_serial(Topology::crossbar4(), scale);
    let parallel = sweep_runs(Topology::crossbar4(), scale, 4);
    assert_eq!(serial.len(), parallel.len());
    for (model, (s, p)) in InterconnectModel::ALL
        .iter()
        .zip(serial.iter().zip(&parallel))
    {
        assert_eq!(s.names, p.names, "{model}: benchmark order diverged");
        assert_eq!(
            s.runs, p.runs,
            "{model}: results diverged under parallelism"
        );
    }
}

#[test]
fn window_length_stability() {
    // DESIGN.md §4: shorter windows with warmup preserve relative ordering.
    // Per-benchmark IPC is NOT flat across window lengths: the synthetic
    // streams ramp up as dependence webs and cache state warm, so a window
    // and its 3x extension differ by up to ~1.4x (gzip measures 0.73 at
    // 12k vs 36k). The durable property is that the ramp is bounded and the
    // slowest program stays slowest, so that is what we assert.
    let ipc = |bench: &str, window: u64| {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(by_name(bench).expect("benchmark"), 11);
        Processor::simulate(cfg, trace, window, window / 3).ipc()
    };
    for bench in ["gzip", "swim", "mcf"] {
        let short = ipc(bench, 12_000);
        let long = ipc(bench, 36_000);
        let ratio = short / long;
        assert!(
            (0.6..=1.67).contains(&ratio),
            "{bench}: short {short} vs long {long}"
        );
    }
    assert!(ipc("mcf", 36_000) < ipc("gzip", 36_000));
}
