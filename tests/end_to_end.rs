//! End-to-end integration tests: the full stack (trace generator →
//! front-end → clusters → heterogeneous network → LSQ/caches → energy
//! model) on real configurations.

use heterowire_bench::{run_one, RunScale, SEED};
use heterowire_core::{
    relative_report, EnergyParams, InterconnectModel, Processor, ProcessorConfig,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator};
use heterowire_wires::WireClass;

const SCALE: RunScale = RunScale {
    window: 10_000,
    warmup: 3_000,
};

#[test]
fn every_benchmark_runs_on_the_baseline() {
    for p in spec2000() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let r = run_one(
            cfg,
            p,
            RunScale {
                window: 3_000,
                warmup: 500,
            },
        );
        assert_eq!(r.instructions, 3_000, "{}", p.name);
        assert!(r.ipc() > 0.02, "{} IPC {}", p.name, r.ipc());
        assert!(r.ipc() < 8.0, "{} IPC {}", p.name, r.ipc());
    }
}

#[test]
fn every_model_runs_on_both_topologies() {
    let p = by_name("vpr").expect("vpr exists");
    for topology in [Topology::crossbar4(), Topology::hier16()] {
        for model in InterconnectModel::ALL {
            let cfg = ProcessorConfig::for_model(model, topology);
            let r = run_one(
                cfg,
                p,
                RunScale {
                    window: 2_000,
                    warmup: 500,
                },
            );
            assert!(r.ipc() > 0.0, "{model} on {topology:?}");
            assert!(r.net.total_transfers() > 0, "{model} moved no data");
        }
    }
}

#[test]
fn heterogeneous_traffic_goes_where_the_policy_says() {
    // Model X carries all planes; check the paper's policy outcomes:
    // L-wires carry only small messages, PW carries the store/ready
    // traffic, B the rest.
    let cfg = ProcessorConfig::for_model(InterconnectModel::X, Topology::crossbar4());
    let r = run_one(cfg, by_name("gcc").expect("gcc"), SCALE);
    let l_share = r.net.class_share(WireClass::L);
    let pw_share = r.net.class_share(WireClass::Pw);
    let b_share = r.net.class_share(WireClass::B);
    assert!(l_share > 0.10, "L share {l_share}");
    assert!(pw_share > 0.10, "PW share {pw_share}");
    assert!(b_share > 0.10, "B share {b_share}");
    assert!((l_share + pw_share + b_share - 1.0).abs() < 1e-9);
}

#[test]
fn energy_model_tracks_wire_choices() {
    // Model II (PW only) must burn less interconnect dynamic energy than
    // Model I on the same workload, at roughly the Table-2 ratio.
    let p = by_name("twolf").expect("twolf");
    let base = run_one(
        ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4()),
        p,
        SCALE,
    );
    let pw = run_one(
        ProcessorConfig::for_model(InterconnectModel::II, Topology::crossbar4()),
        p,
        SCALE,
    );
    let rel = relative_report(&pw, &base, EnergyParams::ten_percent());
    // All traffic moves from B (0.58) to PW (0.30): ~52%.
    assert!(
        (45.0..=60.0).contains(&rel.rel_ic_dynamic),
        "IC dynamic {}",
        rel.rel_ic_dynamic
    );
    // The IPC cost of the slower wires must show up, but stay modest.
    assert!(rel.ipc < base.ipc());
    assert!(rel.ipc > base.ipc() * 0.85);
}

#[test]
fn deadlock_free_across_seeds() {
    // The pipeline must drain for arbitrary seeds (different dependence
    // webs and address streams).
    let p = by_name("mcf").expect("mcf");
    for seed in [1, 2, 3] {
        let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        let trace = TraceGenerator::new(p, seed);
        let r = Processor::simulate(cfg, trace, 2_000, 0);
        assert_eq!(r.instructions, 2_000, "seed {seed}");
    }
}

#[test]
fn sixteen_clusters_deliver_more_ilp_on_fp() {
    // §5.3: moving from 4 to 16 clusters helps high-ILP programs.
    let p = by_name("swim").expect("swim");
    let c4 = run_one(
        ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4()),
        p,
        SCALE,
    );
    let c16 = run_one(
        ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16()),
        p,
        SCALE,
    );
    assert!(
        c16.ipc() > c4.ipc(),
        "16 clusters should beat 4 on swim: {} vs {}",
        c16.ipc(),
        c4.ipc()
    );
}

#[test]
fn warmup_is_excluded_from_measurements() {
    let p = by_name("gzip").expect("gzip");
    let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let with_warmup = run_one(
        cfg.clone(),
        p,
        RunScale {
            window: 5_000,
            warmup: 5_000,
        },
    );
    let without = run_one(
        cfg,
        p,
        RunScale {
            window: 5_000,
            warmup: 0,
        },
    );
    assert_eq!(with_warmup.instructions, 5_000);
    // Cold caches and predictors make the no-warmup window slower.
    assert!(with_warmup.ipc() >= without.ipc() * 0.95);
}

#[test]
fn seed_of_record_is_stable() {
    // The committed experiment seed must keep producing the same cycles
    // (regression guard for the deterministic pipeline).
    let p = by_name("eon").expect("eon");
    let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    let a = Processor::simulate(cfg.clone(), TraceGenerator::new(p, SEED), 3_000, 500);
    let b = Processor::simulate(cfg, TraceGenerator::new(p, SEED), 3_000, 500);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.net.transfers, b.net.transfers);
}
