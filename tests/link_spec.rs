//! The spec layer's contract with the presets: every Model I–X enum
//! variant is exactly a named `LinkSpec`, round-trippable through the
//! parser, and a config built from the spec string simulates
//! bit-identically to one built from the enum.

use heterowire_bench::SEED;
use heterowire_core::{InterconnectModel, ModelSpec, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::spec::LinkSpec;

#[test]
fn every_preset_round_trips_through_its_spec_string() {
    for model in InterconnectModel::ALL {
        // The preset's spec string parses, and formatting is the inverse.
        let spec: LinkSpec = model
            .spec_str()
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", model.spec_str()));
        assert_eq!(spec.to_string(), model.spec_str(), "{model}");
        assert_eq!(spec.composition(), &model.link(), "{model}");

        // ModelSpec::parse on the Roman name yields the preset ...
        let preset = ModelSpec::parse(model.name()).unwrap();
        assert_eq!(preset.as_preset(), Some(model));
        assert_eq!(preset.spec().to_string(), model.spec_str());

        // ... and on `custom:<spec>` yields the same physical link.
        let custom = ModelSpec::parse(&format!("custom:{}", model.spec_str())).unwrap();
        assert_eq!(custom.as_preset(), None, "{model}");
        assert_eq!(custom.link(), preset.link(), "{model}");

        // `name()` is itself parseable for both forms.
        assert_eq!(ModelSpec::parse(&preset.name()).unwrap(), preset);
        assert_eq!(ModelSpec::parse(&custom.name()).unwrap(), custom);
    }
}

#[test]
fn custom_names_and_labels_echo_the_spec() {
    let custom = ModelSpec::parse("custom:b144+pw288+l36").unwrap();
    assert_eq!(custom.name(), "custom:b144+pw288+l36");
    assert_eq!(custom.label(), "custom:b144+pw288+l36");
    let preset = ModelSpec::parse("x").unwrap();
    assert_eq!(preset.name(), "X");
    assert_eq!(preset.label(), "Model X");
    // Both describe the same wires.
    assert_eq!(custom.description(), preset.description());
}

/// A config assembled from the data-driven spec string must drive the
/// simulator to the exact same `SimResults` as the enum preset it mirrors
/// — on both topologies. This is what lets Tables 3/4 rows be reproduced
/// from the command line with `--model custom:<spec>`.
#[test]
fn spec_built_configs_simulate_bit_identically_to_enum_built() {
    let window = 3_000;
    let warmup = 500;
    for topology in [Topology::crossbar4(), Topology::hier16()] {
        for model in InterconnectModel::ALL {
            let custom = ModelSpec::parse(&format!("custom:{}", model.spec_str())).unwrap();
            let from_spec = ProcessorConfig::for_model_spec(&custom, topology);
            let from_enum = ProcessorConfig::for_model(model, topology);
            assert_eq!(from_spec.link, from_enum.link, "{model} links diverge");
            assert_eq!(from_spec.opts, from_enum.opts, "{model} opts diverge");

            let bench = by_name("gcc").unwrap();
            let a = Processor::new(from_spec, TraceGenerator::new(bench, SEED)).run(window, warmup);
            let b = Processor::new(from_enum, TraceGenerator::new(bench, SEED)).run(window, warmup);
            assert_eq!(a, b, "{model} on {} cluster(s)", topology.clusters());
        }
    }
}
