//! The event-driven kernel (completion wheel, wakeup-driven issue,
//! idle-cycle skipping) must be **bit-identical** to the seed's
//! cycle-driven reference loop: same cycle counts, same network statistics
//! down to the last bit-hop and queue cycle, same predictor and LSQ rates.
//!
//! Every interconnect model runs on both the 4-cluster crossbar and the
//! 16-cluster crossbar-of-rings at quick scale; benchmarks rotate across
//! models so the suite's workload variety (FP-heavy, memory-bound,
//! branchy) is covered without running the full 230-run sweep twice in a
//! debug build.

use heterowire_bench::{RunScale, SEED};
use heterowire_core::{InterconnectModel, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, TraceGenerator};

fn assert_kernels_match(topology: Topology, scale: RunScale) {
    let profiles = spec2000();
    for (i, &model) in InterconnectModel::ALL.iter().enumerate() {
        let profile = profiles[(i * 7) % profiles.len()];
        let cfg = ProcessorConfig::for_model(model, topology);
        let event = Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED))
            .run(scale.window, scale.warmup);
        let reference = Processor::new(cfg, TraceGenerator::new(profile, SEED))
            .run_reference(scale.window, scale.warmup);
        assert_eq!(
            event, reference,
            "kernels diverge for model {:?} on {topology:?} ({})",
            model, profile.name
        );
    }
}

#[test]
fn event_kernel_matches_reference_on_crossbar4() {
    assert_kernels_match(Topology::crossbar4(), RunScale::quick());
}

#[test]
fn event_kernel_matches_reference_on_hier16_ring() {
    assert_kernels_match(Topology::hier16(), RunScale::quick());
}
