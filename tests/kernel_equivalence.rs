//! The event-driven kernel (completion wheel, wakeup-driven issue,
//! idle-cycle skipping) must be **bit-identical** to the seed's
//! cycle-driven reference loop: same cycle counts, same network statistics
//! down to the last bit-hop and queue cycle, same predictor and LSQ rates.
//!
//! Every interconnect model runs on both the 4-cluster crossbar and the
//! 16-cluster crossbar-of-rings at quick scale; benchmarks rotate across
//! models so the suite's workload variety (FP-heavy, memory-bound,
//! branchy) is covered without running the full 230-run sweep twice in a
//! debug build.

use heterowire_bench::{RunScale, SEED};
use heterowire_core::{
    InterconnectModel, Processor, ProcessorConfig, RecordingConfig, RecordingProbe,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, TraceGenerator};

fn assert_kernels_match(topology: Topology, scale: RunScale) {
    let profiles = spec2000();
    for (i, &model) in InterconnectModel::ALL.iter().enumerate() {
        let profile = profiles[(i * 7) % profiles.len()];
        let cfg = ProcessorConfig::for_model(model, topology);
        let event = Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED))
            .run(scale.window, scale.warmup);
        let reference = Processor::new(cfg, TraceGenerator::new(profile, SEED))
            .run_reference(scale.window, scale.warmup);
        assert_eq!(
            event, reference,
            "kernels diverge for model {:?} on {topology:?} ({})",
            model, profile.name
        );
    }
}

#[test]
fn event_kernel_matches_reference_on_crossbar4() {
    assert_kernels_match(Topology::crossbar4(), RunScale::quick());
}

#[test]
fn event_kernel_matches_reference_on_hier16_ring() {
    assert_kernels_match(Topology::hier16(), RunScale::quick());
}

/// The widened (spill-path) per-value structures must not change the
/// kernels' agreement: past the 16-cluster inline capacity, every model
/// still runs bit-identically on both kernels. `ring:16x4` is the
/// 64-cluster headline shape, exercising the full `ClusterMask` width and
/// the longest inline routes.
#[test]
fn event_kernel_matches_reference_on_wide_ring16x4() {
    assert_kernels_match(Topology::hier_ring(16, 4), RunScale::quick());
}

/// Recording must be pure observation: a run with a live [`RecordingProbe`]
/// produces `SimResults` bit-identical to the probe-disabled run.
#[test]
fn recording_probe_does_not_perturb_results() {
    let scale = RunScale::quick();
    let profiles = spec2000();
    for (i, topology) in [Topology::crossbar4(), Topology::hier16()]
        .into_iter()
        .enumerate()
    {
        // Model X exercises all three wire planes, so every probe site
        // (L-Wire steering, PW criteria, overflow balancing) fires.
        let profile = profiles[(i * 11) % profiles.len()];
        let cfg = ProcessorConfig::for_model(InterconnectModel::X, topology);
        let disabled = Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED))
            .run(scale.window, scale.warmup);
        let labels = Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED))
            .network()
            .link_labels();
        let probe = RecordingProbe::new(RecordingConfig::new(64, labels, topology.clusters()));
        let mut recorded = Processor::with_probe(cfg, TraceGenerator::new(profile, SEED), probe);
        let results = recorded.run(scale.window, scale.warmup);
        assert_eq!(
            results, disabled,
            "RecordingProbe perturbed the simulation on {topology:?} ({})",
            profile.name
        );
        recorded.probe_mut().finish();
        assert!(
            recorded.probe().counts.commits > 0,
            "the probe actually recorded something"
        );
    }
}
