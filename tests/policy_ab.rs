//! Contract tests for the steering-policy contenders and the `policy_ab`
//! A/B harness:
//!
//! * each new policy is deterministic and kernel-agnostic — the
//!   event-driven kernel matches the cycle-driven reference bit for bit,
//!   and two identical runs agree, on both topologies;
//! * the harness's `paper` lane is the exact default-processor path, so
//!   its rows are bit-identical to the existing Model-X baseline sweep;
//! * the oracle's grid IPC bounds the paper policy from above (it cheats;
//!   losing to a realizable policy would mean the bound is broken).

use heterowire_bench::{policy_sweep_runs, run_one_policy, ModelSet, PolicyKind, RunScale, SEED};
use heterowire_core::{
    CriticalityPolicy, InterconnectModel, ModelSpec, NullProbe, OraclePolicy, Processor,
    ProcessorConfig, PwFirstPolicy, SimResults,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, BenchmarkProfile, TraceGenerator};
use std::sync::Arc;

/// A debug-build-friendly scale: big enough to exercise replays, splits
/// and balancer overflows, small enough to run 3 policies x 2 kernels x 2
/// topologies without dominating the suite.
fn small() -> RunScale {
    RunScale {
        window: 2_000,
        warmup: 500,
    }
}

fn run_policy_both_kernels(
    policy: PolicyKind,
    topology: Topology,
    profile: BenchmarkProfile,
    scale: RunScale,
) -> (SimResults, SimResults) {
    let cfg = Arc::new(ProcessorConfig::for_model(InterconnectModel::X, topology));
    let trace = || TraceGenerator::new(profile, SEED);
    macro_rules! both {
        ($ctor:expr) => {{
            let event = Processor::with_policy_shared(cfg.clone(), trace(), NullProbe, $ctor)
                .run(scale.window, scale.warmup);
            let reference = Processor::with_policy_shared(cfg.clone(), trace(), NullProbe, $ctor)
                .run_reference(scale.window, scale.warmup);
            (event, reference)
        }};
    }
    match policy {
        PolicyKind::Criticality => both!(CriticalityPolicy::new(&cfg)),
        PolicyKind::PwFirst => both!(PwFirstPolicy::new(&cfg)),
        PolicyKind::Oracle => both!(OraclePolicy::new(&cfg)),
        _ => unreachable!("only the new contenders need the identity sweep"),
    }
}

#[test]
fn new_policies_are_kernel_agnostic_and_deterministic() {
    let profiles = spec2000();
    let contenders = [
        PolicyKind::Criticality,
        PolicyKind::PwFirst,
        PolicyKind::Oracle,
    ];
    for (i, &policy) in contenders.iter().enumerate() {
        for (j, topology) in [Topology::crossbar4(), Topology::hier16()]
            .into_iter()
            .enumerate()
        {
            // Rotate benchmarks so the contenders see varied traffic.
            let profile = profiles[(i * 7 + j * 11) % profiles.len()];
            let (event, reference) = run_policy_both_kernels(policy, topology, profile, small());
            assert_eq!(
                event,
                reference,
                "{} kernels diverge on {topology:?} ({})",
                policy.name(),
                profile.name
            );
            let (again, _) = run_policy_both_kernels(policy, topology, profile, small());
            assert_eq!(
                event,
                again,
                "{} is not run-to-run deterministic on {topology:?} ({})",
                policy.name(),
                profile.name
            );
        }
    }
}

#[test]
fn harness_paper_row_is_bit_identical_to_the_model_x_baseline() {
    let scale = RunScale::quick();
    let models = ModelSet::new(vec![ModelSpec::parse("X").unwrap()]).unwrap();
    let suites = policy_sweep_runs(
        &models,
        &[PolicyKind::Paper, PolicyKind::Oracle],
        Topology::crossbar4(),
        scale,
        4,
    );
    let baseline = heterowire_bench::run_suite_on(
        &ProcessorConfig::for_model(InterconnectModel::X, Topology::crossbar4()),
        scale,
        4,
    );
    assert_eq!(
        suites[0][0].runs, baseline.runs,
        "the harness's paper lane must be the exact default-processor path"
    );

    // The oracle cheats (actual widths, known consumer distance, no
    // replays); the realizable paper policy must not beat it on the grid.
    let paper_ipc = suites[0][0].mean_ipc();
    let oracle_ipc = suites[0][1].mean_ipc();
    assert!(
        oracle_ipc >= paper_ipc,
        "oracle IPC {oracle_ipc} fell below paper IPC {paper_ipc}"
    );
}

#[test]
fn run_one_policy_paper_matches_run_one_shared() {
    let profile = spec2000()[3];
    let cfg = Arc::new(ProcessorConfig::for_model(
        InterconnectModel::X,
        Topology::crossbar4(),
    ));
    let via_policy = run_one_policy(cfg.clone(), profile, small(), PolicyKind::Paper);
    let direct = heterowire_bench::run_one_shared(cfg, profile, small());
    assert_eq!(via_policy, direct);
}
