//! The topology spec layer's contract with the presets and the command
//! line: a `TopologySpec`-built topology simulates bit-identically to the
//! enum-built preset it mirrors, spec files resolve through the shared
//! bench token parser, and malformed `--topology` tokens terminate every
//! harness binary with exit status 2 and a pointed message.

use std::process::Command;

use heterowire_bench::{parse_topology_token, SEED};
use heterowire_core::{ModelSpec, Processor, ProcessorConfig};
use heterowire_interconnect::{Topology, TopologyPreset, TopologySpec};
use heterowire_trace::{by_name, TraceGenerator};

/// Every topology preset is exactly its spec string: same topology, same
/// routes, and the spec string round-trips through the parser.
#[test]
fn every_preset_round_trips_through_its_spec_string() {
    for preset in TopologyPreset::ALL {
        let by_name = TopologySpec::parse(preset.name()).unwrap();
        assert_eq!(by_name.preset(), Some(preset));
        assert_eq!(by_name.topology(), preset.topology());

        // The equivalent compact spec builds the identical topology but
        // keeps its spec spelling (mirroring ModelSpec custom-vs-preset).
        let by_spec = TopologySpec::parse(preset.spec_str()).unwrap();
        assert_eq!(by_spec.preset(), None);
        assert_eq!(by_spec.topology(), preset.topology());
        assert_eq!(by_spec.name(), preset.spec_str());
    }
}

/// A processor built on the spec-generated topology must produce the
/// exact same `SimResults` as one built on the enum preset — this is what
/// lets Table 3/4 rows be reproduced with `--topology xbar:4` /
/// `--topology ring:4x4`.
#[test]
fn spec_built_topologies_simulate_bit_identically_to_enum_built() {
    let window = 3_000;
    let warmup = 500;
    let model = ModelSpec::parse("X").unwrap();
    for (spec_str, enum_built) in [
        ("xbar:4", Topology::crossbar4()),
        ("ring:4x4", Topology::hier16()),
    ] {
        let spec = TopologySpec::parse(spec_str).unwrap();
        assert_eq!(spec.topology(), enum_built, "{spec_str}");

        let from_spec = ProcessorConfig::for_model_spec(&model, spec.topology());
        let from_enum = ProcessorConfig::for_model_spec(&model, enum_built);
        let bench = by_name("gcc").unwrap();
        let a = Processor::new(from_spec, TraceGenerator::new(bench, SEED)).run(window, warmup);
        let b = Processor::new(from_enum, TraceGenerator::new(bench, SEED)).run(window, warmup);
        assert_eq!(a, b, "{spec_str} diverged from the enum-built topology");
    }
}

/// The bench-layer token parser resolves spec files written to disk the
/// same way it resolves the equivalent compact spec.
#[test]
fn topology_spec_files_resolve_like_compact_specs() {
    let dir = std::env::temp_dir().join(format!("hw-topo-spec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("asym.topo");
    std::fs::write(
        &path,
        "# an asymmetric ring for the generated-topology tests\n\
         shape    = ring\n\
         quads    = 5\n\
         per_quad = 3\n\
         hop_len  = 3\n",
    )
    .unwrap();
    let from_file = parse_topology_token(path.to_str().unwrap()).unwrap();
    let from_compact = parse_topology_token("ring:5x3@hop3").unwrap();
    assert_eq!(from_file, from_compact);
    assert_eq!(from_file.topology().clusters(), 15);
    std::fs::remove_dir_all(&dir).ok();
}

/// Malformed `--topology` tokens exit with status 2 and a message that
/// names the problem, matching the `--model` CLI convention.
#[test]
fn malformed_topology_tokens_exit_2_with_pointed_messages() {
    let cases: [(&str, &str); 7] = [
        ("mesh:4", "unknown shape"),
        ("ring:2x4", "at least 3 quads"),
        ("ring:4x0", "clusters per quad must be a positive integer"),
        ("ring:4x4@hop2@hop3", "duplicate @hop"),
        ("ring:20x1", "at most 16 quads"),
        // The oversized-topology refusal comes from the one shared
        // capacity checker and names both the offending cluster count and
        // the simulator-wide cap.
        ("xbar:65", "65 clusters"),
        ("ring:13x5", "at most 64"),
    ];
    for (token, needle) in cases {
        let out = Command::new(env!("CARGO_BIN_EXE_policy_ab"))
            .args(["--topology", token])
            .env("HETEROWIRE_SCALE", "quick")
            .output()
            .expect("policy_ab runs");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{token}: expected exit 2, got {:?}",
            out.status
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "{token}: stderr lacks {needle:?}:\n{stderr}"
        );
        // The failing token itself is echoed so the user can see which
        // flag was wrong.
        assert!(
            stderr.contains(token),
            "{token}: token not echoed:\n{stderr}"
        );
    }
}

/// A `--topology` flag with no value is also a loud exit-2 error.
#[test]
fn dangling_topology_flag_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_policy_ab"))
        .arg("--topology")
        .output()
        .expect("policy_ab runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--topology requires a value"), "{stderr}");
}
