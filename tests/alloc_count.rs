//! Steady-state allocation accounting for the simulator hot path.
//!
//! A counting global allocator measures how many heap allocations two
//! simulations of different window lengths perform. In steady state the
//! per-cycle machinery (dispatch, issue, steering, network send/deliver)
//! must allocate nothing; the only growth with window length comes from
//! amortised doubling of the seq-indexed value/action tables. The delta
//! between the two runs must therefore stay far below one allocation per
//! extra instruction.
//!
//! This file deliberately holds a single test: the counter is global to
//! the process, and a dedicated integration-test binary keeps other tests
//! from allocating concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use heterowire_core::{InterconnectModel, NullProbe, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, TraceGenerator};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_for(topology: Topology, window: u64) -> u64 {
    // Model X exercises all three wire planes (so every send/steer path
    // runs); gcc has a rich mix of loads, stores and branches. Built
    // through the generic probed entry point with the probe disabled:
    // `NullProbe` must monomorphize every hook away, so this path is held
    // to the same allocation budget as the seed's plain constructor.
    // `NullFaultModel` (the default third parameter) is covered the same
    // way: with `ENABLED = false` every corruption check, retry branch
    // and dseq sort compiles out, so this budget also pins the
    // faults-disabled fabric.
    let cfg = ProcessorConfig::for_model(InterconnectModel::X, topology);
    let trace = TraceGenerator::new(by_name("gcc").expect("gcc exists"), 42);
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = Processor::with_probe(cfg, trace, NullProbe).run(window, 500);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert!(r.cycles > 0);
    after - before
}

#[test]
fn simulator_steady_state_is_allocation_free() {
    // Crossbar (4 clusters) and ring (16 clusters, 64 ready queues)
    // both: the event kernel's wheel, ready queues, waiter lists and
    // deferred heap must all reach steady state like the rest of the
    // per-cycle machinery.
    for topology in [Topology::crossbar4(), Topology::hier16()] {
        let small = allocs_for(topology, 4_000);
        let large = allocs_for(topology, 16_000);
        let delta = large.saturating_sub(small);
        // 12 000 extra instructions. Before the de-allocation pass the
        // simulator allocated several Vecs per instruction (>36 000 here);
        // now only table doubling and rare cold paths remain.
        assert!(
            delta < 2_000,
            "hot path allocates on {topology:?}: {delta} extra allocations \
             for 12k extra instructions (small window: {small}, large \
             window: {large})"
        );
    }

    // Wide topologies (past the old 16-cluster wall) use the same flat
    // slot tables with a bigger stride, so they are held to the same
    // budget: growth is amortised table doubling only, never per-value or
    // per-cycle allocation.
    for topology in [Topology::crossbar(32), Topology::hier_ring(16, 4)] {
        let small = allocs_for(topology, 4_000);
        let large = allocs_for(topology, 16_000);
        let delta = large.saturating_sub(small);
        // Measured ~330 on both wide shapes (the earlier boxed-slice spill
        // design cost ~28 000 here — three allocations per value).
        assert!(
            delta < 2_000,
            "wide slot tables allocate per value on {topology:?}: {delta} \
             extra allocations for 12k extra instructions (small window: \
             {small}, large window: {large})"
        );
    }
}
