//! The telemetry artifacts must be machine-valid: `trace.json` has to be
//! well-formed Chrome-trace JSON (checked against the telemetry crate's
//! own strict parser), and the utilization CSV's per-link totals have to
//! reconcile with the `NetStats` the same run reports.

use std::collections::HashMap;

use heterowire_bench::SEED;
use heterowire_core::{
    InterconnectModel, Processor, ProcessorConfig, RecordingConfig, RecordingProbe, SimResults,
};
use heterowire_interconnect::Topology;
use heterowire_telemetry::json::{parse, Json};
use heterowire_telemetry::{chrome_trace, utilization_csv, NUM_CLASSES};
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::WireClass;

/// One recorded run of Model X (all three wire planes) on gzip, warmup 0
/// so the probe's counters align exactly with the end-of-run statistics.
fn recorded_run() -> (Processor<RecordingProbe>, SimResults) {
    let cfg = ProcessorConfig::for_model(InterconnectModel::X, Topology::crossbar4());
    let labels = Processor::new(
        cfg.clone(),
        TraceGenerator::new(by_name("gzip").unwrap(), SEED),
    )
    .network()
    .link_labels();
    let probe = RecordingProbe::new(RecordingConfig::new(64, labels, 4));
    let mut p = Processor::with_probe(
        cfg,
        TraceGenerator::new(by_name("gzip").unwrap(), SEED),
        probe,
    );
    let results = p.run(5_000, 0);
    p.probe_mut().finish();
    (p, results)
}

#[test]
fn trace_json_is_valid_chrome_trace() {
    let (p, results) = recorded_run();
    let text = chrome_trace(p.probe());
    let doc = parse(&text).expect("trace.json parses as strict JSON");

    let events = doc
        .get("traceEvents")
        .expect("top-level traceEvents")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty(), "trace has events");

    // Every event carries the mandatory Chrome-trace fields, and async
    // begin/end pairs balance per (cat, id).
    let mut open: HashMap<String, i64> = HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("event has ph");
        assert!(
            ["M", "b", "e", "n", "C", "X"].contains(&ph),
            "unexpected phase {ph:?}"
        );
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(|p| p.as_num()).is_some());
        if ph != "M" {
            assert!(e.get("ts").and_then(|t| t.as_num()).is_some());
        }
        if ph == "b" || ph == "e" {
            let id = e.get("id").and_then(|i| i.as_num()).expect("async id");
            let cat = e.get("cat").and_then(Json::as_str).expect("async cat");
            *open.entry(format!("{cat}:{id}")).or_insert(0) += if ph == "b" { 1 } else { -1 };
        }
        if ph == "X" {
            assert!(e.get("dur").and_then(|d| d.as_num()).is_some());
        }
    }
    assert!(
        open.values().all(|&v| v == 0),
        "unbalanced async begin/end pairs: {open:?}"
    );

    // The summary block reconciles with the run's own statistics.
    let other = doc.get("otherData").expect("otherData summary");
    let last_cycle = other.get("cycles").unwrap().as_num().unwrap() as u64;
    assert!(last_cycle > 0 && last_cycle <= results.cycles);
    let injected: u64 = p.probe().injected.iter().sum();
    let inj = other.get("injected").expect("injected per class");
    let summed: u64 = WireClass::ALL
        .iter()
        .map(|c| inj.get(c.label()).unwrap().as_num().unwrap() as u64)
        .sum();
    assert_eq!(summed, injected);
    assert_eq!(injected, results.net.total_transfers());
}

#[test]
fn utilization_csv_reconciles_with_netstats() {
    let (p, results) = recorded_run();
    let probe = p.probe();

    // Injected-per-class equals NetStats transfer counts at warmup 0.
    for (i, c) in WireClass::ALL.iter().enumerate() {
        assert_eq!(
            probe.injected[i],
            results.net.transfers[i],
            "{} transfers disagree with NetStats",
            c.label()
        );
    }
    // Whatever was injected but never departed is still queued.
    let injected: u64 = probe.injected.iter().sum();
    let departed: u64 = probe.departed.iter().sum();
    assert_eq!(
        injected - departed,
        p.network().pending_len() as u64,
        "conservation: injected - departed = still pending"
    );

    // CSV per-(link, class) sums equal the probe's cumulative totals.
    let csv = utilization_csv(probe);
    let links = probe.config().link_labels.len();
    let mut sums = vec![0u64; links * NUM_CLASSES];
    for line in csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        let link: usize = f[2].parse().expect("link index");
        let class = WireClass::ALL
            .iter()
            .position(|c| c.label() == f[4])
            .expect("class label");
        sums[link * NUM_CLASSES + class] += f[5].parse::<u64>().expect("busy count");
    }
    let mut total = 0u64;
    for link in 0..links {
        for class in 0..NUM_CLASSES {
            assert_eq!(
                sums[link * NUM_CLASSES + class],
                probe.link_total(link, class),
                "CSV total for link {link} class {class}"
            );
            total += sums[link * NUM_CLASSES + class];
        }
    }
    assert_eq!(total, probe.total_busy());
    assert!(total > 0, "the run produced link activity");
    assert_eq!(probe.dropped_samples, 0, "no rows dropped at this scale");
}
