//! Interconnect design-space walk: evaluate a workload on several
//! heterogeneous link compositions and report the performance / energy /
//! ED² landscape — a miniature, single-benchmark version of Table 3.
//!
//! ```sh
//! cargo run --release -p heterowire-bench --example design_space [benchmark]
//! ```

use heterowire_core::{
    relative_report, EnergyParams, InterconnectModel, Processor, ProcessorConfig,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, TraceGenerator};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "twolf".into());
    let profile = by_name(&bench).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench:?}; try gzip, gcc, swim, mcf ...");
        std::process::exit(1);
    });
    println!("design-space walk for {profile}\n");

    let run = |model: InterconnectModel| {
        let config = ProcessorConfig::for_model(model, Topology::crossbar4());
        let trace = TraceGenerator::new(profile, 7);
        Processor::simulate(config, trace, 30_000, 8_000)
    };

    let baseline = run(InterconnectModel::I);
    println!(
        "{:<10} {:<40} {:>7} {:>8} {:>9}",
        "model", "link composition", "IPC", "energy%", "ED2(10%)"
    );
    for model in InterconnectModel::ALL {
        let r = run(model);
        let rel = relative_report(&r, &baseline, EnergyParams::ten_percent());
        println!(
            "{:<10} {:<40} {:>7.3} {:>8.1} {:>9.1}",
            format!("Model {}", model.name()),
            model.description(),
            rel.ipc,
            rel.rel_processor_energy,
            rel.rel_ed2
        );
    }
    println!("\n(values relative to Model I; lower ED2 is better)");
}
