//! Build a custom synthetic workload from scratch and study how its
//! character (memory-boundedness, branchiness, narrow-value share) changes
//! what the heterogeneous interconnect buys.
//!
//! ```sh
//! cargo run --release -p heterowire-bench --example custom_workload
//! ```

use heterowire_core::{InterconnectModel, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{BenchmarkProfile, TraceGenerator};

/// A hand-rolled profile: a branchy integer workload with many narrow
/// results — the best case for L-Wires.
fn narrow_heavy() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "narrowheavy",
        load_frac: 0.20,
        store_frac: 0.08,
        branch_frac: 0.14,
        fp_frac: 0.0,
        int_mul_frac: 0.01,
        branch_bias: 0.95,
        branch_sites: 256,
        dep_distance_mean: 8.0,
        narrow_frac: 0.60,
        hot_working_set: 16 * 1024,
        cold_working_set: 1024 * 1024,
        hot_frac: 0.99,
        stream_frac: 0.1,
        independence: 0.5,
        stream_wrap: 8 * 1024,
        addr_independence: 0.8,
        addr_freshness: 0.1,
    }
}

/// A pointer-chasing, wide-value workload — the worst case for L-Wires.
fn wide_chaser() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "widechaser",
        narrow_frac: 0.02,
        addr_independence: 0.35,
        addr_freshness: 0.85,
        hot_frac: 0.60,
        cold_working_set: 32 * 1024 * 1024,
        ..narrow_heavy()
    }
}

fn main() {
    for profile in [narrow_heavy(), wide_chaser()] {
        profile.validate().expect("profile is consistent");
        println!("== {profile} ==");
        let mut ipcs = Vec::new();
        for model in [InterconnectModel::I, InterconnectModel::VII] {
            let config = ProcessorConfig::for_model(model, Topology::crossbar4());
            let trace = TraceGenerator::new(profile, 1234);
            let r = Processor::simulate(config, trace, 30_000, 8_000);
            println!(
                "  Model {:<4} ({:<25}) IPC {:.3}, L-share {:.0}%",
                model.name(),
                model.description(),
                r.ipc(),
                r.net.class_share(heterowire_wires::WireClass::L) * 100.0
            );
            ipcs.push(r.ipc());
        }
        println!(
            "  L-Wire gain: {:+.1}%\n",
            (ipcs[1] / ipcs[0] - 1.0) * 100.0
        );
    }
    println!("narrow-value-rich code benefits most from the L-Wire plane;");
    println!("wide pointer chasing gains little (and loses nothing).");
}
