//! Wire-design explorer: walk the physical design space of on-chip wires —
//! width/spacing scaling, repeater sizing, the energy-delay trade-off curve
//! and the transmission-line option.
//!
//! ```sh
//! cargo run --release -p heterowire-bench --example wire_explorer
//! ```

use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};
use heterowire_wires::transmission::TransmissionLine;

fn main() {
    let devices = DeviceParams::node_45nm();
    let len = 10e-3; // a 10 mm cross-chip wire

    println!("== width/spacing scaling (delay-optimal repeaters, 10 mm) ==");
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "scale", "delay (ps)", "energy (pJ)", "pitch (nm)"
    );
    for scale in [1.0, 2.0, 4.0, 8.0] {
        let g = WireGeometry::minimum_45nm().scaled(scale);
        let w = RepeatedWire::delay_optimal(g, devices);
        println!(
            "{:>5}x {:>12.0} {:>14.2} {:>12.0}",
            scale,
            w.delay(len) * 1e12,
            w.dynamic_energy(len) * 1e12,
            g.pitch() * 1e9
        );
    }

    println!("\n== energy-delay trade-off via repeater sizing (min-pitch wire) ==");
    println!(
        "{:>14} {:>12} {:>14}",
        "delay budget", "delay (ps)", "energy (pJ)"
    );
    let g = WireGeometry::minimum_45nm();
    let optimal = RepeatedWire::delay_optimal(g, devices);
    for penalty in [1.0, 1.1, 1.2, 1.5, 2.0] {
        let w = RepeatedWire::power_optimal_for_penalty(g, devices, penalty);
        println!(
            "{:>13.1}x {:>12.0} {:>14.2}",
            penalty,
            w.delay(len) * 1e12,
            w.dynamic_energy(len) * 1e12
        );
    }
    println!(
        "(the paper's PW-Wires sit at the 1.2x point: {:.0}% of the optimal wire's energy)",
        RepeatedWire::paper_power_optimal(g, devices).dynamic_energy(len)
            / optimal.dynamic_energy(len)
            * 100.0
    );

    println!("\n== transmission line (the L-Wire end game) ==");
    let tl = TransmissionLine::default();
    let l_rc = RepeatedWire::delay_optimal(WireGeometry::minimum_45nm().scaled(8.0), devices);
    println!(
        "RC L-wire: {:.0} ps; transmission line: {:.0} ps ({:.1}x faster, ~{:.0}% the energy)",
        l_rc.delay(len) * 1e12,
        tl.delay(len) * 1e12,
        tl.speedup_vs(&l_rc, len),
        tl.energy_vs_rc * 100.0
    );
}
