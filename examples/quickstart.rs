//! Quickstart: simulate one benchmark on a heterogeneous interconnect and
//! print the headline statistics.
//!
//! ```sh
//! cargo run --release -p heterowire-bench --example quickstart
//! ```

use heterowire_core::{InterconnectModel, Processor, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::WireClass;

fn main() {
    // Model X: every link carries all three wire planes —
    // 144 B-Wires + 288 PW-Wires + 36 L-Wires.
    let model = InterconnectModel::X;
    let config = ProcessorConfig::for_model(model, Topology::crossbar4());
    println!(
        "simulating gzip on a 4-cluster processor, {model}: {}",
        model.description()
    );

    let profile = by_name("gzip").expect("gzip is in the suite");
    let trace = TraceGenerator::new(profile, 42);
    let mut processor = Processor::new(config, trace);
    let results = processor.run(50_000, 10_000);

    println!("\ninstructions    {:>10}", results.instructions);
    println!("cycles          {:>10}", results.cycles);
    println!("IPC             {:>10.3}", results.ipc());
    println!("transfers/inst  {:>10.2}", results.transfers_per_inst());
    println!("\ntraffic split across the wire planes:");
    for (i, class) in WireClass::ALL.iter().enumerate() {
        if results.net.transfers[i] > 0 {
            println!(
                "  {:<9} {:>8} transfers ({:>4.1}%)",
                class.to_string(),
                results.net.transfers[i],
                results.net.class_share(*class) * 100.0
            );
        }
    }
    println!(
        "\nbranch mispredict rate {:.1}%, mean penalty {:.1} cycles",
        results.fetch.mispredict_rate() * 100.0,
        results.fetch.mean_mispredict_penalty()
    );
    println!(
        "false partial-address dependences: {:.1}% of loads",
        results.lsq.false_dependence_rate() * 100.0
    );
    println!(
        "narrow predictor: {:.1}% coverage, {:.1}% false-narrow",
        results.narrow_coverage * 100.0,
        results.narrow_false_rate * 100.0
    );
}
