//! Repeater insertion: delay-optimal and power-optimal configurations.
//!
//! Long wires are broken into segments driven by inverter repeaters, turning
//! the quadratic unrepeated delay into a linear one. Delay-optimal repeater
//! size and spacing follow Bakoglu's classical derivation; power-optimal
//! configurations shrink and space out the repeaters, trading delay for
//! energy, following the methodology of Banerjee and Mehrotra that the paper
//! builds on (a ~20% delay penalty buys roughly 70% interconnect energy
//! savings at the 45/50 nm node).

use crate::geometry::WireGeometry;

/// Electrical characteristics of a minimum-sized inverter at the process
/// node, used as the unit in repeater sizing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// On-resistance of the minimum inverter, Ω.
    pub r0: f64,
    /// Input (gate) capacitance of the minimum inverter, F.
    pub c0: f64,
    /// Output (drain/parasitic) capacitance of the minimum inverter, F.
    pub cp: f64,
    /// Subthreshold + gate leakage power of the minimum inverter, W.
    pub leak0: f64,
    /// Supply voltage, V.
    pub vdd: f64,
}

impl DeviceParams {
    /// Representative 45 nm high-performance device corner.
    pub fn node_45nm() -> Self {
        DeviceParams {
            r0: 12_000.0,
            c0: 0.10e-15,
            cp: 0.05e-15,
            leak0: 2.0e-9,
            vdd: 1.0,
        }
    }
}

/// A concrete repeater assignment for a wire: inverter `size` (in multiples
/// of the minimum inverter) every `spacing` metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeaterConfig {
    /// Repeater size as a multiple of the minimum inverter.
    pub size: f64,
    /// Distance between consecutive repeaters, m.
    pub spacing: f64,
}

/// A fully characterised repeated wire: geometry + devices + repeaters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedWire {
    /// Cross-sectional geometry of the wire.
    pub geometry: WireGeometry,
    /// Device corner used for the repeaters.
    pub devices: DeviceParams,
    /// The chosen repeater size and spacing.
    pub repeaters: RepeaterConfig,
}

impl RepeatedWire {
    /// Builds the **delay-optimal** repeated wire for `geometry`.
    ///
    /// Writing the per-unit-length delay of [`RepeatedWire::delay`] as
    /// `A/h + B/s + C·h + D·s` with `A = 0.7·R0·(C0+Cp)`, `B = 0.7·R0·Cw`,
    /// `C = 0.4·Rw·Cw`, `D = 0.7·Rw·C0`, the minimum is at
    /// `h_opt = sqrt(A/C)` and `s_opt = sqrt(B/D)` (Bakoglu's derivation
    /// specialised to our Elmore coefficients).
    pub fn delay_optimal(geometry: WireGeometry, devices: DeviceParams) -> Self {
        let rw = geometry.resistance_per_m();
        let cw = geometry.capacitance_per_m();
        let h = (0.7 * devices.r0 * (devices.c0 + devices.cp) / (0.4 * rw * cw)).sqrt();
        let s = (devices.r0 * cw / (rw * devices.c0)).sqrt();
        RepeatedWire {
            geometry,
            devices,
            repeaters: RepeaterConfig {
                size: s,
                spacing: h,
            },
        }
    }

    /// Builds a **power-optimal** repeated wire: starting from the
    /// delay-optimal configuration, repeaters are shrunk by `size_factor`
    /// (< 1) and spread out by `spacing_factor` (> 1).
    ///
    /// With the paper's calibration (`size_factor = 0.42`,
    /// `spacing_factor = 2.0`) this costs about 20% extra delay and saves
    /// about 70% of the interconnect energy, matching Banerjee-Mehrotra.
    ///
    /// # Panics
    ///
    /// Panics if `size_factor` is not in `(0, 1]` or `spacing_factor < 1`.
    pub fn power_optimal(
        geometry: WireGeometry,
        devices: DeviceParams,
        size_factor: f64,
        spacing_factor: f64,
    ) -> Self {
        assert!(
            size_factor > 0.0 && size_factor <= 1.0,
            "size_factor must be in (0, 1], got {size_factor}"
        );
        assert!(
            spacing_factor >= 1.0,
            "spacing_factor must be >= 1, got {spacing_factor}"
        );
        let opt = Self::delay_optimal(geometry, devices);
        RepeatedWire {
            repeaters: RepeaterConfig {
                size: opt.repeaters.size * size_factor,
                spacing: opt.repeaters.spacing * spacing_factor,
            },
            ..opt
        }
    }

    /// Finds the repeater configuration that **minimises dynamic energy
    /// subject to a delay budget** of `delay_penalty` times the
    /// delay-optimal wire — the Banerjee-Mehrotra methodology the paper
    /// cites ("estimate repeater size and spacing that minimizes power
    /// consumption for a fixed wire delay").
    ///
    /// The search is a dense grid over size factors `(0, 1]` and spacing
    /// factors `[1, 8]` relative to the delay-optimal configuration,
    /// evaluated over a 10 mm wire.
    ///
    /// # Panics
    ///
    /// Panics if `delay_penalty < 1`.
    pub fn power_optimal_for_penalty(
        geometry: WireGeometry,
        devices: DeviceParams,
        delay_penalty: f64,
    ) -> Self {
        assert!(
            delay_penalty >= 1.0,
            "delay penalty must be >= 1, got {delay_penalty}"
        );
        let opt = Self::delay_optimal(geometry, devices);
        let len = 10e-3;
        let budget = opt.delay(len) * delay_penalty;
        let mut best = opt;
        let mut best_energy = opt.dynamic_energy(len);
        for si in 1..=100 {
            let sf = si as f64 / 100.0;
            for hi in 0..=140 {
                let hf = 1.0 + hi as f64 / 20.0;
                let cand = RepeatedWire {
                    repeaters: RepeaterConfig {
                        size: opt.repeaters.size * sf,
                        spacing: opt.repeaters.spacing * hf,
                    },
                    ..opt
                };
                if cand.delay(len) <= budget {
                    let e = cand.dynamic_energy(len);
                    if e < best_energy {
                        best_energy = e;
                        best = cand;
                    }
                }
            }
        }
        best
    }

    /// The paper's canonical PW-wire repeatering: the Banerjee-Mehrotra
    /// point trading ~20% delay for most of the interconnect energy.
    pub fn paper_power_optimal(geometry: WireGeometry, devices: DeviceParams) -> Self {
        Self::power_optimal_for_penalty(geometry, devices, 1.2)
    }

    /// Number of repeater stages over a wire of `len` metres (at least 1).
    pub fn stages(&self, len: f64) -> usize {
        (len / self.repeaters.spacing).ceil().max(1.0) as usize
    }

    /// End-to-end delay of a wire of `len` metres, in seconds.
    ///
    /// Per-segment Elmore delay with a repeater of size `s` driving a
    /// segment of length `h`:
    ///
    /// `t_seg = 0.7·(R0/s)·(s·Cp + s·C0 + Cw·h) + Rw·h·(0.4·Cw·h + 0.7·s·C0)`
    pub fn delay(&self, len: f64) -> f64 {
        let n = self.stages(len) as f64;
        let h = len / n;
        let s = self.repeaters.size;
        let d = &self.devices;
        let rw = self.geometry.resistance_per_m();
        let cw = self.geometry.capacitance_per_m();
        let t_seg = 0.7 * (d.r0 / s) * (s * d.cp + s * d.c0 + cw * h)
            + rw * h * (0.4 * cw * h + 0.7 * s * d.c0);
        n * t_seg
    }

    /// Per-repeater energy overhead factor folding short-circuit current and
    /// internal-node switching into the gate+drain capacitance term.
    /// Banerjee et al. observe that optimally sized repeaters (~450x the
    /// minimum inverter) dominate global-interconnect power at sub-100 nm
    /// nodes; this factor calibrates our simple Elmore/CV² model to that
    /// regime.
    pub const REPEATER_ENERGY_OVERHEAD: f64 = 8.0;

    /// Dynamic (switching) energy for one full-swing transition over `len`
    /// metres, in joules:
    /// `E = Vdd² · (Cw·len + OVERHEAD·n·s·(C0+Cp))`.
    ///
    /// (The conventional ½CV² is doubled because a transfer toggles the wire
    /// once on average in each direction; only ratios matter downstream.)
    pub fn dynamic_energy(&self, len: f64) -> f64 {
        let n = self.stages(len) as f64;
        let s = self.repeaters.size;
        let d = &self.devices;
        let cw = self.geometry.capacitance_per_m();
        d.vdd * d.vdd * (cw * len + Self::REPEATER_ENERGY_OVERHEAD * n * s * (d.c0 + d.cp))
    }

    /// Static leakage power of the repeaters along `len` metres, in watts.
    pub fn leakage_power(&self, len: f64) -> f64 {
        let n = self.stages(len) as f64;
        n * self.repeaters.size * self.devices.leak0
    }

    /// Delay per millimetre, in seconds — convenient for comparing classes.
    pub fn delay_per_mm(&self) -> f64 {
        self.delay(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w_wire() -> RepeatedWire {
        RepeatedWire::delay_optimal(WireGeometry::minimum_45nm(), DeviceParams::node_45nm())
    }

    #[test]
    fn repeated_delay_is_linear_in_length() {
        let w = w_wire();
        let d5 = w.delay(5e-3);
        let d10 = w.delay(10e-3);
        let ratio = d10 / d5;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn repeated_beats_unrepeated_on_long_wires() {
        let w = w_wire();
        let len = 10e-3;
        assert!(w.delay(len) < w.geometry.unrepeated_delay(len) / 5.0);
    }

    #[test]
    fn delay_optimal_is_a_local_minimum() {
        // Perturbing size or spacing away from the optimum must not reduce
        // delay (within numerical tolerance).
        let opt = w_wire();
        let len = 10e-3;
        let base = opt.delay(len);
        for &(sf, hf) in &[(0.8, 1.0), (1.25, 1.0), (1.0, 0.8), (1.0, 1.25)] {
            let perturbed = RepeatedWire {
                repeaters: RepeaterConfig {
                    size: opt.repeaters.size * sf,
                    spacing: opt.repeaters.spacing * hf,
                },
                ..opt
            };
            assert!(
                perturbed.delay(len) >= base * 0.999,
                "perturbation ({sf}, {hf}) beat the optimum"
            );
        }
    }

    #[test]
    fn power_optimal_trades_delay_for_energy() {
        let geometry = WireGeometry::minimum_45nm();
        let devices = DeviceParams::node_45nm();
        let opt = RepeatedWire::delay_optimal(geometry, devices);
        let pw = RepeatedWire::paper_power_optimal(geometry, devices);
        let len = 10e-3;

        let delay_penalty = pw.delay(len) / opt.delay(len);
        let energy_ratio = pw.dynamic_energy(len) / opt.dynamic_energy(len);
        let leak_ratio = pw.leakage_power(len) / opt.leakage_power(len);

        // Paper calibration: ~1.2x delay buys away most of the interconnect
        // energy (Banerjee-Mehrotra report ~70% savings; our simpler Elmore
        // + CV² model recovers 45-70%).
        assert!(delay_penalty <= 1.21, "delay penalty {delay_penalty}");
        assert!(delay_penalty >= 1.05, "delay penalty {delay_penalty}");
        assert!(
            (0.25..=0.60).contains(&energy_ratio),
            "energy {energy_ratio}"
        );
        assert!(leak_ratio < 0.30, "leakage ratio {leak_ratio}");
    }

    #[test]
    fn fat_wire_is_faster() {
        let devices = DeviceParams::node_45nm();
        let w = RepeatedWire::delay_optimal(WireGeometry::minimum_45nm(), devices);
        let l = RepeatedWire::delay_optimal(WireGeometry::minimum_45nm().scaled(8.0), devices);
        let ratio = l.delay_per_mm() / w.delay_per_mm();
        // Paper: Delay_L = 0.3 Delay_W.
        assert!((0.2..=0.42).contains(&ratio), "L/W delay ratio {ratio}");
    }

    #[test]
    fn stages_is_at_least_one() {
        let w = w_wire();
        assert!(w.stages(1e-6) >= 1);
    }

    #[test]
    #[should_panic(expected = "size_factor")]
    fn oversized_power_factor_panics() {
        let _ = RepeatedWire::power_optimal(
            WireGeometry::minimum_45nm(),
            DeviceParams::node_45nm(),
            1.5,
            2.0,
        );
    }
}
