//! Transmission-line wire model.
//!
//! When a wire is wide, thick and far from its neighbours, and the signal
//! edge is fast, inductance dominates and the wire behaves as a transmission
//! line: the delay is set by the LC time-of-flight of the voltage ripple
//! rather than by diffusive RC charging. The paper cites Chang et al.: at
//! 180 nm a transmission line beats an equal-width repeated RC wire by at
//! least 4/3 in delay and by about 3x in energy. The paper's evaluation
//! restricts itself to RC-based L-wires, and so does ours, but this module
//! models the option so the headroom can be quantified.

use crate::geometry::WireGeometry;
use crate::repeater::{DeviceParams, RepeatedWire};

/// Speed of light in vacuum, m/s.
pub const C_LIGHT: f64 = 2.998e8;

/// A wire operated as an on-chip transmission line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionLine {
    /// Relative dielectric constant of the surrounding insulator.
    pub eps_r: f64,
    /// Energy per transferred bit relative to a delay-optimal repeated RC
    /// wire of the same width (Chang et al. report ~1/3).
    pub energy_vs_rc: f64,
    /// Area multiplier versus an L-class RC wire (reference planes, shield
    /// wires and very wide conductors).
    pub area_overhead: f64,
}

impl TransmissionLine {
    /// Parameters following Chang et al. (ref. 16) as cited by the paper.
    pub fn chang_et_al() -> Self {
        TransmissionLine {
            eps_r: 2.7,
            energy_vs_rc: 1.0 / 3.0,
            area_overhead: 2.0,
        }
    }

    /// Signal propagation velocity, m/s: `c / sqrt(eps_r)`.
    pub fn velocity(&self) -> f64 {
        C_LIGHT / self.eps_r.sqrt()
    }

    /// Time-of-flight delay over `len` metres, in seconds.
    pub fn delay(&self, len: f64) -> f64 {
        len / self.velocity()
    }

    /// Speedup versus a given repeated RC wire over `len` metres.
    pub fn speedup_vs(&self, rc: &RepeatedWire, len: f64) -> f64 {
        rc.delay(len) / self.delay(len)
    }
}

impl Default for TransmissionLine {
    fn default() -> Self {
        Self::chang_et_al()
    }
}

/// Convenience: how much faster would a transmission-line L-wire be than the
/// RC L-wire the paper actually evaluates, over a 10 mm inter-cluster span?
pub fn transmission_line_headroom() -> f64 {
    let devices = DeviceParams::node_45nm();
    let l_rc = RepeatedWire::delay_optimal(WireGeometry::minimum_45nm().scaled(8.0), devices);
    TransmissionLine::default().speedup_vs(&l_rc, 10e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_is_below_light_speed() {
        let tl = TransmissionLine::default();
        assert!(tl.velocity() < C_LIGHT);
        assert!(tl.velocity() > 0.5 * C_LIGHT);
    }

    #[test]
    fn delay_is_linear() {
        let tl = TransmissionLine::default();
        assert!((tl.delay(20e-3) / tl.delay(10e-3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn beats_rc_l_wire() {
        // Chang et al.: at least 4/3 faster than an RC wire of equal width;
        // by 45 nm the gap should be comfortably larger.
        let headroom = transmission_line_headroom();
        assert!(headroom > 4.0 / 3.0, "headroom = {headroom}");
    }

    #[test]
    fn energy_is_a_third_of_rc() {
        let tl = TransmissionLine::chang_et_al();
        assert!((tl.energy_vs_rc - 1.0 / 3.0).abs() < 1e-12);
    }
}
