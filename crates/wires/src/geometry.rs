//! Geometric RC models for on-chip wires.
//!
//! Implements Equations (1) and (2) of the paper: per-unit-length resistance
//! from the conductor cross-section and per-unit-length capacitance from a
//! parallel-plate + fringe model. All dimensions are in metres and the
//! results are in SI units (Ω/m, F/m).

use std::fmt;

/// Vacuum permittivity, F/m.
pub const EPSILON_0: f64 = 8.854e-12;

/// Resistivity of copper at operating temperature, Ω·m.
///
/// Slightly above the room-temperature bulk value (1.68e-8) to account for
/// the elevated junction temperatures and surface scattering of narrow
/// damascene wires.
pub const RHO_COPPER: f64 = 2.2e-8;

/// Cross-sectional geometry of a wire on one metal layer.
///
/// The same struct describes minimum-pitch `W`-style wires and fat
/// `L`-style wires; only the dimensions differ.
///
/// # Examples
///
/// ```
/// use heterowire_wires::geometry::WireGeometry;
///
/// let w = WireGeometry::minimum_45nm();
/// let fat = w.scaled(8.0);
/// assert!(fat.resistance_per_m() < w.resistance_per_m() / 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Conductor width, m.
    pub width: f64,
    /// Conductor thickness (height), m.
    pub thickness: f64,
    /// Lateral gap to the neighbouring wire on the same layer, m.
    pub spacing: f64,
    /// Vertical gap to the adjacent metal layers, m.
    pub layer_spacing: f64,
    /// Diffusion-barrier liner thickness eating into the copper, m.
    pub barrier: f64,
    /// Relative dielectric constant between same-layer neighbours.
    pub eps_horiz: f64,
    /// Relative dielectric constant between layers.
    pub eps_vert: f64,
    /// Miller-effect coupling factor `K` for switching neighbours.
    pub miller_k: f64,
    /// Constant fringing capacitance, F/m.
    pub fringe: f64,
}

impl WireGeometry {
    /// Minimum-width, minimum-spacing wire on a 45 nm-node semi-global
    /// metal layer. This is the paper's `W`-wire geometry.
    pub fn minimum_45nm() -> Self {
        WireGeometry {
            width: 70e-9,
            thickness: 140e-9,
            spacing: 70e-9,
            layer_spacing: 140e-9,
            barrier: 5e-9,
            eps_horiz: 2.7,
            eps_vert: 2.7,
            miller_k: 1.5,
            fringe: 40e-15 / 1e-3, // 40 fF/mm of fixed fringe capacitance
        }
    }

    /// Returns the same wire with width *and* spacing scaled by `factor`.
    ///
    /// This is the transformation used to derive `L`-wires from `W`-wires
    /// (factor 8 in the paper). Fat global wires are routed on higher metal
    /// layers with thicker inter-layer dielectrics, so the layer spacing
    /// grows with `sqrt(factor)`; without this the vertical plate term would
    /// unrealistically dominate and fat wires would not get faster.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite, got {factor}"
        );
        WireGeometry {
            width: self.width * factor,
            spacing: self.spacing * factor,
            layer_spacing: self.layer_spacing * factor.sqrt(),
            ..*self
        }
    }

    /// Returns the same wire with only the spacing scaled by `factor`.
    ///
    /// The paper derives `B`-wires from `W`-wires by keeping the width and
    /// increasing the spacing until each wire occupies twice the metal area.
    pub fn with_spacing_factor(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "spacing factor must be positive and finite, got {factor}"
        );
        WireGeometry {
            spacing: self.spacing * factor,
            ..*self
        }
    }

    /// Metal-area footprint per unit length: the wire pitch (width +
    /// spacing), in metres. Relative pitches determine how many wires of
    /// each class fit in a fixed-width routing channel.
    pub fn pitch(&self) -> f64 {
        self.width + self.spacing
    }

    /// Per-unit-length resistance, Ω/m — Equation (1) of the paper:
    ///
    /// `R = ρ / ((thickness − barrier) · (width − 2·barrier))`
    ///
    /// # Panics
    ///
    /// Panics if the barrier consumes the entire conductor cross-section.
    pub fn resistance_per_m(&self) -> f64 {
        let t = self.thickness - self.barrier;
        let w = self.width - 2.0 * self.barrier;
        assert!(
            t > 0.0 && w > 0.0,
            "barrier layer ({} m) leaves no conductor in a {} x {} m wire",
            self.barrier,
            self.width,
            self.thickness
        );
        RHO_COPPER / (t * w)
    }

    /// Per-unit-length capacitance, F/m — Equation (2) of the paper:
    ///
    /// `C = ε0 (2·K·ε_h·thickness/spacing + 2·ε_v·width/layer_spacing) + fringe`
    pub fn capacitance_per_m(&self) -> f64 {
        EPSILON_0
            * (2.0 * self.miller_k * self.eps_horiz * self.thickness / self.spacing
                + 2.0 * self.eps_vert * self.width / self.layer_spacing)
            + self.fringe
    }

    /// The distributed RC product per unit length squared, s/m².
    ///
    /// The delay of an optimally repeated wire is proportional to the square
    /// root of this quantity, so it is the figure of merit that orders wire
    /// classes by latency.
    pub fn rc_per_m2(&self) -> f64 {
        self.resistance_per_m() * self.capacitance_per_m()
    }

    /// Unrepeated (quadratic) Elmore delay of a wire of length `len` metres,
    /// in seconds: `0.38 · R·C · len²`.
    pub fn unrepeated_delay(&self, len: f64) -> f64 {
        0.38 * self.rc_per_m2() * len * len
    }
}

impl fmt::Display for WireGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}nm wide / {}nm spaced wire ({:.0} Ω/mm, {:.0} fF/mm)",
            self.width * 1e9,
            self.spacing * 1e9,
            self.resistance_per_m() * 1e-3,
            self.capacitance_per_m() * 1e15 * 1e-3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_decreases_with_width() {
        let w = WireGeometry::minimum_45nm();
        let fat = w.scaled(8.0);
        assert!(fat.resistance_per_m() < w.resistance_per_m());
        // Equation (1): the conductor width grows 8x but the barrier stays
        // fixed, so resistance falls by slightly more than 8x.
        let ratio = w.resistance_per_m() / fat.resistance_per_m();
        assert!(ratio > 8.0 && ratio < 10.0, "ratio = {ratio}");
    }

    #[test]
    fn capacitance_drops_when_spacing_grows() {
        let w = WireGeometry::minimum_45nm();
        let sparse = w.with_spacing_factor(3.0);
        assert!(sparse.capacitance_per_m() < w.capacitance_per_m());
    }

    #[test]
    fn l_wire_rc_matches_paper_calibration() {
        // The paper (via Banerjee et al.) computes R_L = 0.125 R_W and
        // C_L = 0.8 C_W for 8x width/spacing at 45 nm. Our analytical model
        // should land in the same neighbourhood.
        let w = WireGeometry::minimum_45nm();
        let l = w.scaled(8.0);
        let r_ratio = l.resistance_per_m() / w.resistance_per_m();
        let c_ratio = l.capacitance_per_m() / w.capacitance_per_m();
        assert!((0.08..=0.14).contains(&r_ratio), "R ratio {r_ratio}");
        assert!((0.55..=1.0).contains(&c_ratio), "C ratio {c_ratio}");
        // Optimally repeated delay scales with sqrt(RC): should be ~0.3.
        let delay_ratio = (l.rc_per_m2() / w.rc_per_m2()).sqrt();
        assert!(
            (0.2..=0.4).contains(&delay_ratio),
            "delay ratio {delay_ratio}"
        );
    }

    #[test]
    fn unrepeated_delay_is_quadratic() {
        let w = WireGeometry::minimum_45nm();
        let d1 = w.unrepeated_delay(1e-3);
        let d2 = w.unrepeated_delay(2e-3);
        assert!((d2 / d1 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_panics() {
        let _ = WireGeometry::minimum_45nm().scaled(0.0);
    }

    #[test]
    fn pitch_accounts_for_width_and_spacing() {
        let w = WireGeometry::minimum_45nm();
        assert!((w.pitch() - 140e-9).abs() < 1e-12);
        assert!((w.scaled(8.0).pitch() - 8.0 * w.pitch()).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = WireGeometry::minimum_45nm().to_string();
        assert!(s.contains("wire"));
    }
}
