//! Data-driven link specifications.
//!
//! A [`LinkSpec`] is the parseable, round-trippable text form of a
//! [`LinkComposition`]: `b144+pw288+l36` describes a link of 144 B-Wires,
//! 288 PW-Wires and 36 L-Wires (the paper's Model X). The grammar is a
//! `+`-joined list of `<class><count>` segments, where `<class>` is one of
//! the lowercase class letters `w`, `pw`, `b`, `l` and `<count>` is a
//! positive wire count that must be a whole number of lanes for the class
//! (multiples of 72 for W/PW/B, of 18 for L).
//!
//! Specs open the model space beyond the ten enum presets of Tables 3/4:
//! any composition the lane arithmetic accepts can be swept from the
//! command line without recompiling.
//!
//! ```
//! use heterowire_wires::spec::LinkSpec;
//! use heterowire_wires::WireClass;
//!
//! let spec: LinkSpec = "b144+pw288+l36".parse().unwrap();
//! assert_eq!(spec.composition().lanes(WireClass::B), 2);
//! assert_eq!(spec.to_string(), "b144+pw288+l36");
//! ```

use std::fmt;
use std::str::FromStr;

use crate::classes::WireClass;
use crate::plane::{LinkComposition, WirePlane};

/// Why a spec string failed to parse into a valid link composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec string was empty (or a segment between `+`s was).
    Empty,
    /// A segment did not start with a known class letter (`w`, `pw`, `b`,
    /// `l`).
    UnknownClass(String),
    /// A segment's wire count was missing or not a positive integer.
    InvalidCount(String),
    /// A count is not a whole number of lanes for its class.
    NotLaneMultiple {
        /// The wire class of the offending segment.
        class: WireClass,
        /// The requested wire count.
        count: u32,
        /// Wires per lane for the class.
        lane: u32,
    },
    /// The same class appears in more than one segment.
    DuplicateClass(WireClass),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(
                f,
                "empty link spec; expected `+`-joined <class><count> segments like \"b144+l36\""
            ),
            SpecError::UnknownClass(seg) => write!(
                f,
                "unknown wire class in segment {seg:?}; expected one of w, pw, b, l"
            ),
            SpecError::InvalidCount(seg) => write!(
                f,
                "segment {seg:?} needs a positive wire count, e.g. \"b144\""
            ),
            SpecError::NotLaneMultiple { class, count, lane } => write!(
                f,
                "{count} {class} is not a whole number of lanes \
                 ({class} lanes are {lane} wires wide)"
            ),
            SpecError::DuplicateClass(class) => {
                write!(f, "duplicate {class} plane in link spec")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Lowercase spec letter for a class (`w`, `pw`, `b`, `l`).
fn class_letter(class: WireClass) -> &'static str {
    match class {
        WireClass::W => "w",
        WireClass::Pw => "pw",
        WireClass::B => "b",
        WireClass::L => "l",
    }
}

/// A validated, parseable link composition. Parsing and formatting are
/// exact inverses: `format(parse(s)) == canonical(s)` where the canonical
/// form lowercases class letters and preserves segment order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinkSpec {
    composition: LinkComposition,
}

impl LinkSpec {
    /// Wraps an already-built composition (e.g. a model preset) so it can
    /// be formatted as a spec string.
    pub fn from_composition(composition: LinkComposition) -> Self {
        LinkSpec { composition }
    }

    /// Parses a `b144+pw288+l36`-style spec.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(SpecError::Empty);
        }
        let mut planes = Vec::new();
        for segment in s.split('+') {
            let segment = segment.trim();
            if segment.is_empty() {
                return Err(SpecError::Empty);
            }
            let digits_at = segment
                .find(|c: char| c.is_ascii_digit())
                .ok_or_else(|| SpecError::InvalidCount(segment.to_string()))?;
            let (letters, digits) = segment.split_at(digits_at);
            let class = WireClass::ALL
                .into_iter()
                .find(|&c| letters.eq_ignore_ascii_case(class_letter(c)))
                .ok_or_else(|| SpecError::UnknownClass(segment.to_string()))?;
            let count: u32 = digits
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| SpecError::InvalidCount(segment.to_string()))?;
            let lane = WirePlane::wires_per_lane(class);
            if !count.is_multiple_of(lane) {
                return Err(SpecError::NotLaneMultiple { class, count, lane });
            }
            planes.push(WirePlane::new(class, count));
        }
        let composition =
            LinkComposition::new(planes).map_err(|e| SpecError::DuplicateClass(e.0))?;
        Ok(LinkSpec { composition })
    }

    /// The composition this spec describes.
    pub fn composition(&self) -> &LinkComposition {
        &self.composition
    }

    /// Consumes the spec, yielding the composition.
    pub fn into_composition(self) -> LinkComposition {
        self.composition
    }
}

impl FromStr for LinkSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.composition.planes().iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{}{}", class_letter(p.class()), p.count())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_model_x_spec() {
        let spec = LinkSpec::parse("b144+pw288+l36").unwrap();
        let link = spec.composition();
        assert_eq!(link.lanes(WireClass::B), 2);
        assert_eq!(link.lanes(WireClass::Pw), 4);
        assert_eq!(link.lanes(WireClass::L), 2);
        assert_eq!(link.to_string(), "144 B-Wires, 288 PW-Wires, 36 L-Wires");
    }

    #[test]
    fn format_round_trips_and_canonicalises() {
        for s in ["b144", "pw288", "pw144+l36", "b432", "w72+l18"] {
            let spec = LinkSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "canonical form is stable");
            assert_eq!(LinkSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Uppercase and whitespace are accepted but canonicalised away.
        let spec = LinkSpec::parse(" B144 + L36 ").unwrap();
        assert_eq!(spec.to_string(), "b144+l36");
    }

    #[test]
    fn segment_order_is_preserved() {
        assert_eq!(LinkSpec::parse("l36+b144").unwrap().to_string(), "l36+b144");
    }

    #[test]
    fn rejects_malformed_specs() {
        assert_eq!(LinkSpec::parse(""), Err(SpecError::Empty));
        assert_eq!(LinkSpec::parse("b144+"), Err(SpecError::Empty));
        assert_eq!(
            LinkSpec::parse("x144"),
            Err(SpecError::UnknownClass("x144".to_string()))
        );
        assert_eq!(
            LinkSpec::parse("b"),
            Err(SpecError::InvalidCount("b".to_string()))
        );
        assert_eq!(
            LinkSpec::parse("b0"),
            Err(SpecError::InvalidCount("b0".to_string()))
        );
        assert_eq!(
            LinkSpec::parse("b100"),
            Err(SpecError::NotLaneMultiple {
                class: WireClass::B,
                count: 100,
                lane: 72,
            })
        );
        assert_eq!(
            LinkSpec::parse("b72+b144"),
            Err(SpecError::DuplicateClass(WireClass::B))
        );
        // Errors print something a CLI user can act on.
        assert!(LinkSpec::parse("b100")
            .unwrap_err()
            .to_string()
            .contains("72 wires wide"));
    }
}
