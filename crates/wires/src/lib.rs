#![warn(missing_docs)]
//! # heterowire-wires
//!
//! Physical models of on-chip global wires for the `heterowire` project, a
//! reproduction of *"Microarchitectural Wire Management for Performance and
//! Power in Partitioned Architectures"* (Balasubramonian et al., HPCA-11,
//! 2005).
//!
//! VLSI techniques allow the same routing channel to be populated with wires
//! of very different latency / bandwidth / energy trade-offs:
//!
//! * wider, more widely spaced wires have a smaller RC product and are
//!   faster, but fewer of them fit ([`geometry`]);
//! * smaller, sparser repeaters save most of the interconnect energy at a
//!   modest delay penalty ([`repeater`]);
//! * transmission lines approach time-of-flight latency at a large area cost
//!   ([`transmission`]).
//!
//! The paper distills these into four *wire classes* — `W`, `PW`, `B`, `L`
//! ([`classes::WireClass`]) — whose canonical relative parameters (Table 2)
//! this crate both hard-codes and re-derives from first principles.
//! [`plane`] expresses link compositions such as "144 B-Wires + 36 L-Wires"
//! and their lane/metal-area arithmetic.
//!
//! ## Example
//!
//! ```
//! use heterowire_wires::classes::{WireClass, table2};
//! use heterowire_wires::plane::{LinkComposition, WirePlane};
//!
//! // Relative latency of the classes (Table 2): L < B < W < PW.
//! assert!(WireClass::L.params().relative_delay < WireClass::B.params().relative_delay);
//!
//! // A heterogeneous link and its metal-area cost in W-wire tracks:
//! let link = LinkComposition::new(vec![
//!     WirePlane::new(WireClass::B, 144),
//!     WirePlane::new(WireClass::L, 36),
//! ])
//! .unwrap();
//! assert_eq!(link.metal_area(), 576.0);
//!
//! // ... or the same link parsed from its data-driven spec form:
//! use heterowire_wires::spec::LinkSpec;
//! assert_eq!(*"b144+l36".parse::<LinkSpec>().unwrap().composition(), link);
//!
//! // Re-derive Table 2 from the physics:
//! for row in table2() {
//!     println!("{:?}", row);
//! }
//! ```

pub mod classes;
pub mod geometry;
pub mod plane;
pub mod repeater;
pub mod spec;
pub mod transmission;

pub use classes::{segment_latency, table2, WireClass, WireParams};
pub use plane::{DuplicateClassError, LaneRetireError, LinkComposition, WirePlane};
pub use spec::{LinkSpec, SpecError};
