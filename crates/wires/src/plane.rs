//! Wire *planes*: bundles of same-class wires deployed on a network link.
//!
//! The paper describes links as e.g. "144 B-Wires + 36 L-Wires". A plane of
//! 72 B- or PW-wires carries one 64-bit-data + 8-bit-tag transfer per cycle
//! (one *lane*); a plane of 18 L-wires carries one narrow transfer per cycle
//! (8-bit tag + 10-bit payload, or a partial-address packet).

use std::fmt;

use crate::classes::WireClass;

/// Wires per full-width (data + tag) lane for B/PW/W planes.
pub const FULL_LANE_WIRES: u32 = 72;
/// Wires per narrow lane for L planes.
pub const NARROW_LANE_WIRES: u32 = 18;
/// Payload bits carried by one full-width lane transfer (excluding tag).
pub const FULL_LANE_PAYLOAD_BITS: u32 = 64;
/// Payload bits carried by one narrow lane transfer (excluding tag).
pub const NARROW_LANE_PAYLOAD_BITS: u32 = 10;

/// A bundle of `count` wires of a single class on one unidirectional link.
///
/// # Examples
///
/// ```
/// use heterowire_wires::plane::WirePlane;
/// use heterowire_wires::classes::WireClass;
///
/// let b = WirePlane::new(WireClass::B, 144);
/// assert_eq!(b.lanes(), 2);
/// let l = WirePlane::new(WireClass::L, 36);
/// assert_eq!(l.lanes(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WirePlane {
    class: WireClass,
    count: u32,
}

impl WirePlane {
    /// Creates a plane of `count` wires of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or not a whole number of lanes for the
    /// class (multiples of 72 for W/PW/B, multiples of 18 for L).
    pub fn new(class: WireClass, count: u32) -> Self {
        assert!(count > 0, "a wire plane must contain at least one wire");
        let lane = Self::wires_per_lane(class);
        assert!(
            count.is_multiple_of(lane),
            "{count} {class} must be a multiple of the {lane}-wire lane width"
        );
        WirePlane { class, count }
    }

    /// Wire class of this plane.
    pub fn class(&self) -> WireClass {
        self.class
    }

    /// Number of physical wires in the plane.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Wires needed for one lane of the given class.
    pub fn wires_per_lane(class: WireClass) -> u32 {
        match class {
            WireClass::L => NARROW_LANE_WIRES,
            _ => FULL_LANE_WIRES,
        }
    }

    /// Independent transfers this plane can start per cycle.
    pub fn lanes(&self) -> u32 {
        self.count / Self::wires_per_lane(self.class)
    }

    /// Payload bits per single-lane transfer (tag excluded).
    pub fn payload_bits(&self) -> u32 {
        match self.class {
            WireClass::L => NARROW_LANE_PAYLOAD_BITS,
            _ => FULL_LANE_PAYLOAD_BITS,
        }
    }

    /// Metal-area footprint in units of one W-wire track.
    ///
    /// A B-wire occupies 2 tracks and an L-wire 8 (Table 2), so
    /// `144 B-Wires` cost 288 track-units — the same as `288 PW-Wires`.
    pub fn metal_area(&self) -> f64 {
        self.count as f64 * self.class.params().relative_area
    }

    /// Leakage weight of the plane: wires × per-wire relative leakage.
    /// Used by the energy model (leakage accrues every cycle).
    pub fn leakage_weight(&self) -> f64 {
        self.count as f64 * self.class.params().relative_leakage
    }
}

impl fmt::Display for WirePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.count, self.class)
    }
}

/// Error returned by [`LinkComposition::new`] when two planes share a wire
/// class — a link offers at most one plane per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateClassError(pub WireClass);

impl fmt::Display for DuplicateClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate {} plane in link composition", self.0)
    }
}

impl std::error::Error for DuplicateClassError {}

/// The wire composition of one unidirectional link: zero or one plane per
/// class. Construct with [`LinkComposition::new`] from a list of planes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinkComposition {
    planes: Vec<WirePlane>,
}

impl LinkComposition {
    /// Creates a composition from the given planes, rejecting compositions
    /// in which two planes share a wire class. Hard-coded compositions
    /// (the paper's model presets, test fixtures) unwrap at the call site;
    /// data-driven callers (the [`crate::spec::LinkSpec`] parser) surface
    /// the error to the user.
    pub fn new(planes: Vec<WirePlane>) -> Result<Self, DuplicateClassError> {
        for (i, a) in planes.iter().enumerate() {
            for b in &planes[i + 1..] {
                if a.class() == b.class() {
                    return Err(DuplicateClassError(a.class()));
                }
            }
        }
        Ok(LinkComposition { planes })
    }

    /// The planes in this composition.
    pub fn planes(&self) -> &[WirePlane] {
        &self.planes
    }

    /// The plane of the given class, if present.
    pub fn plane(&self, class: WireClass) -> Option<&WirePlane> {
        self.planes.iter().find(|p| p.class() == class)
    }

    /// Lanes available for the given class (0 if the class is absent).
    pub fn lanes(&self, class: WireClass) -> u32 {
        self.plane(class).map_or(0, WirePlane::lanes)
    }

    /// Total metal area in W-wire track units.
    pub fn metal_area(&self) -> f64 {
        self.planes.iter().map(WirePlane::metal_area).sum()
    }

    /// Total leakage weight (wires × relative leakage).
    pub fn leakage_weight(&self) -> f64 {
        self.planes.iter().map(WirePlane::leakage_weight).sum()
    }

    /// Returns a composition with every plane's wire count multiplied by
    /// `factor` — used for the double-width cache links.
    pub fn widened(&self, factor: u32) -> Self {
        assert!(factor > 0, "widening factor must be positive");
        LinkComposition {
            planes: self
                .planes
                .iter()
                .map(|p| WirePlane::new(p.class(), p.count() * factor))
                .collect(),
        }
    }

    /// Returns a composition with `lanes` lanes of `class` permanently
    /// removed — the wire-level model of stuck-at lane faults: the wires
    /// still occupy metal area on the die, but no longer carry transfers,
    /// so the returned composition is what every consumer (steering
    /// policies, load balancer, network arbitration) must steer against.
    /// A plane whose last lane is retired disappears from the composition
    /// entirely (a plane cannot hold zero wires).
    pub fn with_lanes_retired(
        &self,
        class: WireClass,
        lanes: u32,
    ) -> Result<Self, LaneRetireError> {
        if lanes == 0 {
            return Ok(self.clone());
        }
        let available = self.lanes(class);
        if lanes > available {
            return Err(LaneRetireError {
                class,
                available,
                requested: lanes,
            });
        }
        let planes = self
            .planes
            .iter()
            .filter_map(|p| {
                if p.class() != class {
                    return Some(*p);
                }
                let keep = p.lanes() - lanes;
                (keep > 0).then(|| WirePlane::new(class, keep * WirePlane::wires_per_lane(class)))
            })
            .collect();
        Ok(LinkComposition { planes })
    }

    /// True if no planes are present.
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }
}

/// Error returned by [`LinkComposition::with_lanes_retired`] when the
/// composition has fewer live lanes of the class than the retirement asks
/// for (including the class being absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRetireError {
    /// Class whose lanes were to be retired.
    pub class: WireClass,
    /// Lanes the composition actually offers for that class.
    pub available: u32,
    /// Lanes requested for retirement.
    pub requested: u32,
}

impl fmt::Display for LaneRetireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot retire {} {} lane(s): the link has only {}",
            self.requested, self.class, self.available
        )
    }
}

impl std::error::Error for LaneRetireError {}

impl fmt::Display for LinkComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.planes.is_empty() {
            return write!(f, "(no wires)");
        }
        for (i, p) in self.planes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_math_matches_paper_examples() {
        // "every link may consist of 72 B-Wires, 144 PW-Wires and 18 L-Wires"
        assert_eq!(WirePlane::new(WireClass::B, 72).lanes(), 1);
        assert_eq!(WirePlane::new(WireClass::Pw, 144).lanes(), 2);
        assert_eq!(WirePlane::new(WireClass::L, 18).lanes(), 1);
    }

    #[test]
    fn area_equivalences_from_section_5_4() {
        // Model I (144 B) has area 288 track units; Model II (288 PW) the
        // same; 36 L-wires also cost 288. These are the paper's "same metal
        // area" equivalence classes.
        let b = WirePlane::new(WireClass::B, 144).metal_area();
        let pw = WirePlane::new(WireClass::Pw, 288).metal_area();
        let l = WirePlane::new(WireClass::L, 36).metal_area();
        assert_eq!(b, 288.0);
        assert_eq!(pw, 288.0);
        assert_eq!(l, 288.0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_lane_multiple_panics() {
        let _ = WirePlane::new(WireClass::B, 100);
    }

    #[test]
    fn duplicate_class_is_rejected() {
        let err = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 72),
            WirePlane::new(WireClass::B, 144),
        ])
        .unwrap_err();
        assert_eq!(err, DuplicateClassError(WireClass::B));
        assert!(err.to_string().contains("duplicate B-Wires plane"));
    }

    #[test]
    fn widened_doubles_counts() {
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        let cache = link.widened(2);
        assert_eq!(cache.lanes(WireClass::B), 4);
        assert_eq!(cache.lanes(WireClass::L), 4);
        assert_eq!(cache.metal_area(), 2.0 * link.metal_area());
    }

    #[test]
    fn missing_class_has_zero_lanes() {
        let link = LinkComposition::new(vec![WirePlane::new(WireClass::B, 144)]).unwrap();
        assert_eq!(link.lanes(WireClass::L), 0);
        assert_eq!(link.lanes(WireClass::Pw), 0);
        assert!(link.plane(WireClass::L).is_none());
    }

    #[test]
    fn display_formats() {
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        assert_eq!(link.to_string(), "144 B-Wires, 36 L-Wires");
        assert_eq!(LinkComposition::default().to_string(), "(no wires)");
    }

    #[test]
    fn lane_retirement_shrinks_live_capacity() {
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        // Retiring one of two L lanes halves the plane; area tracks the
        // surviving wires (the composition models live capacity).
        let degraded = link.with_lanes_retired(WireClass::L, 1).unwrap();
        assert_eq!(degraded.lanes(WireClass::L), 1);
        assert_eq!(degraded.lanes(WireClass::B), 2);
        assert_eq!(degraded.to_string(), "144 B-Wires, 18 L-Wires");
        // Retiring the whole plane removes it.
        let gone = link.with_lanes_retired(WireClass::L, 2).unwrap();
        assert!(gone.plane(WireClass::L).is_none());
        assert_eq!(gone.to_string(), "144 B-Wires");
        // Zero retirements is the identity.
        assert_eq!(link.with_lanes_retired(WireClass::Pw, 0).unwrap(), link);
        // Over-retirement and absent classes fail loudly.
        let err = link.with_lanes_retired(WireClass::L, 3).unwrap_err();
        assert_eq!(
            err,
            LaneRetireError {
                class: WireClass::L,
                available: 2,
                requested: 3
            }
        );
        assert!(err.to_string().contains("only 2"), "{err}");
        assert!(link.with_lanes_retired(WireClass::Pw, 1).is_err());
    }

    #[test]
    fn leakage_weight_uses_table2_ratios() {
        let b = WirePlane::new(WireClass::B, 144);
        assert!((b.leakage_weight() - 144.0 * 0.55).abs() < 1e-9);
    }
}
