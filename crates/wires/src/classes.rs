//! The four heterogeneous wire classes of the paper and their canonical
//! Table-2 parameters, together with functions that *derive* those
//! parameters from the physical models in [`crate::geometry`] and
//! [`crate::repeater`].

use std::fmt;

use crate::geometry::WireGeometry;
use crate::repeater::{DeviceParams, RepeatedWire};

/// One of the paper's wire implementations.
///
/// - `W`: bandwidth-optimised (minimum width and spacing, delay-optimal
///   repeaters) — the normalisation reference.
/// - `Pw`: power + bandwidth optimised (minimum pitch, small sparse
///   repeaters).
/// - `B`: the baseline delay-optimised wire used for 64-bit data + tag
///   transfers (2x the metal area of a `W`/`Pw` wire).
/// - `L`: latency-optimised (8x width and spacing, or a transmission line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WireClass {
    /// Bandwidth-optimised minimum-pitch wire.
    W,
    /// Power-and-bandwidth-optimised wire (small, sparse repeaters).
    Pw,
    /// Baseline delay-optimised wire.
    B,
    /// Latency-optimised fat wire.
    L,
}

impl WireClass {
    /// All classes, in Table-2 order.
    pub const ALL: [WireClass; 4] = [WireClass::W, WireClass::Pw, WireClass::B, WireClass::L];

    /// The canonical (paper Table 2) parameters for this class.
    pub fn params(self) -> WireParams {
        match self {
            WireClass::W => WireParams {
                class: self,
                relative_delay: 1.0,
                relative_dynamic: 1.00,
                relative_leakage: 1.00,
                relative_area: 1.0,
                crossbar_latency: 0, // W-wires are not deployed on the network
                ring_hop_latency: 0,
            },
            WireClass::Pw => WireParams {
                class: self,
                relative_delay: 1.2,
                relative_dynamic: 0.30,
                relative_leakage: 0.30,
                relative_area: 1.0,
                crossbar_latency: 3,
                ring_hop_latency: 6,
            },
            WireClass::B => WireParams {
                class: self,
                relative_delay: 0.8,
                relative_dynamic: 0.58,
                relative_leakage: 0.55,
                relative_area: 2.0,
                crossbar_latency: 2,
                ring_hop_latency: 4,
            },
            WireClass::L => WireParams {
                class: self,
                relative_delay: 0.3,
                relative_dynamic: 0.84,
                relative_leakage: 0.79,
                relative_area: 8.0,
                crossbar_latency: 1,
                ring_hop_latency: 2,
            },
        }
    }

    /// Single-letter label used in tables ("W", "PW", "B", "L").
    pub fn label(self) -> &'static str {
        match self {
            WireClass::W => "W",
            WireClass::Pw => "PW",
            WireClass::B => "B",
            WireClass::L => "L",
        }
    }

    /// [`WireParams::relative_delay`] in exact tenths (`W` 10, `Pw` 12,
    /// `B` 8, `L` 3), so latency derivation in [`segment_latency`] is pure
    /// integer arithmetic: naive f64 `ceil` puts `0.8 x 2.5` a few ulps
    /// above 2.0 and would round the B-wire crossbar up to 3 cycles.
    pub fn relative_delay_tenths(self) -> u64 {
        match self {
            WireClass::W => 10,
            WireClass::Pw => 12,
            WireClass::B => 8,
            WireClass::L => 3,
        }
    }
}

/// Delay of one crossbar-length wire segment (the cluster-to-hub span of
/// Figure 2(a)) on the reference W-wire, in **milli-cycles**: 2.5 clock
/// cycles. This single anchor plus the Table-2 relative-delay column yields
/// every network latency the paper quotes in §5.2 — see
/// [`segment_latency`].
pub const W_SEGMENT_DELAY_MILLICYCLES: u64 = 2_500;

/// Cycles for a transfer on `class` wires to traverse `length`
/// crossbar-length wire segments:
/// `ceil(relative_delay x 2.5 cycles x length)`, computed exactly in
/// integer milli-cycles.
///
/// This derives the paper's §5.2 latency table from the wire geometry
/// instead of hard-coding per-hop constants: at `length` 1 (one crossbar
/// traversal) it reproduces [`WireParams::crossbar_latency`] for every
/// class (PW 3, B 2, L 1) and at `length` 2 (a ring hop spans two
/// crossbar-lengths) it reproduces [`WireParams::ring_hop_latency`]
/// (PW 6, B 4, L 2) — pinned by tests. Generated topologies feed other
/// lengths through their `@xbar<n>` / `@hop<n>` segment overrides.
///
/// `W` returns 0 for any length: W-wires are not deployed on the network
/// (they are the normalisation reference), mirroring the zeroed canonical
/// constants.
pub fn segment_latency(class: WireClass, length: u32) -> u64 {
    if class == WireClass::W {
        return 0;
    }
    let millicycles =
        class.relative_delay_tenths() * (W_SEGMENT_DELAY_MILLICYCLES / 10) * length as u64;
    millicycles.div_ceil(1_000)
}

impl fmt::Display for WireClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-Wires", self.label())
    }
}

/// Delay, energy and area characteristics of a wire class, all relative to
/// `W`-wires (Table 2 of the paper), plus the resulting network latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireParams {
    /// Which class these parameters describe.
    pub class: WireClass,
    /// End-to-end delay relative to a W-wire of the same length.
    pub relative_delay: f64,
    /// Dynamic energy per transferred bit relative to a W-wire.
    pub relative_dynamic: f64,
    /// Leakage power per wire relative to a W-wire.
    pub relative_leakage: f64,
    /// Metal-area footprint per wire relative to a W-wire.
    pub relative_area: f64,
    /// Cycles for one cluster→cluster transfer through the 4-cluster
    /// crossbar (paper §5.2).
    pub crossbar_latency: u32,
    /// Cycles per hop on the 16-cluster ring (paper §5.2).
    pub ring_hop_latency: u32,
}

/// Derives the relative-delay column of Table 2 from the physical models,
/// normalised to the W-wire, over a 10 mm global wire.
///
/// Returns `(w, pw, b, l)` delay ratios. The canonical values are
/// `(1.0, 1.2, 0.8, 0.3)`; the derivation should agree to within ~20%.
pub fn derive_relative_delays() -> (f64, f64, f64, f64) {
    let devices = DeviceParams::node_45nm();
    let len = 10e-3;
    let min = WireGeometry::minimum_45nm();

    let w = RepeatedWire::delay_optimal(min, devices);
    let pw = RepeatedWire::paper_power_optimal(min, devices);
    // B-wires keep the W width but take twice the metal area via spacing.
    let b = RepeatedWire::delay_optimal(min.with_spacing_factor(3.0), devices);
    let l = RepeatedWire::delay_optimal(min.scaled(8.0), devices);

    let base = w.delay(len);
    (
        1.0,
        pw.delay(len) / base,
        b.delay(len) / base,
        l.delay(len) / base,
    )
}

/// Derives the relative dynamic-energy column of Table 2 from the physical
/// models. Returns `(w, pw, b, l)`; canonical values `(1.0, 0.30, 0.58, 0.84)`.
pub fn derive_relative_dynamic_energy() -> (f64, f64, f64, f64) {
    let devices = DeviceParams::node_45nm();
    let len = 10e-3;
    let min = WireGeometry::minimum_45nm();

    let w = RepeatedWire::delay_optimal(min, devices);
    let pw = RepeatedWire::paper_power_optimal(min, devices);
    let b = RepeatedWire::delay_optimal(min.with_spacing_factor(3.0), devices);
    let l = RepeatedWire::delay_optimal(min.scaled(8.0), devices);

    let base = w.dynamic_energy(len);
    (
        1.0,
        pw.dynamic_energy(len) / base,
        b.dynamic_energy(len) / base,
        l.dynamic_energy(len) / base,
    )
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Wire class for this row.
    pub class: WireClass,
    /// Canonical relative delay (paper value).
    pub relative_delay: f64,
    /// Relative delay derived from the physics model.
    pub derived_delay: f64,
    /// Canonical relative dynamic energy.
    pub relative_dynamic: f64,
    /// Relative dynamic energy derived from the physics model.
    pub derived_dynamic: f64,
    /// Canonical relative leakage.
    pub relative_leakage: f64,
    /// 4-cluster crossbar transfer latency, cycles.
    pub crossbar_latency: u32,
    /// 16-cluster ring hop latency, cycles.
    pub ring_hop_latency: u32,
}

/// Regenerates Table 2: canonical values side by side with the values
/// derived from the analytical wire models.
pub fn table2() -> Vec<Table2Row> {
    let (dw, dpw, db, dl) = derive_relative_delays();
    let (ew, epw, eb, el) = derive_relative_dynamic_energy();
    let derived_delay = [dw, dpw, db, dl];
    let derived_dynamic = [ew, epw, eb, el];
    WireClass::ALL
        .iter()
        .enumerate()
        .map(|(i, &class)| {
            let p = class.params();
            Table2Row {
                class,
                relative_delay: p.relative_delay,
                derived_delay: derived_delay[i],
                relative_dynamic: p.relative_dynamic,
                derived_dynamic: derived_dynamic[i],
                relative_leakage: p.relative_leakage,
                crossbar_latency: p.crossbar_latency,
                ring_hop_latency: p.ring_hop_latency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_params_match_paper_table2() {
        let pw = WireClass::Pw.params();
        assert_eq!(pw.crossbar_latency, 3);
        assert_eq!(pw.ring_hop_latency, 6);
        assert!((pw.relative_dynamic - 0.30).abs() < 1e-12);

        let b = WireClass::B.params();
        assert_eq!(b.crossbar_latency, 2);
        assert_eq!(b.ring_hop_latency, 4);
        assert!((b.relative_delay - 0.8).abs() < 1e-12);
        assert!((b.relative_dynamic - 0.58).abs() < 1e-12);
        assert!((b.relative_leakage - 0.55).abs() < 1e-12);

        let l = WireClass::L.params();
        assert_eq!(l.crossbar_latency, 1);
        assert_eq!(l.ring_hop_latency, 2);
        assert!((l.relative_delay - 0.3).abs() < 1e-12);
    }

    #[test]
    fn derived_delays_track_canonical_values() {
        let (w, pw, b, l) = derive_relative_delays();
        assert!((w - 1.0).abs() < 1e-12);
        assert!((pw - 1.2).abs() < 0.25, "PW derived delay {pw}");
        assert!((b - 0.8).abs() < 0.2, "B derived delay {b}");
        assert!((l - 0.3).abs() < 0.12, "L derived delay {l}");
    }

    #[test]
    fn derived_dynamic_energy_tracks_canonical_values() {
        let (w, pw, b, l) = derive_relative_dynamic_energy();
        assert!((w - 1.0).abs() < 1e-12);
        assert!((0.25..=0.60).contains(&pw), "PW derived energy {pw}");
        assert!((b - 0.58).abs() < 0.3, "B derived energy {b}");
        // L-wires burn more energy than B but less than ~1.2x W.
        assert!(l > b && l < 1.3, "L derived energy {l}");
    }

    #[test]
    fn segment_latency_reproduces_the_canonical_network_latencies() {
        for class in WireClass::ALL {
            let p = class.params();
            // One crossbar-length segment: the §5.2 crossbar latency.
            assert_eq!(
                segment_latency(class, 1),
                p.crossbar_latency as u64,
                "{class}"
            );
            // A ring hop spans two crossbar-lengths: the ring-hop latency.
            assert_eq!(
                segment_latency(class, 2),
                p.ring_hop_latency as u64,
                "{class}"
            );
        }
    }

    #[test]
    fn segment_latency_is_exact_ceil_of_the_relative_delay() {
        // The tenths table is the relative-delay column, exactly.
        for class in WireClass::ALL {
            let tenths = class.relative_delay_tenths() as f64;
            assert!(
                (tenths / 10.0 - class.params().relative_delay).abs() < 1e-12,
                "{class}"
            );
        }
        // Longer segments: monotone, and ceil quantisation shows through
        // (3 L-segments is ceil(0.3 x 2.5 x 3) = ceil(2.25) = 3).
        assert_eq!(segment_latency(WireClass::L, 3), 3);
        assert_eq!(segment_latency(WireClass::B, 3), 6);
        assert_eq!(segment_latency(WireClass::Pw, 3), 9);
        // Non-decreasing in length (L-wire quantisation plateaus: lengths
        // 3 and 4 both ceil to 3 cycles), and growing over longer spans.
        for class in [WireClass::Pw, WireClass::B, WireClass::L] {
            for len in 1..16 {
                assert!(segment_latency(class, len + 1) >= segment_latency(class, len));
            }
            assert!(segment_latency(class, 16) > segment_latency(class, 1));
        }
        // W-wires never ride the network, whatever the length.
        assert_eq!(segment_latency(WireClass::W, 7), 0);
    }

    #[test]
    fn latency_ordering_is_l_b_pw() {
        let l = WireClass::L.params();
        let b = WireClass::B.params();
        let pw = WireClass::Pw.params();
        assert!(l.crossbar_latency < b.crossbar_latency);
        assert!(b.crossbar_latency < pw.crossbar_latency);
        assert!(l.ring_hop_latency < b.ring_hop_latency);
        assert!(b.ring_hop_latency < pw.ring_hop_latency);
    }

    #[test]
    fn table2_has_four_rows_in_order() {
        let t = table2();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].class, WireClass::W);
        assert_eq!(t[3].class, WireClass::L);
    }

    #[test]
    fn display_labels() {
        assert_eq!(WireClass::Pw.to_string(), "PW-Wires");
        assert_eq!(WireClass::L.label(), "L");
    }
}
