//! Integration tests for the transmission-line model against the RC wire
//! family.

use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};
use heterowire_wires::transmission::{transmission_line_headroom, TransmissionLine, C_LIGHT};

#[test]
fn headroom_grows_with_wire_length() {
    let tl = TransmissionLine::default();
    let rc = RepeatedWire::delay_optimal(
        WireGeometry::minimum_45nm().scaled(8.0),
        DeviceParams::node_45nm(),
    );
    let short = tl.speedup_vs(&rc, 2e-3);
    let long = tl.speedup_vs(&rc, 20e-3);
    // RC is linear after repeating, TL is linear too, so the ratio is
    // roughly constant — but segment quantisation makes short wires
    // relatively worse for RC. Either way TL must win on both.
    assert!(short > 1.0);
    assert!(long > 1.0);
}

#[test]
fn velocity_is_physical() {
    for eps in [1.0, 2.7, 3.9, 9.0] {
        let tl = TransmissionLine {
            eps_r: eps,
            ..TransmissionLine::default()
        };
        assert!(tl.velocity() <= C_LIGHT);
        assert!(tl.velocity() > 0.0);
    }
}

#[test]
fn default_headroom_is_meaningful() {
    // The paper motivates TLs as a future L-Wire implementation: at 45 nm
    // the headroom over an RC L-wire should be at least the 4/3 Chang et
    // al. measured at 180 nm.
    let h = transmission_line_headroom();
    assert!(h > 4.0 / 3.0, "headroom {h}");
    assert!(h < 20.0, "implausible headroom {h}");
}

#[test]
fn chang_energy_ratio() {
    assert!((TransmissionLine::chang_et_al().energy_vs_rc - 1.0 / 3.0).abs() < 1e-12);
}
