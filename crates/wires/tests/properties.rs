//! Randomized property-style tests over the wire-physics models, driven by
//! the workspace's own deterministic RNG (std-only; no external test deps).

use heterowire_rng::SmallRng;

use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::plane::{LinkComposition, WirePlane};
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};
use heterowire_wires::WireClass;

const CASES: usize = 64;

/// Widening a wire (width + spacing) never increases its RC product.
#[test]
fn widening_reduces_rc() {
    let mut rng = SmallRng::seed_from_u64(0x21e_0001);
    let base = WireGeometry::minimum_45nm();
    for _ in 0..CASES {
        let factor = rng.gen_range(1.0f64..16.0);
        let fat = base.scaled(factor);
        assert!(
            fat.rc_per_m2() <= base.rc_per_m2() * 1.0001,
            "factor {factor}"
        );
    }
}

/// Increasing spacing alone never increases capacitance.
#[test]
fn spacing_reduces_capacitance() {
    let mut rng = SmallRng::seed_from_u64(0x21e_0002);
    let base = WireGeometry::minimum_45nm();
    for _ in 0..CASES {
        let factor = rng.gen_range(1.0f64..8.0);
        let sparse = base.with_spacing_factor(factor);
        assert!(
            sparse.capacitance_per_m() <= base.capacitance_per_m() * 1.0001,
            "factor {factor}"
        );
    }
}

/// Repeated-wire delay grows monotonically (and ~linearly) with length.
#[test]
fn repeated_delay_monotone_in_length() {
    let mut rng = SmallRng::seed_from_u64(0x21e_0003);
    let w = RepeatedWire::delay_optimal(WireGeometry::minimum_45nm(), DeviceParams::node_45nm());
    for _ in 0..CASES {
        let x = rng.gen_range(1.0f64..20.0);
        let y = rng.gen_range(1.0f64..20.0);
        if x == y {
            continue;
        }
        let (len_a, len_b) = if x < y { (x, y) } else { (y, x) };
        let (a, b) = (w.delay(len_a * 1e-3), w.delay(len_b * 1e-3));
        assert!(a <= b, "delay({len_a}) {a} > delay({len_b}) {b}");
        // Linearity within segment-quantisation slack.
        let per_mm_a = a / len_a;
        let per_mm_b = b / len_b;
        assert!((per_mm_a / per_mm_b - 1.0).abs() < 0.2);
    }
}

/// The power-optimal search respects its delay budget and never spends
/// more energy than the delay-optimal wire.
#[test]
fn power_optimal_respects_budget() {
    let mut rng = SmallRng::seed_from_u64(0x21e_0004);
    let g = WireGeometry::minimum_45nm();
    let d = DeviceParams::node_45nm();
    let optimal = RepeatedWire::delay_optimal(g, d);
    for _ in 0..CASES {
        let penalty = rng.gen_range(1.0f64..3.0);
        let tuned = RepeatedWire::power_optimal_for_penalty(g, d, penalty);
        let len = 10e-3;
        assert!(
            tuned.delay(len) <= optimal.delay(len) * penalty * 1.0001,
            "penalty {penalty}"
        );
        assert!(tuned.dynamic_energy(len) <= optimal.dynamic_energy(len) * 1.0001);
    }
}

/// A larger delay budget never costs more energy (the frontier is
/// monotone).
#[test]
fn energy_frontier_is_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x21e_0005);
    let g = WireGeometry::minimum_45nm();
    let d = DeviceParams::node_45nm();
    for _ in 0..CASES {
        let p1 = rng.gen_range(1.0f64..2.5);
        let extra = rng.gen_range(0.05f64..1.0);
        let tight = RepeatedWire::power_optimal_for_penalty(g, d, p1);
        let loose = RepeatedWire::power_optimal_for_penalty(g, d, p1 + extra);
        let len = 10e-3;
        assert!(
            loose.dynamic_energy(len) <= tight.dynamic_energy(len) * 1.0001,
            "p1 {p1} extra {extra}"
        );
    }
}

/// Lane math: wires = lanes x wires-per-lane, and metal area scales
/// linearly with the wire count.
#[test]
fn plane_lane_math() {
    for lanes in 1u32..8 {
        for class in WireClass::ALL {
            let per = WirePlane::wires_per_lane(class);
            let plane = WirePlane::new(class, lanes * per);
            assert_eq!(plane.lanes(), lanes);
            let single = WirePlane::new(class, per);
            assert!((plane.metal_area() - single.metal_area() * lanes as f64).abs() < 1e-9);
        }
    }
}

/// Widening a link composition multiplies lanes and area uniformly.
#[test]
fn widened_composition_scales() {
    for factor in 1u32..4 {
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap();
        let wide = link.widened(factor);
        for class in [WireClass::B, WireClass::L] {
            assert_eq!(wide.lanes(class), link.lanes(class) * factor);
        }
        assert!((wide.metal_area() - link.metal_area() * factor as f64).abs() < 1e-9);
        assert!((wide.leakage_weight() - link.leakage_weight() * factor as f64).abs() < 1e-9);
    }
}
