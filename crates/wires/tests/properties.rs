//! Property-based tests over the wire-physics models.

use proptest::prelude::*;

use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::plane::{LinkComposition, WirePlane};
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};
use heterowire_wires::WireClass;

proptest! {
    /// Widening a wire (width + spacing) never increases its RC product.
    #[test]
    fn widening_reduces_rc(factor in 1.0f64..16.0) {
        let base = WireGeometry::minimum_45nm();
        let fat = base.scaled(factor);
        prop_assert!(fat.rc_per_m2() <= base.rc_per_m2() * 1.0001);
    }

    /// Increasing spacing alone never increases capacitance.
    #[test]
    fn spacing_reduces_capacitance(factor in 1.0f64..8.0) {
        let base = WireGeometry::minimum_45nm();
        let sparse = base.with_spacing_factor(factor);
        prop_assert!(sparse.capacitance_per_m() <= base.capacitance_per_m() * 1.0001);
    }

    /// Repeated-wire delay grows monotonically (and ~linearly) with length.
    #[test]
    fn repeated_delay_monotone_in_length(
        len_a in 1.0f64..20.0,
        len_b in 1.0f64..20.0,
    ) {
        prop_assume!(len_a < len_b);
        let w = RepeatedWire::delay_optimal(
            WireGeometry::minimum_45nm(),
            DeviceParams::node_45nm(),
        );
        let (a, b) = (w.delay(len_a * 1e-3), w.delay(len_b * 1e-3));
        prop_assert!(a <= b);
        // Linearity within segment-quantisation slack.
        let per_mm_a = a / len_a;
        let per_mm_b = b / len_b;
        prop_assert!((per_mm_a / per_mm_b - 1.0).abs() < 0.2);
    }

    /// The power-optimal search respects its delay budget and never spends
    /// more energy than the delay-optimal wire.
    #[test]
    fn power_optimal_respects_budget(penalty in 1.0f64..3.0) {
        let g = WireGeometry::minimum_45nm();
        let d = DeviceParams::node_45nm();
        let optimal = RepeatedWire::delay_optimal(g, d);
        let tuned = RepeatedWire::power_optimal_for_penalty(g, d, penalty);
        let len = 10e-3;
        prop_assert!(tuned.delay(len) <= optimal.delay(len) * penalty * 1.0001);
        prop_assert!(tuned.dynamic_energy(len) <= optimal.dynamic_energy(len) * 1.0001);
    }

    /// A larger delay budget never costs more energy (the frontier is
    /// monotone).
    #[test]
    fn energy_frontier_is_monotone(p1 in 1.0f64..2.5, extra in 0.05f64..1.0) {
        let g = WireGeometry::minimum_45nm();
        let d = DeviceParams::node_45nm();
        let tight = RepeatedWire::power_optimal_for_penalty(g, d, p1);
        let loose = RepeatedWire::power_optimal_for_penalty(g, d, p1 + extra);
        let len = 10e-3;
        prop_assert!(loose.dynamic_energy(len) <= tight.dynamic_energy(len) * 1.0001);
    }

    /// Lane math: wires = lanes x wires-per-lane, and metal area scales
    /// linearly with the wire count.
    #[test]
    fn plane_lane_math(lanes in 1u32..8) {
        for class in WireClass::ALL {
            let per = WirePlane::wires_per_lane(class);
            let plane = WirePlane::new(class, lanes * per);
            prop_assert_eq!(plane.lanes(), lanes);
            let single = WirePlane::new(class, per);
            prop_assert!(
                (plane.metal_area() - single.metal_area() * lanes as f64).abs() < 1e-9
            );
        }
    }

    /// Widening a link composition multiplies lanes and area uniformly.
    #[test]
    fn widened_composition_scales(factor in 1u32..4) {
        let link = LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ]);
        let wide = link.widened(factor);
        for class in [WireClass::B, WireClass::L] {
            prop_assert_eq!(wide.lanes(class), link.lanes(class) * factor);
        }
        prop_assert!((wide.metal_area() - link.metal_area() * factor as f64).abs() < 1e-9);
        prop_assert!(
            (wide.leakage_weight() - link.leakage_weight() * factor as f64).abs() < 1e-9
        );
    }
}
