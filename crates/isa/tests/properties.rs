//! Property-based tests over the micro-op layer.

use proptest::prelude::*;

use heterowire_isa::value::{bit_width, fits_in, is_narrow};
use heterowire_isa::{ArchReg, MicroOp, OpClass, RegClass};

proptest! {
    /// `bit_width` is the inverse of shifting: values of width w fit in w
    /// bits but not in w-1.
    #[test]
    fn bit_width_is_tight(v in any::<u64>()) {
        let w = bit_width(v);
        prop_assert!(fits_in(v, w));
        if w > 0 {
            prop_assert!(!fits_in(v, w - 1));
        }
    }

    /// The narrow predicate agrees with `fits_in(_, 10)`.
    #[test]
    fn narrow_is_ten_bits(v in any::<u64>()) {
        prop_assert_eq!(is_narrow(v), fits_in(v, 10));
    }

    /// Builder round-trip preserves every field for ALU ops.
    #[test]
    fn builder_roundtrip(
        seq in any::<u64>(),
        pc in any::<u64>(),
        d in 0u8..32,
        s1 in 0u8..32,
        s2 in 0u8..32,
        result in any::<u64>(),
    ) {
        let op = MicroOp::builder(seq, pc, OpClass::IntAlu)
            .dest(ArchReg::int(d))
            .src(ArchReg::int(s1))
            .src(ArchReg::int(s2))
            .result(result)
            .build();
        prop_assert_eq!(op.seq(), seq);
        prop_assert_eq!(op.pc(), pc);
        prop_assert_eq!(op.dest(), Some(ArchReg::int(d)));
        prop_assert_eq!(op.num_srcs(), 2);
        prop_assert_eq!(op.result(), result);
        prop_assert_eq!(
            op.is_narrow_result(),
            result <= 1023,
        );
    }

    /// Flat register indices are a bijection onto 0..64.
    #[test]
    fn flat_index_bijection(i in 0u8..32) {
        let int = ArchReg::int(i);
        let fp = ArchReg::fp(i);
        prop_assert!(int.flat_index() < 32);
        prop_assert!((32..64).contains(&fp.flat_index()));
        prop_assert_ne!(int.flat_index(), fp.flat_index());
    }

    /// Store data always lands in slot 1, leaving slot 0 for the base.
    #[test]
    fn store_slots_are_stable(data in 0u8..32, base in proptest::option::of(0u8..32)) {
        let mut b = MicroOp::builder(0, 0, OpClass::Store).addr(0x100);
        if let Some(base) = base {
            b = b.src(ArchReg::int(base));
        }
        let op = b.src_data(ArchReg::int(data)).build();
        let slots = op.src_slots();
        prop_assert_eq!(slots[1], Some(ArchReg::int(data)));
        prop_assert_eq!(slots[0], base.map(ArchReg::int));
    }

    /// Every op class reports a unit and a positive latency, and only FP
    /// classes claim FP units.
    #[test]
    fn opclass_invariants(idx in 0usize..9) {
        let op = OpClass::ALL[idx];
        prop_assert!(op.latency() >= 1);
        let fp_unit = matches!(
            op.unit(),
            heterowire_isa::FuKind::FpAlu | heterowire_isa::FuKind::FpMulDiv
        );
        prop_assert_eq!(fp_unit, op.is_fp());
    }
}

#[test]
fn reg_class_partition() {
    for i in 0..32 {
        assert_eq!(ArchReg::int(i).class(), RegClass::Int);
        assert_eq!(ArchReg::fp(i).class(), RegClass::Fp);
    }
}
