//! Randomized property-style tests over the micro-op layer, driven by the
//! workspace's own deterministic RNG (std-only; no external test deps).

use heterowire_rng::SmallRng;

use heterowire_isa::value::{bit_width, fits_in, is_narrow};
use heterowire_isa::{ArchReg, MicroOp, OpClass, RegClass};

const CASES: usize = 512;

/// `bit_width` is the inverse of shifting: values of width w fit in w bits
/// but not in w-1.
#[test]
fn bit_width_is_tight() {
    let mut rng = SmallRng::seed_from_u64(0x15a_0001);
    for _ in 0..CASES {
        let v: u64 = rng.gen();
        let w = bit_width(v);
        assert!(fits_in(v, w), "{v:#x} must fit in {w} bits");
        if w > 0 {
            assert!(!fits_in(v, w - 1), "{v:#x} must not fit in {} bits", w - 1);
        }
    }
    // Edges the random draw may miss.
    for v in [0u64, 1, 1023, 1024, u64::MAX] {
        let w = bit_width(v);
        assert!(fits_in(v, w));
    }
}

/// The narrow predicate agrees with `fits_in(_, 10)`.
#[test]
fn narrow_is_ten_bits() {
    let mut rng = SmallRng::seed_from_u64(0x15a_0002);
    for _ in 0..CASES {
        // Mix full-range values with small ones so both outcomes occur.
        let v = if rng.gen_bool(0.5) {
            rng.gen_range(0u64..4096)
        } else {
            rng.gen()
        };
        assert_eq!(is_narrow(v), fits_in(v, 10), "v = {v:#x}");
    }
}

/// Builder round-trip preserves every field for ALU ops.
#[test]
fn builder_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x15a_0003);
    for _ in 0..CASES {
        let seq: u64 = rng.gen();
        let pc: u64 = rng.gen();
        let d = rng.gen_range(0u8..32);
        let s1 = rng.gen_range(0u8..32);
        let s2 = rng.gen_range(0u8..32);
        let result: u64 = rng.gen();
        let op = MicroOp::builder(seq, pc, OpClass::IntAlu)
            .dest(ArchReg::int(d))
            .src(ArchReg::int(s1))
            .src(ArchReg::int(s2))
            .result(result)
            .build();
        assert_eq!(op.seq(), seq);
        assert_eq!(op.pc(), pc);
        assert_eq!(op.dest(), Some(ArchReg::int(d)));
        assert_eq!(op.num_srcs(), 2);
        assert_eq!(op.result(), result);
        assert_eq!(op.is_narrow_result(), result <= 1023);
    }
}

/// Flat register indices are a bijection onto 0..64.
#[test]
fn flat_index_bijection() {
    for i in 0u8..32 {
        let int = ArchReg::int(i);
        let fp = ArchReg::fp(i);
        assert!(int.flat_index() < 32);
        assert!((32..64).contains(&fp.flat_index()));
        assert_ne!(int.flat_index(), fp.flat_index());
    }
}

/// Store data always lands in slot 1, leaving slot 0 for the base.
#[test]
fn store_slots_are_stable() {
    let mut rng = SmallRng::seed_from_u64(0x15a_0004);
    for _ in 0..CASES {
        let data = rng.gen_range(0u8..32);
        let base = if rng.gen_bool(0.5) {
            Some(rng.gen_range(0u8..32))
        } else {
            None
        };
        let mut b = MicroOp::builder(0, 0, OpClass::Store).addr(0x100);
        if let Some(base) = base {
            b = b.src(ArchReg::int(base));
        }
        let op = b.src_data(ArchReg::int(data)).build();
        let slots = op.src_slots();
        assert_eq!(slots[1], Some(ArchReg::int(data)));
        assert_eq!(slots[0], base.map(ArchReg::int));
    }
}

/// Every op class reports a unit and a positive latency, and only FP
/// classes claim FP units.
#[test]
fn opclass_invariants() {
    for op in OpClass::ALL {
        assert!(op.latency() >= 1);
        let fp_unit = matches!(
            op.unit(),
            heterowire_isa::FuKind::FpAlu | heterowire_isa::FuKind::FpMulDiv
        );
        assert_eq!(fp_unit, op.is_fp(), "{op:?}");
    }
}

#[test]
fn reg_class_partition() {
    for i in 0..32 {
        assert_eq!(ArchReg::int(i).class(), RegClass::Int);
        assert_eq!(ArchReg::fp(i).class(), RegClass::Fp);
    }
}
