//! Architectural registers.

use std::fmt;

/// Number of architectural integer registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of architectural floating-point registers.
pub const NUM_FP_REGS: u8 = 32;

/// Which register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Integer register file.
    Int,
    /// Floating-point register file.
    Fp,
}

/// An architectural register: a class and an index within the file.
///
/// # Examples
///
/// ```
/// use heterowire_isa::reg::{ArchReg, RegClass};
///
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(ArchReg::fp(3).to_string(), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_REGS`.
    pub fn int(index: u8) -> Self {
        assert!(
            index < NUM_INT_REGS,
            "integer register {index} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_REGS`.
    pub fn fp(index: u8) -> Self {
        assert!(index < NUM_FP_REGS, "fp register {index} out of range");
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// Register file this register lives in.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// Index within the register file.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Flat index over both files (`0..64`), handy for dependence tables.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_REGS as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers across both files.
    pub const fn total() -> usize {
        (NUM_INT_REGS + NUM_FP_REGS) as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_indices_do_not_collide() {
        let mut seen = vec![false; ArchReg::total()];
        for i in 0..NUM_INT_REGS {
            let idx = ArchReg::int(i).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        for i in 0..NUM_FP_REGS {
            let idx = ArchReg::fp(i).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn ordering_groups_by_class() {
        assert!(ArchReg::int(31) < ArchReg::fp(0));
    }
}
