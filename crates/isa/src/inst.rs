//! The dynamic micro-op record that flows through the simulator.
//!
//! A [`MicroOp`] is one *dynamic* instruction from a trace: operation class,
//! architectural source/destination registers, effective address (for memory
//! ops), produced value (for narrow-operand classification) and branch
//! outcome (for the front-end model).

use std::fmt;

use crate::opclass::OpClass;
use crate::reg::ArchReg;
use crate::value;

/// Branch outcome attached to a [`MicroOp`] of class [`OpClass::Branch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Target address if taken.
    pub target: u64,
}

/// One dynamic instruction.
///
/// Construct with [`MicroOp::builder`]; the builder validates the
/// op-class-specific invariants (memory ops carry addresses, branches carry
/// outcomes, stores and branches produce no register result).
///
/// # Examples
///
/// ```
/// use heterowire_isa::inst::MicroOp;
/// use heterowire_isa::opclass::OpClass;
/// use heterowire_isa::reg::ArchReg;
///
/// let op = MicroOp::builder(0, 0x1000, OpClass::IntAlu)
///     .dest(ArchReg::int(3))
///     .src(ArchReg::int(1))
///     .src(ArchReg::int(2))
///     .result(42)
///     .build();
/// assert!(op.is_narrow_result());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    seq: u64,
    pc: u64,
    op: OpClass,
    dest: Option<ArchReg>,
    srcs: [Option<ArchReg>; 2],
    addr: Option<u64>,
    result: u64,
    branch: Option<BranchInfo>,
}

impl MicroOp {
    /// Starts building a micro-op with the mandatory fields.
    pub fn builder(seq: u64, pc: u64, op: OpClass) -> MicroOpBuilder {
        MicroOpBuilder {
            inner: MicroOp {
                seq,
                pc,
                op,
                dest: None,
                srcs: [None, None],
                addr: None,
                result: 0,
                branch: None,
            },
        }
    }

    /// Dynamic sequence number (position in the trace).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Program counter of the static instruction.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Operation class.
    pub fn op(&self) -> OpClass {
        self.op
    }

    /// Destination register, if the op produces one.
    pub fn dest(&self) -> Option<ArchReg> {
        self.dest
    }

    /// Source registers (iterate over the `Some` entries).
    pub fn srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Raw source slots. Slot 0 is the address base for memory ops; slot 1
    /// is the data operand for stores.
    pub fn src_slots(&self) -> [Option<ArchReg>; 2] {
        self.srcs
    }

    /// Number of source registers.
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Effective address for loads and stores.
    pub fn addr(&self) -> Option<u64> {
        self.addr
    }

    /// The value produced by the op (0 for stores/branches).
    pub fn result(&self) -> u64 {
        self.result
    }

    /// Branch outcome for branches.
    pub fn branch(&self) -> Option<BranchInfo> {
        self.branch
    }

    /// True if the produced value fits the narrow L-Wire encoding and the
    /// destination is an integer register (the paper restricts narrow
    /// transfers to integer results in `0..=1023`).
    pub fn is_narrow_result(&self) -> bool {
        self.dest
            .map(|d| d.class() == crate::reg::RegClass::Int && value::is_narrow(self.result))
            .unwrap_or(false)
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:#x} {}", self.seq, self.pc, self.op)?;
        if let Some(d) = self.dest {
            write!(f, " {d} <-")?;
        }
        for s in self.srcs() {
            write!(f, " {s}")?;
        }
        if let Some(a) = self.addr {
            write!(f, " @{a:#x}")?;
        }
        if let Some(b) = self.branch {
            write!(f, " {}", if b.taken { "T" } else { "NT" })?;
        }
        Ok(())
    }
}

/// Builder for [`MicroOp`]; see [`MicroOp::builder`].
#[derive(Debug, Clone)]
pub struct MicroOpBuilder {
    inner: MicroOp,
}

impl MicroOpBuilder {
    /// Sets the destination register.
    pub fn dest(mut self, reg: ArchReg) -> Self {
        self.inner.dest = Some(reg);
        self
    }

    /// Adds a source register (at most two).
    ///
    /// # Panics
    ///
    /// Panics if two sources are already present.
    pub fn src(mut self, reg: ArchReg) -> Self {
        let slot = self
            .inner
            .srcs
            .iter_mut()
            .find(|s| s.is_none())
            .expect("a micro-op has at most two source registers");
        *slot = Some(reg);
        self
    }

    /// Sets source slot 1 explicitly (the store-data slot), leaving slot 0
    /// for the address base even when no base register is read.
    ///
    /// # Panics
    ///
    /// Panics if slot 1 is already occupied.
    pub fn src_data(mut self, reg: ArchReg) -> Self {
        assert!(self.inner.srcs[1].is_none(), "data slot already occupied");
        self.inner.srcs[1] = Some(reg);
        self
    }

    /// Sets the effective address (loads/stores only).
    pub fn addr(mut self, addr: u64) -> Self {
        self.inner.addr = Some(addr);
        self
    }

    /// Sets the produced value.
    pub fn result(mut self, value: u64) -> Self {
        self.inner.result = value;
        self
    }

    /// Sets the branch outcome (branches only).
    pub fn branch(mut self, taken: bool, target: u64) -> Self {
        self.inner.branch = Some(BranchInfo { taken, target });
        self
    }

    /// Finishes the micro-op.
    ///
    /// # Panics
    ///
    /// Panics if the op-class invariants are violated: memory ops without an
    /// address, branches without an outcome, stores/branches with a
    /// destination, or FP ops writing integer registers (and vice versa for
    /// loads, which may write either file).
    pub fn build(self) -> MicroOp {
        let op = self.inner.op;
        if op.is_mem() {
            assert!(
                self.inner.addr.is_some(),
                "{op} micro-op requires an effective address"
            );
        }
        match op {
            OpClass::Branch => {
                assert!(
                    self.inner.branch.is_some(),
                    "branch micro-op requires an outcome"
                );
                assert!(self.inner.dest.is_none(), "branches produce no register");
            }
            OpClass::Store => {
                assert!(self.inner.dest.is_none(), "stores produce no register");
            }
            OpClass::Load => {
                assert!(self.inner.dest.is_some(), "loads must have a destination");
            }
            _ => {
                assert!(
                    self.inner.dest.is_some(),
                    "{op} micro-op must have a destination"
                );
                if let Some(d) = self.inner.dest {
                    assert_eq!(
                        d.class() == crate::reg::RegClass::Fp,
                        op.is_fp(),
                        "destination register file must match the op class"
                    );
                }
            }
        }
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegClass;

    #[test]
    fn builder_roundtrip() {
        let op = MicroOp::builder(7, 0x400, OpClass::Load)
            .dest(ArchReg::int(4))
            .src(ArchReg::int(2))
            .addr(0xdead_0000)
            .result(1024)
            .build();
        assert_eq!(op.seq(), 7);
        assert_eq!(op.addr(), Some(0xdead_0000));
        assert_eq!(op.num_srcs(), 1);
        assert!(!op.is_narrow_result());
    }

    #[test]
    fn narrow_detection_requires_int_dest() {
        let fp = MicroOp::builder(0, 0, OpClass::FpAlu)
            .dest(ArchReg::fp(1))
            .result(5)
            .build();
        assert!(!fp.is_narrow_result(), "FP results are never narrow");
        let int = MicroOp::builder(0, 0, OpClass::IntAlu)
            .dest(ArchReg::int(1))
            .result(5)
            .build();
        assert!(int.is_narrow_result());
    }

    #[test]
    #[should_panic(expected = "effective address")]
    fn load_without_addr_panics() {
        let _ = MicroOp::builder(0, 0, OpClass::Load)
            .dest(ArchReg::int(0))
            .build();
    }

    #[test]
    #[should_panic(expected = "outcome")]
    fn branch_without_outcome_panics() {
        let _ = MicroOp::builder(0, 0, OpClass::Branch).build();
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn three_sources_panic() {
        let _ = MicroOp::builder(0, 0, OpClass::IntAlu)
            .dest(ArchReg::int(0))
            .src(ArchReg::int(1))
            .src(ArchReg::int(2))
            .src(ArchReg::int(3));
    }

    #[test]
    #[should_panic(expected = "register file")]
    fn fp_op_with_int_dest_panics() {
        let _ = MicroOp::builder(0, 0, OpClass::FpMul)
            .dest(ArchReg::int(0))
            .build();
    }

    #[test]
    fn display_contains_fields() {
        let op = MicroOp::builder(1, 0x10, OpClass::Branch)
            .branch(true, 0x20)
            .build();
        let s = op.to_string();
        assert!(s.contains("br") && s.contains('T'), "{s}");
    }

    #[test]
    fn loads_may_write_fp_file() {
        let op = MicroOp::builder(0, 0, OpClass::Load)
            .dest(ArchReg::fp(2))
            .addr(64)
            .build();
        assert_eq!(op.dest().unwrap().class(), RegClass::Fp);
    }
}
