#![warn(missing_docs)]
//! # heterowire-isa
//!
//! The micro-op instruction representation shared by every component of the
//! `heterowire` clustered-processor simulator (a reproduction of the HPCA-11
//! 2005 wire-management paper, which used the Alpha AXP ISA under
//! SimpleScalar).
//!
//! The simulator is trace-driven, so the ISA layer is deliberately compact:
//! a [`inst::MicroOp`] captures exactly what the timing model needs — the
//! operation class and its functional-unit latency ([`opclass`]), up to two
//! architectural source registers and one destination ([`reg`]), the
//! effective address of memory operations, the branch outcome, and the
//! produced value, from which the narrow-operand classification is derived
//! ([`value`]).
//!
//! ```
//! use heterowire_isa::inst::MicroOp;
//! use heterowire_isa::opclass::OpClass;
//! use heterowire_isa::reg::ArchReg;
//!
//! let add = MicroOp::builder(0, 0x120004, OpClass::IntAlu)
//!     .dest(ArchReg::int(1))
//!     .src(ArchReg::int(2))
//!     .result(977)
//!     .build();
//! // 977 <= 1023, so this result could ride the 18-bit L-Wire lane:
//! assert!(add.is_narrow_result());
//! ```

pub mod inst;
pub mod opclass;
pub mod reg;
pub mod value;

pub use inst::{BranchInfo, MicroOp, MicroOpBuilder};
pub use opclass::{FuKind, OpClass};
pub use reg::{ArchReg, RegClass};
