//! Operand value widths and the narrow-operand classification.
//!
//! The paper's simplest data-compaction scheme sends integer results in
//! `0..=1023` — ten payload bits — on the 18-bit L-Wire lane (8-bit tag +
//! 10-bit data). The PowerPC 603's leading-zero detector is cited as an
//! existence proof that the required hardware is trivial.

/// Payload bits available on one L-Wire lane after the 8-bit register tag.
pub const NARROW_PAYLOAD_BITS: u32 = 10;

/// Largest value that fits the default narrow-operand encoding (`0..=1023`).
pub const NARROW_MAX: u64 = (1 << NARROW_PAYLOAD_BITS) - 1;

/// Number of significant bits in `value` (0 for value 0).
///
/// # Examples
///
/// ```
/// use heterowire_isa::value::bit_width;
/// assert_eq!(bit_width(0), 0);
/// assert_eq!(bit_width(1), 1);
/// assert_eq!(bit_width(1023), 10);
/// assert_eq!(bit_width(1024), 11);
/// ```
pub fn bit_width(value: u64) -> u32 {
    64 - value.leading_zeros()
}

/// True if `value` can be encoded in the narrow L-Wire format
/// (unsigned, at most [`NARROW_PAYLOAD_BITS`] bits).
pub fn is_narrow(value: u64) -> bool {
    value <= NARROW_MAX
}

/// True if `value` fits in `bits` payload bits — used by the narrow-width
/// ablation sweeps.
pub fn fits_in(value: u64, bits: u32) -> bool {
    if bits >= 64 {
        return true;
    }
    value < (1u64 << bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_boundary() {
        assert!(is_narrow(0));
        assert!(is_narrow(1023));
        assert!(!is_narrow(1024));
    }

    #[test]
    fn bit_width_monotone() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 255, 1 << 20, u64::MAX] {
            let w = bit_width(v);
            assert!(w >= prev);
            prev = w;
        }
        assert_eq!(bit_width(u64::MAX), 64);
    }

    #[test]
    fn fits_in_edges() {
        assert!(fits_in(1023, 10));
        assert!(!fits_in(1024, 10));
        assert!(fits_in(u64::MAX, 64));
        assert!(fits_in(0, 0)); // 0 < 1<<0 == 1
        assert!(fits_in(0, 1));
    }
}
