//! Operation classes and their execution latencies.

use std::fmt;

/// Functional classification of a micro-op, matching the Table-1 machine
/// (one integer ALU, one integer mul/div, one FP ALU and one FP mul/div per
/// cluster, plus memory and control operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Simple integer arithmetic/logic, 1 cycle.
    IntAlu,
    /// Integer multiply, 3 cycles (variable on narrow operands in real
    /// PowerPC-style hardware; we use the worst case).
    IntMul,
    /// Integer divide, 20 cycles, unpipelined.
    IntDiv,
    /// Floating-point add/sub/compare, 2 cycles.
    FpAlu,
    /// Floating-point multiply, 4 cycles.
    FpMul,
    /// Floating-point divide, 12 cycles, unpipelined.
    FpDiv,
    /// Memory load: address generation in the cluster, then cache access.
    Load,
    /// Memory store: address + data sent to the LSQ.
    Store,
    /// Conditional branch (resolved on an integer ALU).
    Branch,
}

impl OpClass {
    /// All op classes.
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Execution latency in cycles on the functional unit (cache access time
    /// for loads is modelled separately by the memory hierarchy).
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            // Address generation.
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// Which functional unit executes this op.
    pub fn unit(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Load | OpClass::Store => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMulDiv,
            OpClass::FpAlu => FuKind::FpAlu,
            OpClass::FpMul | OpClass::FpDiv => FuKind::FpMulDiv,
        }
    }

    /// True for ops whose destination lives in the FP register file.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True if the unit is pipelined (can accept a new op every cycle).
    pub fn pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::FpAlu => "falu",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "br",
        };
        f.write_str(s)
    }
}

/// The four functional-unit kinds each cluster owns one of (Table 1:
/// "Integer ALUs/mult-div 1/1 per cluster, FP ALUs/mult-div 1/1").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches and address generation).
    IntAlu,
    /// Integer multiplier/divider.
    IntMulDiv,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiplier/divider.
    FpMulDiv,
}

impl FuKind {
    /// All functional-unit kinds.
    pub const ALL: [FuKind; 4] = [
        FuKind::IntAlu,
        FuKind::IntMulDiv,
        FuKind::FpAlu,
        FuKind::FpMulDiv,
    ];

    /// Index into a per-cluster FU array.
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMulDiv => 1,
            FuKind::FpAlu => 2,
            FuKind::FpMulDiv => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_positive_and_ordered() {
        for op in OpClass::ALL {
            assert!(op.latency() >= 1);
        }
        assert!(OpClass::IntMul.latency() > OpClass::IntAlu.latency());
        assert!(OpClass::IntDiv.latency() > OpClass::IntMul.latency());
        assert!(OpClass::FpDiv.latency() > OpClass::FpMul.latency());
    }

    #[test]
    fn fp_ops_use_fp_units() {
        assert!(OpClass::FpMul.is_fp());
        assert_eq!(OpClass::FpMul.unit(), FuKind::FpMulDiv);
        assert!(!OpClass::Load.is_fp());
        assert_eq!(OpClass::Branch.unit(), FuKind::IntAlu);
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!OpClass::IntDiv.pipelined());
        assert!(!OpClass::FpDiv.pipelined());
        assert!(OpClass::IntMul.pipelined());
    }

    #[test]
    fn fu_indices_are_unique() {
        let mut seen = [false; 4];
        for k in FuKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
    }

    #[test]
    fn display_is_short() {
        assert_eq!(OpClass::Load.to_string(), "load");
        assert_eq!(OpClass::Branch.to_string(), "br");
    }
}
