//! Bounded work-queue executor shared by the suite and sweep drivers.
//!
//! The seed spawned one OS thread per benchmark (23 threads regardless of
//! core count) and ran the ten interconnect models strictly serially. This
//! module replaces both with a single pool: callers flatten their work into
//! a job list, and a fixed set of workers (sized to
//! [`std::thread::available_parallelism`] by default) drains a shared queue.
//! Results come back in job order, so parallel execution is bit-identical
//! to a serial loop over the same jobs.
//!
//! Each job runs under [`std::panic::catch_unwind`], so one panicking
//! configuration (a watchdog abort, a refused spec) surfaces as a
//! [`JobPanic`] for its row while every other job still completes:
//! [`run_indexed_catching`] returns the per-job `Result`s, and
//! [`run_indexed`] keeps the historical all-or-nothing contract by
//! re-raising the first failure after the pool drains.

use std::collections::VecDeque;
use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Worker count used when the caller does not specify one: the number of
/// hardware threads the OS reports, with a floor of 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A job that panicked inside the executor: its position in the submitted
/// item list plus the rendered panic payload. Sweep harnesses turn this
/// into a failed row (and a non-zero exit) instead of losing the whole
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job in the submitted item list.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case: `panic!` with a message). Non-string payloads render as a
    /// placeholder.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Runs `f` over every item on a pool of `workers` scoped threads and
/// returns the per-job outcomes in item order: `Ok(result)` for jobs that
/// completed, `Err(JobPanic)` for jobs that panicked. A panicking job
/// never takes down its worker or the other jobs.
///
/// Jobs are drained from a shared queue, so long and short jobs interleave
/// freely instead of being bucketed per thread. `workers` is clamped to
/// `1..=items.len()`; with one worker (or one item) the pool is skipped
/// entirely and the items run inline.
pub fn run_indexed_catching<T, R, F>(
    items: Vec<T>,
    workers: usize,
    f: F,
) -> Vec<Result<R, JobPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    let run_one = |i: usize, item: T| {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| JobPanic {
            index: i,
            message: payload_message(payload),
        })
    };
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<Result<R, JobPanic>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("executor queue poisoned").pop_front();
                let Some((i, item)) = job else { break };
                let result = run_one(i, item);
                *slots[i].lock().expect("executor slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("executor slot poisoned")
                .expect("all jobs drained before the scope ended")
        })
        .collect()
}

/// [`run_indexed_catching`] with the historical all-or-nothing contract:
/// returns the plain results, re-raising the first job panic (tagged with
/// its job index) after every job has run.
pub fn run_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_indexed_catching(items, workers, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for workers in [1, 2, 4, 7] {
            let out = run_indexed((0..100u64).collect(), workers, |i| i * i);
            assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = run_indexed(Vec::<u64>::new(), 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = run_indexed(vec![1u64, 2, 3], 64, |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "sweep job 3 panicked: job 3 exploded")]
    fn propagates_panics() {
        run_indexed((0..8u64).collect(), 2, |i| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }

    #[test]
    fn isolates_panicking_jobs() {
        for workers in [1, 4] {
            let out = run_indexed_catching((0..8u64).collect(), workers, |i| {
                assert!(i != 5, "job five died");
                i * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, 5);
                    assert!(p.message.contains("job five died"), "{p}");
                    assert!(p.to_string().starts_with("sweep job 5 panicked"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u64 * 10);
                }
            }
        }
    }
}
