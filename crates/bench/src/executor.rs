//! Bounded work-queue executor shared by the suite and sweep drivers.
//!
//! The seed spawned one OS thread per benchmark (23 threads regardless of
//! core count) and ran the ten interconnect models strictly serially. This
//! module replaces both with a single pool: callers flatten their work into
//! a job list, and a fixed set of workers (sized to
//! [`std::thread::available_parallelism`] by default) drains a shared queue.
//! Results come back in job order, so parallel execution is bit-identical
//! to a serial loop over the same jobs.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Worker count used when the caller does not specify one: the number of
/// hardware threads the OS reports, with a floor of 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every item on a pool of `workers` scoped threads and
/// returns the results in item order.
///
/// Jobs are drained from a shared queue, so long and short jobs interleave
/// freely instead of being bucketed per thread. `workers` is clamped to
/// `1..=items.len()`; with one worker (or one item) the pool is skipped
/// entirely and the items run inline. A panic in any job propagates to the
/// caller when its worker thread is joined.
pub fn run_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = queue.lock().expect("executor queue poisoned").pop_front();
                let Some((i, item)) = job else { break };
                let result = f(item);
                *slots[i].lock().expect("executor slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("executor slot poisoned")
                .expect("all jobs drained before the scope ended")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for workers in [1, 2, 4, 7] {
            let out = run_indexed((0..100u64).collect(), workers, |i| i * i);
            assert_eq!(out, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = run_indexed(Vec::<u64>::new(), 8, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let out = run_indexed(vec![1u64, 2, 3], 64, |i| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    // `std::thread::scope` re-raises panics from unjoined workers with its
    // own payload; what matters is that the caller does not get a silent
    // partial result.
    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn propagates_panics() {
        run_indexed((0..8u64).collect(), 2, |i| {
            if i == 3 {
                panic!("job 3 panicked");
            }
            i
        });
    }
}
