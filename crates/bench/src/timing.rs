//! Minimal wall-clock timing harness (std-only stand-in for Criterion).
//!
//! Used by the `benches/` programs and the `sweep_timing` binary. Each
//! measurement runs one untimed warmup iteration, then `iters` timed
//! iterations, and reports the mean and minimum per-iteration wall-clock.

use std::time::{Duration, Instant};

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Measurement label.
    pub name: String,
    /// Timed iterations (excluding the warmup pass).
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Minimum wall-clock over all iterations.
    pub min: Duration,
}

impl Sample {
    /// Aligned one-line report.
    pub fn report(&self) -> String {
        format!(
            "{:<44} {:>4} iters  mean {:>12.3?}  min {:>12.3?}",
            self.name, self.iters, self.mean, self.min
        )
    }
}

/// Times `f` over `iters` iterations after one warmup pass.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "need at least one timed iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        min = min.min(t.elapsed());
    }
    let total = start.elapsed();
    Sample {
        name: name.to_string(),
        iters,
        mean: total / iters,
        min,
    }
}

/// Times a single run of `f`, returning its result and the elapsed time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations() {
        let mut calls = 0u32;
        let s = bench("noop", 5, || calls += 1);
        assert_eq!(calls, 6, "5 timed + 1 warmup");
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 42u32);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }
}
