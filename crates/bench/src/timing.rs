//! Minimal wall-clock timing harness (std-only stand-in for Criterion).
//!
//! Used by the `benches/` programs and the `sweep_timing` binary. Each
//! measurement runs one untimed warmup iteration, then `iters` timed
//! iterations, and reports the mean and minimum per-iteration wall-clock.
//!
//! [`BenchReport`] turns a set of measurements into the machine-readable
//! `results/bench.json` artifact CI tracks per PR (schema-checked by
//! [`validate_bench_json`]; timings themselves are warn-only on shared
//! runners, so only schema or determinism violations fail the gate).

use std::time::{Duration, Instant};

use heterowire_telemetry::json::{parse, JsonWriter};

/// One timed measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Measurement label.
    pub name: String,
    /// Timed iterations (excluding the warmup pass).
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Minimum wall-clock over all iterations.
    pub min: Duration,
}

impl Sample {
    /// Aligned one-line report.
    pub fn report(&self) -> String {
        format!(
            "{:<44} {:>4} iters  mean {:>12.3?}  min {:>12.3?}",
            self.name, self.iters, self.mean, self.min
        )
    }
}

/// Times `f` over `iters` iterations after one warmup pass.
pub fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters > 0, "need at least one timed iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let start = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        min = min.min(t.elapsed());
    }
    let total = start.elapsed();
    Sample {
        name: name.to_string(),
        iters,
        mean: total / iters,
        min,
    }
}

/// Times a single run of `f`, returning its result and the elapsed time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Version of the `bench.json` schema written by [`BenchReport::to_json`]
/// and required by [`validate_bench_json`].
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One named wall-clock measurement inside a [`BenchReport`].
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Measurement label (e.g. `serial`, `executor`).
    pub name: String,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The machine-readable perf-trajectory artifact: which suite ran, where,
/// and how long each measured configuration took. Serialized to
/// `results/bench.json` so CI can track timings per PR instead of CSV-only.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Suite name (e.g. `sweep_timing`).
    pub suite: String,
    /// Free-form row label (mirrors the CSV `--label`).
    pub label: String,
    /// Worker threads the host offered the executor.
    pub host_threads: u64,
    /// Git revision the binary was run from (`unknown` outside a repo).
    pub git_rev: String,
    /// The timed configurations.
    pub measurements: Vec<Measurement>,
}

impl BenchReport {
    /// Serializes the report (schema version [`BENCH_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("schema")
            .u64(BENCH_SCHEMA_VERSION)
            .key("suite")
            .string(&self.suite)
            .key("label")
            .string(&self.label)
            .key("host_threads")
            .u64(self.host_threads)
            .key("git_rev")
            .string(&self.git_rev)
            .key("measurements")
            .begin_array();
        for m in &self.measurements {
            w.begin_object()
                .key("name")
                .string(&m.name)
                .key("seconds")
                .f64(m.seconds)
                .end_object();
        }
        w.end_array().end_object();
        w.finish()
    }

    /// Writes the report to `path`, creating parent directories, and
    /// re-validates what landed on disk so a malformed artifact can never
    /// be published silently.
    pub fn write(&self, path: &std::path::Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        let json = self.to_json();
        validate_bench_json(&json)?;
        std::fs::write(path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
        let back = std::fs::read_to_string(path)
            .map_err(|e| format!("re-read {}: {e}", path.display()))?;
        validate_bench_json(&back)
    }
}

/// The git revision of the working tree: `GITHUB_SHA` when CI provides it,
/// otherwise `git rev-parse HEAD`, otherwise `unknown`.
pub fn git_revision() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Schema-checks a `bench.json` document: current schema version, string
/// identity fields, a positive thread count, and a non-empty measurement
/// array of named finite non-negative timings. This is the CI perf gate's
/// failure condition — timing *values* are never judged here.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing key {k:?}"));
    let schema = field("schema")?.as_num().ok_or("schema must be a number")?;
    if schema != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema version {schema} (expected {BENCH_SCHEMA_VERSION})"
        ));
    }
    for k in ["suite", "label", "git_rev"] {
        let v = field(k)?;
        if v.as_str().is_none_or(str::is_empty) {
            return Err(format!("{k} must be a non-empty string"));
        }
    }
    let threads = field("host_threads")?
        .as_num()
        .ok_or("host_threads must be a number")?;
    if threads < 1.0 {
        return Err(format!("host_threads must be >= 1, got {threads}"));
    }
    let ms = field("measurements")?
        .as_arr()
        .ok_or("measurements must be an array")?;
    if ms.is_empty() {
        return Err("measurements must not be empty".to_string());
    }
    for (i, m) in ms.iter().enumerate() {
        let name = m
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("measurement {i}: name must be a string"))?;
        if name.is_empty() {
            return Err(format!("measurement {i}: empty name"));
        }
        let secs = m
            .get("seconds")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("measurement {i} ({name}): seconds must be a number"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "measurement {i} ({name}): seconds must be finite and >= 0, got {secs}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_iterations() {
        let mut calls = 0u32;
        let s = bench("noop", 5, || calls += 1);
        assert_eq!(calls, 6, "5 timed + 1 warmup");
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn time_once_returns_value() {
        let (v, d) = time_once(|| 42u32);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(5));
    }

    fn report() -> BenchReport {
        BenchReport {
            suite: "sweep_timing".to_string(),
            label: "test \"quoted\"".to_string(),
            host_threads: 4,
            git_rev: "deadbeef".to_string(),
            measurements: vec![
                Measurement {
                    name: "serial".to_string(),
                    seconds: 3.625,
                },
                Measurement {
                    name: "executor".to_string(),
                    seconds: 1.5,
                },
            ],
        }
    }

    #[test]
    fn bench_report_round_trips_and_validates() {
        let json = report().to_json();
        validate_bench_json(&json).expect("well-formed report validates");
        let doc = parse(&json).unwrap();
        assert_eq!(doc.get("suite").unwrap().as_str(), Some("sweep_timing"));
        assert_eq!(doc.get("label").unwrap().as_str(), Some("test \"quoted\""));
        assert_eq!(doc.get("host_threads").unwrap().as_num(), Some(4.0));
        let ms = doc.get("measurements").unwrap().as_arr().unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].get("name").unwrap().as_str(), Some("serial"));
        assert_eq!(ms[0].get("seconds").unwrap().as_num(), Some(3.625));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").unwrap_err().contains("schema"));
        let mut r = report();
        r.measurements.clear();
        assert!(validate_bench_json(&r.to_json())
            .unwrap_err()
            .contains("empty"));
        let mut r = report();
        r.measurements[0].seconds = f64::NAN;
        assert!(validate_bench_json(&r.to_json()).is_err());
        let mut r = report();
        r.suite.clear();
        assert!(validate_bench_json(&r.to_json()).is_err());
        let wrong_schema = report()
            .to_json()
            .replacen("\"schema\":1", "\"schema\":9", 1);
        assert!(validate_bench_json(&wrong_schema)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn git_revision_is_never_empty() {
        assert!(!git_revision().is_empty());
    }
}
