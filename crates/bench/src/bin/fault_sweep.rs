//! Wire-fault sweep: races steering policies across a fault-rate grid and
//! records IPC / ED² degradation curves against the fault-free baseline.
//!
//! ```text
//! cargo run --release -p heterowire-bench --bin fault_sweep -- \
//!     --model X --topology crossbar4 --policy paper,spray \
//!     --faults l@1e-4 --faults l@1e-3 --faults lane:L1@stuck \
//!     --csv fault_sweep.csv --json fault_sweep.json
//! ```
//!
//! Defaults: Model X on the 4-cluster crossbar, all five policies, and a
//! transient L-Wire error-rate ladder (`l@1e-4` … `l@3e-2`). Every sweep
//! starts with a fault-free `none` scenario — the baseline all degradation
//! percentages are measured against. Scenarios with stuck lanes run on the
//! degraded link (the lanes are retired before construction, so policies
//! steer against the surviving capacity); a scenario that strands
//! full-size transfers without a legal plane is refused up front with
//! exit status 2. A run that stops committing (a retry storm on a
//! saturated rate) becomes a `failed` row carrying the watchdog's stall
//! diagnostics on stderr, and the sweep exits 1 after writing artifacts.
//! Same grid + same seed ⇒ bit-identical artifacts (CI diffs two runs).

use std::sync::Arc;

use heterowire_bench::{
    artifact_paths_from_args, degraded_config, emit_metric_artifacts, executor,
    fault_specs_from_args, model_override_or, policies_from_args, run_one_policy_faults,
    topology_override_or, MetricRow, PolicyKind, RunScale, SuiteResults,
};
use heterowire_core::{
    mean_report, relative_report, EnergyParams, FaultSpec, ProcessorConfig, SimResults,
};
use heterowire_trace::spec2000;

/// The default transient error-rate ladder swept when no `--faults` flag
/// is given (per-bit, per-hop L-Wire rates).
const DEFAULT_GRID: [&str; 4] = ["l@1e-4", "l@1e-3", "l@1e-2", "l@3e-2"];

fn main() {
    let scale = RunScale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let topo = topology_override_or("crossbar4");
    let model = model_override_or("X");
    let policies = match policies_from_args(&args) {
        Ok(list) => list.unwrap_or_else(|| PolicyKind::ALL.to_vec()),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    for &pk in &policies {
        if let Err(e) = pk.check_supported(&model) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let grid = match fault_specs_from_args(&args) {
        Ok(specs) if specs.is_empty() => DEFAULT_GRID
            .iter()
            .map(|t| FaultSpec::parse(t).expect("default grid token parses"))
            .collect(),
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Scenario 0 is always the fault-free baseline.
    let mut scenarios: Vec<(String, Option<FaultSpec>)> = vec![("none".to_string(), None)];
    scenarios.extend(grid.into_iter().map(|s| (s.to_string(), Some(s))));

    let configs: Vec<Arc<ProcessorConfig>> = scenarios
        .iter()
        .map(
            |(name, spec)| match degraded_config(&model, topo.topology(), spec.as_ref()) {
                Ok(c) => Arc::new(c),
                Err(e) => {
                    eprintln!("{name}: {e}");
                    std::process::exit(2);
                }
            },
        )
        .collect();

    let profiles = spec2000();
    let nbench = profiles.len();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    let mut jobs = Vec::with_capacity(scenarios.len() * policies.len() * nbench);
    for si in 0..scenarios.len() {
        for pi in 0..policies.len() {
            for &p in &profiles {
                jobs.push((si, pi, p));
            }
        }
    }
    eprintln!(
        "sweeping {} fault scenario(s) x {} policies x {} benchmarks on {} / {} ...",
        scenarios.len(),
        policies.len(),
        nbench,
        model.name(),
        topo.name(),
    );
    let outcomes =
        executor::run_indexed_catching(jobs, executor::default_workers(), |(si, pi, profile)| {
            run_one_policy_faults(
                configs[si].clone(),
                profile,
                scale,
                policies[pi],
                scenarios[si].1.as_ref(),
            )
        });

    // Fold the flat job list into per-(scenario, policy) suites; any
    // failed benchmark (stall or panic) fails the whole cell.
    let mut suites: Vec<Vec<Result<SuiteResults, String>>> = Vec::new();
    let mut chunks = outcomes.chunks(nbench);
    for _ in 0..scenarios.len() {
        let mut per_policy = Vec::new();
        for _ in 0..policies.len() {
            let chunk = chunks.next().expect("job list covers the grid");
            let mut runs: Vec<SimResults> = Vec::with_capacity(nbench);
            let mut failure: Option<String> = None;
            for (bi, outcome) in chunk.iter().enumerate() {
                match outcome {
                    Ok(Ok(r)) => runs.push(*r),
                    Ok(Err(stall)) if failure.is_none() => {
                        failure = Some(format!("{}: {stall}", names[bi]));
                    }
                    Err(p) if failure.is_none() => {
                        failure = Some(format!("{}: {p}", names[bi]));
                    }
                    _ => {}
                }
            }
            per_policy.push(match failure {
                None => Ok(SuiteResults {
                    names: names.clone(),
                    runs,
                }),
                Some(msg) => Err(msg),
            });
        }
        suites.push(per_policy);
    }

    let mut rows: Vec<MetricRow> = Vec::new();
    let mut failed = 0usize;
    println!(
        "Fault sweep, model {} on {} ({} clusters)",
        model.label(),
        topo.name(),
        topo.topology().clusters()
    );
    println!("(drops are % vs the fault-free `none` scenario, per policy)\n");
    println!(
        "{:<26} {:<12} {:>7} {:>8} {:>9} {:>8} {:>8} {:>9}",
        "Scenario", "Policy", "IPC", "dIPC%", "ED2(10%)", "faults", "retx", "escal"
    );
    for (si, (scenario, _)) in scenarios.iter().enumerate() {
        for (pi, &pk) in policies.iter().enumerate() {
            let section = scenario.as_str();
            let label = pk.name();
            match &suites[si][pi] {
                Ok(suite) => {
                    let ipc = suite.mean_ipc();
                    let faults_detected: u64 =
                        suite.runs.iter().map(|r| r.net.faults_detected).sum();
                    let retransmits: u64 = suite.runs.iter().map(|r| r.net.retransmits).sum();
                    let escalations: u64 = suite.runs.iter().map(|r| r.net.escalations).sum();
                    let retry_cycles: u64 = suite.runs.iter().map(|r| r.net.retry_cycles).sum();
                    rows.push(MetricRow::new(section, label, "am_ipc", ipc));
                    rows.push(MetricRow::new(
                        section,
                        label,
                        "faults_detected",
                        faults_detected as f64,
                    ));
                    rows.push(MetricRow::new(
                        section,
                        label,
                        "retransmits",
                        retransmits as f64,
                    ));
                    rows.push(MetricRow::new(
                        section,
                        label,
                        "escalations",
                        escalations as f64,
                    ));
                    rows.push(MetricRow::new(
                        section,
                        label,
                        "retry_cycles",
                        retry_cycles as f64,
                    ));
                    // Degradation curves vs the fault-free baseline of the
                    // same policy (only meaningful when it completed).
                    let (mut dipc, mut ed2_10) = (f64::NAN, f64::NAN);
                    if let Ok(base) = &suites[0][pi] {
                        dipc = 100.0 * (1.0 - ipc / base.mean_ipc());
                        let rel = |params: EnergyParams| {
                            let rs: Vec<_> = suite
                                .runs
                                .iter()
                                .zip(&base.runs)
                                .map(|(m, b)| relative_report(m, b, params))
                                .collect();
                            mean_report(&rs).rel_ed2
                        };
                        ed2_10 = rel(EnergyParams::ten_percent());
                        rows.push(MetricRow::new(section, label, "ipc_drop_pct", dipc));
                        rows.push(MetricRow::new(section, label, "ed2_10_pct", ed2_10));
                        rows.push(MetricRow::new(
                            section,
                            label,
                            "ed2_20_pct",
                            rel(EnergyParams::twenty_percent()),
                        ));
                    }
                    rows.push(MetricRow::new(section, label, "failed", 0.0));
                    println!(
                        "{:<26} {:<12} {:>7.4} {:>8.3} {:>9.2} {:>8} {:>8} {:>9}",
                        scenario,
                        label,
                        ipc,
                        dipc,
                        ed2_10,
                        faults_detected,
                        retransmits,
                        escalations
                    );
                }
                Err(msg) => {
                    failed += 1;
                    eprintln!("FAILED {scenario} / {label}: {msg}");
                    rows.push(MetricRow::new(section, label, "failed", 1.0));
                    println!(
                        "{:<26} {:<12} {:>7} {:>8} {:>9} {:>8} {:>8} {:>9}",
                        scenario, label, "FAILED", "-", "-", "-", "-", "-"
                    );
                }
            }
        }
    }
    println!();
    emit_metric_artifacts(&rows, &artifact_paths_from_args());
    if failed > 0 {
        eprintln!("{failed} sweep cell(s) failed");
        std::process::exit(1);
    }
}
