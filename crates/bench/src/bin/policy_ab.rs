//! Multi-policy A/B harness: races named steering policies over the same
//! (model × benchmark) grid and reports a per-policy comparison — IPC,
//! traffic mix per wire class, interconnect dynamic energy, and ED²
//! relative to the first policy in the race.
//!
//! ```text
//! cargo run --release -p heterowire-bench --bin policy_ab -- \
//!     --model X --policy paper,spray,criticality,pwfirst,oracle \
//!     --topology hier16 --csv policy_ab.csv --json policy_ab.json
//! ```
//!
//! Defaults: Model X (the paper's full heterogeneous link), all five
//! policies, the 4-cluster crossbar. Repeated `--topology` flags (each a
//! preset, compact spec like `ring:6x4`, or spec file) race the grid on
//! every listed topology; repeated `--model` flags sweep more models (the
//! first policy listed is the ED² baseline within each model);
//! `HETEROWIRE_SCALE=quick` downscales the runs. A policy whose defining
//! wire class is entirely absent from a requested model (e.g. `pwfirst`
//! on `custom:b144`) is refused up front with exit status 2.

use heterowire_bench::{
    artifact_paths_from_args, emit_metric_artifacts, executor, format_policy_table,
    policies_from_args, policy_metric_rows, policy_sweep_runs, ModelSet, PolicyKind, RunScale,
    TopologySet,
};
use heterowire_core::ModelSpec;

fn main() {
    let scale = RunScale::from_env();
    let args: Vec<String> = std::env::args().collect();
    let topologies = TopologySet::from_args_or("crossbar4");
    let models = match ModelSet::from_args(&args) {
        Ok(set) => set.unwrap_or_else(|| {
            ModelSet::new(vec![ModelSpec::parse("X").expect("preset X parses")])
                .expect("non-empty set")
        }),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let policies = match policies_from_args(&args) {
        Ok(list) => list.unwrap_or_else(|| PolicyKind::ALL.to_vec()),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    for spec in models.specs() {
        for &pk in &policies {
            if let Err(e) = pk.check_supported(spec) {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
    let mut rows = Vec::new();
    for topo_spec in topologies.specs() {
        eprintln!(
            "racing {} on {} / {} x 23 benchmarks ...",
            names.join(", "),
            topo_spec.name(),
            models
                .specs()
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let suites = policy_sweep_runs(
            &models,
            &policies,
            topo_spec.topology(),
            scale,
            executor::default_workers(),
        );

        println!(
            "Steering-policy A/B comparison, {} ({} clusters)",
            topo_spec.name(),
            topo_spec.topology().clusters()
        );
        println!("(ED2 is % of the first listed policy, at 10%/20% interconnect fractions)\n");
        for (spec, model_suites) in models.specs().iter().zip(&suites) {
            println!("{}", format_policy_table(spec, &policies, model_suites));
            let mut model_rows = policy_metric_rows(spec, &policies, model_suites);
            // In a multi-topology race the section key carries the
            // topology so rows stay distinguishable in the artifacts.
            if topologies.len() > 1 {
                for r in &mut model_rows {
                    r.section = format!("{}/{}", topo_spec.name(), r.section);
                }
            }
            rows.extend(model_rows);
        }
    }
    emit_metric_artifacts(&rows, &artifact_paths_from_args());
}
