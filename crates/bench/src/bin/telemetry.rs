//! Records one (model, benchmark) run with the telemetry subsystem and
//! exports the artifacts:
//!
//! * `trace.json` — Chrome/Perfetto trace (pipeline lifecycles as async
//!   slices, per-link utilization counters, steering-overflow episodes);
//!   load it at <https://ui.perfetto.dev> or `chrome://tracing`;
//! * `utilization.csv` — per-window × per-link × per-wire-class busy
//!   lane-cycles.
//!
//! The same run also executes with the probe disabled; the binary exits
//! non-zero if the recorded run's `SimResults` diverge from the disabled
//! run (recording must be observation, never perturbation).
//!
//! ```text
//! telemetry [--model VII] [--bench gzip] [--topology <preset|spec|file>]
//!           [--window 64] [--out-dir results]
//! ```

use std::path::PathBuf;

use heterowire_bench::{flag_path_from, parse_topology_token, write_artifact, RunScale, SEED};
use heterowire_core::{ModelSpec, Processor, ProcessorConfig, RecordingConfig, RecordingProbe};
use heterowire_telemetry::{chrome_trace, utilization_csv};
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::WireClass;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            }
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model_name = flag_value(&args, "--model").unwrap_or_else(|| "VII".to_string());
    let bench_name = flag_value(&args, "--bench").unwrap_or_else(|| "gzip".to_string());
    let topo_name = flag_value(&args, "--topology").unwrap_or_else(|| "crossbar4".to_string());
    let window: u64 = flag_value(&args, "--window")
        .map(|v| v.parse().expect("--window takes a cycle count"))
        .unwrap_or(64);
    let out_dir = flag_path_from(&args, "--out-dir")
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
        .unwrap_or_else(|| PathBuf::from("results"));

    let model = ModelSpec::parse(&model_name).unwrap_or_else(|e| {
        eprintln!("--model {model_name:?}: {e}");
        std::process::exit(2);
    });
    let topo_spec = parse_topology_token(&topo_name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let topology = topo_spec.topology();
    let profile = by_name(&bench_name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {bench_name:?}");
        std::process::exit(2);
    });

    // Warmup 0 so the recorded network counters reconcile exactly with the
    // end-of-run NetStats.
    let scale = RunScale::from_env();
    let cfg = ProcessorConfig::for_model_spec(&model, topology);

    eprintln!(
        "recording {} / {} on {}, {} instructions, window {window} ...",
        model.label(),
        profile.name,
        topo_spec.name(),
        scale.window
    );
    let baseline =
        Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED)).run(scale.window, 0);

    let labels = Processor::new(cfg.clone(), TraceGenerator::new(profile, SEED))
        .network()
        .link_labels();
    let probe_cfg = RecordingConfig::new(window, labels, topology.clusters());
    let mut recorded = Processor::with_probe(
        cfg,
        TraceGenerator::new(profile, SEED),
        RecordingProbe::new(probe_cfg),
    );
    let results = recorded.run(scale.window, 0);
    let pending = recorded.network().pending_len() as u64;
    recorded.probe_mut().finish();
    let probe = recorded.probe();

    if results != baseline {
        eprintln!(
            "FAIL: recorded run diverged from the probe-disabled run\n\
             disabled: {baseline:?}\nrecorded: {results:?}"
        );
        std::process::exit(1);
    }

    // The probe's network counters must reconcile with NetStats.
    for (i, c) in WireClass::ALL.iter().enumerate() {
        assert_eq!(
            probe.injected[i],
            results.net.transfers[i],
            "injected {} transfers disagree with NetStats",
            c.label()
        );
    }
    let injected: u64 = probe.injected.iter().sum();
    let departed: u64 = probe.departed.iter().sum();
    assert_eq!(
        injected - departed,
        pending,
        "transfers still queued at end of run"
    );

    write_artifact(&out_dir.join("trace.json"), &chrome_trace(probe));
    write_artifact(&out_dir.join("utilization.csv"), &utilization_csv(probe));

    println!(
        "recorded {} cycles: {} dispatches, {} commits, {} transfers \
         ({} lane-cycles busy), {} overflow episodes, {} lifecycle entries",
        results.cycles,
        probe.counts.dispatches,
        probe.counts.commits,
        injected,
        probe.total_busy(),
        probe.episodes().len(),
        probe.lifecycles().len(),
    );
    println!(
        "probe-disabled and recorded runs are bit-identical (ipc {:.4})",
        results.ipc()
    );
}
