//! Regenerates the scalar claims of §1 and §5.3:
//!
//! 1. doubling the inter-cluster latency degrades 4-cluster performance by
//!    ~12%;
//! 2. with doubled (wire-constrained) latencies, adding an L-Wire plane
//!    buys ~7.1% instead of ~4.2%;
//! 3. moving a single thread from 4 to 16 clusters buys ~17% IPC;
//! 4. on the 16-cluster system the L-Wire plane buys ~7.4%;
//! 5. fewer than 9% of loads hit a false partial-address dependence with 8
//!    LS bits;
//! 6. the 8K-counter narrow predictor identifies ~95% of narrow results
//!    with ~2% of predicted-narrow values actually wide;
//! 7. ~14% of register traffic is narrow (integers in 0..=1023).

use heterowire_bench::{run_suite, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::spec2000;

fn main() {
    let scale = RunScale::from_env();

    // --- 1: latency doubling on the baseline. ---
    let base_cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let mut slow_cfg = base_cfg.clone();
    slow_cfg.latency_scale = 2.0;
    eprintln!("baseline 4-cluster suite ...");
    let base = run_suite(&base_cfg, scale);
    eprintln!("2x-latency suite ...");
    let slow = run_suite(&slow_cfg, scale);
    println!(
        "1. doubling inter-cluster latency: IPC {:.3} -> {:.3} ({:+.1}%; paper: -12%)",
        base.mean_ipc(),
        slow.mean_ipc(),
        (slow.mean_ipc() / base.mean_ipc() - 1.0) * 100.0
    );

    // --- 2: L-wires under doubled latency. ---
    let mut slow_l_cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    slow_l_cfg.latency_scale = 2.0;
    eprintln!("2x-latency + L-Wires suite ...");
    let slow_l = run_suite(&slow_l_cfg, scale);
    println!(
        "2. +L-Wires at 2x latency: IPC {:.3} -> {:.3} ({:+.1}%; paper: +7.1%)",
        slow.mean_ipc(),
        slow_l.mean_ipc(),
        (slow_l.mean_ipc() / slow.mean_ipc() - 1.0) * 100.0
    );

    // --- 3: 4 -> 16 clusters. ---
    let c16_cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
    eprintln!("16-cluster baseline suite ...");
    let c16 = run_suite(&c16_cfg, scale);
    println!(
        "3. 4 -> 16 clusters: IPC {:.3} -> {:.3} ({:+.1}%; paper: +17%)",
        base.mean_ipc(),
        c16.mean_ipc(),
        (c16.mean_ipc() / base.mean_ipc() - 1.0) * 100.0
    );

    // --- 4: L-wires on 16 clusters. ---
    let c16_l_cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::hier16());
    eprintln!("16-cluster + L-Wires suite ...");
    let c16_l = run_suite(&c16_l_cfg, scale);
    println!(
        "4. +L-Wires on 16 clusters: IPC {:.3} -> {:.3} ({:+.1}%; paper: +7.4%)",
        c16.mean_ipc(),
        c16_l.mean_ipc(),
        (c16_l.mean_ipc() / c16.mean_ipc() - 1.0) * 100.0
    );

    // --- 5 & 6: LSQ false dependences, narrow predictor (from the VII run).
    let l_cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
    eprintln!("4-cluster + L-Wires suite ...");
    let lwire = run_suite(&l_cfg, scale);
    let (fd, loads) = lwire.runs.iter().fold((0, 0), |(fd, ld), r| {
        (fd + r.lsq.false_dependences, ld + r.lsq.loads)
    });
    println!(
        "5. false partial-address dependences @8 LS bits: {:.1}% of loads (paper: <9%)",
        fd as f64 / loads as f64 * 100.0
    );
    let cov = lwire.runs.iter().map(|r| r.narrow_coverage).sum::<f64>() / lwire.runs.len() as f64;
    let fnr = lwire.runs.iter().map(|r| r.narrow_false_rate).sum::<f64>() / lwire.runs.len() as f64;
    println!(
        "6. narrow predictor: {:.1}% coverage, {:.1}% false-narrow (paper: 95% / 2%)",
        cov * 100.0,
        fnr * 100.0
    );

    // --- 7: narrow share of register traffic (trace property). ---
    let mut narrow = 0u64;
    let mut int_results = 0u64;
    for p in spec2000() {
        let stats = heterowire_trace::TraceStats::from_ops(
            heterowire_trace::TraceGenerator::new(p, heterowire_bench::SEED).take(50_000),
        );
        narrow += stats.narrow_results;
        int_results += stats.int_results;
    }
    println!(
        "7. narrow share of integer register traffic: {:.1}% (paper: 14%)",
        narrow as f64 / int_results as f64 * 100.0
    );
}
