//! Regenerates the scalar claims of §1 and §5.3:
//!
//! 1. doubling the inter-cluster latency degrades 4-cluster performance by
//!    ~12%;
//! 2. with doubled (wire-constrained) latencies, adding an L-Wire plane
//!    buys ~7.1% instead of ~4.2%;
//! 3. moving a single thread from 4 to 16 clusters buys ~17% IPC;
//! 4. on the 16-cluster system the L-Wire plane buys ~7.4%;
//! 5. fewer than 9% of loads hit a false partial-address dependence with 8
//!    LS bits;
//! 6. the 8K-counter narrow predictor identifies ~95% of narrow results
//!    with ~2% of predicted-narrow values actually wide;
//! 7. ~14% of register traffic is narrow (integers in 0..=1023).
//!
//! `--model <token>` (a preset or `custom:<spec>`) swaps the enhanced
//! machine (default Model VII) in claims 2/4/5/6; `--topology <token>`
//! swaps the base topology in claims 1/2/5/6 (claims 3/4 keep the paper's
//! fixed 4-vs-16-cluster contrast); `--csv` / `--json` write every claim
//! as machine-readable metric rows.

use heterowire_bench::{
    artifact_paths_from_args, emit_metric_artifacts, model_override_or, run_suite,
    topology_override_or, MetricRow, RunScale,
};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::spec2000;

fn main() {
    let scale = RunScale::from_env();
    let enhanced = model_override_or("VII");
    // The base topology for the latency and predictor claims; the
    // 4-vs-16-cluster scaling contrast (claims 3/4) stays pinned to the
    // paper's crossbar4 -> hier16 pair regardless.
    let base_topology = topology_override_or("crossbar4").topology();
    let mut metrics = Vec::new();
    let claim = |metrics: &mut Vec<MetricRow>, label: &str, metric: &str, value: f64| {
        metrics.push(MetricRow::new("sensitivity", label, metric, value));
    };

    // --- 1: latency doubling on the baseline. ---
    let base_cfg = ProcessorConfig::for_model(InterconnectModel::I, base_topology);
    let mut slow_cfg = base_cfg.clone();
    slow_cfg.latency_scale = 2.0;
    eprintln!("baseline 4-cluster suite ...");
    let base = run_suite(&base_cfg, scale);
    eprintln!("2x-latency suite ...");
    let slow = run_suite(&slow_cfg, scale);
    let d1 = (slow.mean_ipc() / base.mean_ipc() - 1.0) * 100.0;
    println!(
        "1. doubling inter-cluster latency: IPC {:.3} -> {:.3} ({d1:+.1}%; paper: -12%)",
        base.mean_ipc(),
        slow.mean_ipc(),
    );
    claim(&mut metrics, "2x-latency", "ipc_delta_pct", d1);

    // --- 2: the enhanced model under doubled latency. ---
    let mut slow_l_cfg = ProcessorConfig::for_model_spec(&enhanced, base_topology);
    slow_l_cfg.latency_scale = 2.0;
    eprintln!("2x-latency + {} suite ...", enhanced.label());
    let slow_l = run_suite(&slow_l_cfg, scale);
    let d2 = (slow_l.mean_ipc() / slow.mean_ipc() - 1.0) * 100.0;
    println!(
        "2. +{} at 2x latency: IPC {:.3} -> {:.3} ({d2:+.1}%; paper: +7.1%)",
        enhanced.label(),
        slow.mean_ipc(),
        slow_l.mean_ipc(),
    );
    claim(&mut metrics, "enhanced-at-2x", "ipc_delta_pct", d2);

    // --- 3: 4 -> 16 clusters (pinned to the paper's pair). ---
    let c4_cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let c4 = if base_topology == Topology::crossbar4() {
        base
    } else {
        eprintln!("4-cluster baseline suite (for the scaling contrast) ...");
        run_suite(&c4_cfg, scale)
    };
    let c16_cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
    eprintln!("16-cluster baseline suite ...");
    let c16 = run_suite(&c16_cfg, scale);
    let d3 = (c16.mean_ipc() / c4.mean_ipc() - 1.0) * 100.0;
    println!(
        "3. 4 -> 16 clusters: IPC {:.3} -> {:.3} ({d3:+.1}%; paper: +17%)",
        c4.mean_ipc(),
        c16.mean_ipc(),
    );
    claim(&mut metrics, "16-clusters", "ipc_delta_pct", d3);

    // --- 4: the enhanced model on 16 clusters. ---
    let c16_l_cfg = ProcessorConfig::for_model_spec(&enhanced, Topology::hier16());
    eprintln!("16-cluster + {} suite ...", enhanced.label());
    let c16_l = run_suite(&c16_l_cfg, scale);
    let d4 = (c16_l.mean_ipc() / c16.mean_ipc() - 1.0) * 100.0;
    println!(
        "4. +{} on 16 clusters: IPC {:.3} -> {:.3} ({d4:+.1}%; paper: +7.4%)",
        enhanced.label(),
        c16.mean_ipc(),
        c16_l.mean_ipc(),
    );
    claim(&mut metrics, "enhanced-on-16", "ipc_delta_pct", d4);

    // --- 5 & 6: LSQ false dependences, narrow predictor (4-cluster run).
    let l_cfg = ProcessorConfig::for_model_spec(&enhanced, base_topology);
    eprintln!("4-cluster + {} suite ...", enhanced.label());
    let lwire = run_suite(&l_cfg, scale);
    let (fd, loads) = lwire.runs.iter().fold((0, 0), |(fd, ld), r| {
        (fd + r.lsq.false_dependences, ld + r.lsq.loads)
    });
    let fd_pct = fd as f64 / loads as f64 * 100.0;
    println!("5. false partial-address dependences @8 LS bits: {fd_pct:.1}% of loads (paper: <9%)");
    claim(&mut metrics, "lsq", "false_dep_pct", fd_pct);
    let cov = lwire.runs.iter().map(|r| r.narrow_coverage).sum::<f64>() / lwire.runs.len() as f64;
    let fnr = lwire.runs.iter().map(|r| r.narrow_false_rate).sum::<f64>() / lwire.runs.len() as f64;
    println!(
        "6. narrow predictor: {:.1}% coverage, {:.1}% false-narrow (paper: 95% / 2%)",
        cov * 100.0,
        fnr * 100.0
    );
    claim(
        &mut metrics,
        "narrow-predictor",
        "coverage_pct",
        cov * 100.0,
    );
    claim(
        &mut metrics,
        "narrow-predictor",
        "false_narrow_pct",
        fnr * 100.0,
    );

    // --- 7: narrow share of register traffic (trace property). ---
    let mut narrow = 0u64;
    let mut int_results = 0u64;
    for p in spec2000() {
        let stats = heterowire_trace::TraceStats::from_ops(
            heterowire_trace::TraceGenerator::new(p, heterowire_bench::SEED).take(50_000),
        );
        narrow += stats.narrow_results;
        int_results += stats.int_results;
    }
    let narrow_pct = narrow as f64 / int_results as f64 * 100.0;
    println!("7. narrow share of integer register traffic: {narrow_pct:.1}% (paper: 14%)");
    claim(&mut metrics, "trace", "narrow_share_pct", narrow_pct);

    emit_metric_artifacts(&metrics, &artifact_paths_from_args());
}
