//! Regenerates **Table 4** of the paper: the ten interconnect models on the
//! 16-cluster hierarchical (crossbar + ring) topology, with interconnect
//! energy at 20% of Model-I chip energy — the configuration in which the
//! paper reports up to 11% ED² reduction.

use heterowire_bench::model_sweep_main;

fn main() {
    let (topo, rows) = model_sweep_main("hier16");

    println!(
        "Table 4: heterogeneous interconnect energy and performance, {} ({} clusters)",
        topo.name(),
        topo.topology().clusters()
    );
    println!("(interconnect = 20% of Model-I chip energy; values are % of Model I)\n");
    println!(
        "{:<10} {:<40} {:>6} {:>8} {:>9}",
        "Model", "Link composition", "IPC", "Energy", "ED2(20%)"
    );
    for r in &rows {
        println!(
            "{:<10} {:<40} {:>6.3} {:>8.1} {:>9.1}",
            r.model.label(),
            r.description,
            r.at_20.ipc,
            r.at_20.rel_processor_energy,
            r.at_20.rel_ed2,
        );
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.at_20.rel_ed2.total_cmp(&b.at_20.rel_ed2))
        .expect("ten rows");
    println!(
        "\nbest ED2: {} at {:.1}% (paper: Models VII/IX at 88.7% — an 11.3% reduction)",
        best.model.label(),
        best.at_20.rel_ed2
    );
}
