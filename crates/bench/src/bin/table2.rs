//! Regenerates **Table 2** of the paper: delay and relative-energy
//! parameters of each wire class, with the canonical values printed next to
//! the values derived from the analytical wire models, plus the resulting
//! network latencies and the transmission-line headroom discussed in §2.

use heterowire_bench::{artifact_paths_from_args, emit_table2_artifacts, ModelSet};
use heterowire_wires::classes::table2;
use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};
use heterowire_wires::transmission::transmission_line_headroom;

fn main() {
    // `--model <token>` (preset or `custom:<spec>`) restricts the table to
    // the wire classes that model's link actually uses; repeated flags
    // union their classes. No flag prints every class.
    let models = ModelSet::from_args(&std::env::args().collect::<Vec<_>>()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let rows: Vec<_> = table2()
        .into_iter()
        .filter(|row| match &models {
            None => true,
            Some(set) => set
                .specs()
                .iter()
                .any(|spec| spec.link().lanes(row.class) > 0),
        })
        .collect();
    emit_table2_artifacts(&rows, &artifact_paths_from_args());
    println!("Table 2: wire delay and relative energy parameters per wire class");
    println!("(canonical = paper values; derived = from the RC/repeater models)\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>10} {:>9}",
        "Wire", "rel delay", "derived", "rel dyn", "derived", "rel lkg", "crossbar", "ring hop"
    );
    for row in rows {
        println!(
            "{:<10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2} {:>7} cyc {:>5} cyc",
            row.class.to_string(),
            row.relative_delay,
            row.derived_delay,
            row.relative_dynamic,
            row.derived_dynamic,
            row.relative_leakage,
            row.crossbar_latency,
            row.ring_hop_latency,
        );
    }

    println!("\nUnderlying physical model (10 mm global wire, 45 nm devices):");
    let devices = DeviceParams::node_45nm();
    let len = 10e-3;
    let geoms = [
        ("W (min pitch)", WireGeometry::minimum_45nm(), false),
        (
            "B (2x area)",
            WireGeometry::minimum_45nm().with_spacing_factor(3.0),
            false,
        ),
        (
            "L (8x pitch)",
            WireGeometry::minimum_45nm().scaled(8.0),
            false,
        ),
        ("PW (power rep.)", WireGeometry::minimum_45nm(), true),
    ];
    for (name, g, power) in geoms {
        let wire = if power {
            RepeatedWire::paper_power_optimal(g, devices)
        } else {
            RepeatedWire::delay_optimal(g, devices)
        };
        println!(
            "  {:<16} {:>7.0} ps delay, {:>6.2} pJ/transition, {} repeaters of {:.0}x min size",
            name,
            wire.delay(len) * 1e12,
            wire.dynamic_energy(len) * 1e12,
            wire.stages(len),
            wire.repeaters.size,
        );
    }

    println!(
        "\nTransmission-line headroom vs the RC L-wire over 10 mm: {:.1}x faster\n\
         (the paper restricts its evaluation to RC wires, as do we)",
        transmission_line_headroom()
    );
}
