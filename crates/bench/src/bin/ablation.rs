//! Ablation studies for the design choices the paper calls out:
//!
//! * `ls-bits`  — LS-bit count vs false-dependence rate (paper picks 8);
//! * `balance`  — load-balancer window/threshold sweep (paper picks N=5, T=10);
//! * `narrow`   — narrow-width threshold (paper picks 10 bits);
//! * `opts`     — each L-Wire optimization enabled alone;
//! * `ext`      — the paper's discussed-but-unevaluated extensions
//!   (frequent-value compaction, L2 critical-word-first, transmission-line
//!   L-Wires).
//!
//! Run `cargo run -p heterowire-bench --bin ablation -- <which>`; with no
//! study name, all five run. `--model <token>` (a preset or
//! `custom:<spec>`) swaps the default Model VII study machine;
//! `--topology <token>` (a preset, compact spec or spec file) swaps the
//! default 4-cluster crossbar; `--csv` / `--json` write every printed
//! scalar as machine-readable [`MetricRow`] artifacts.

use heterowire_bench::{
    artifact_paths_from_args, emit_metric_artifacts, model_override_or, run_one, run_suite,
    topology_override_or, MetricRow, RunScale, SEED,
};
use heterowire_core::{Extensions, InterconnectModel, ModelSpec, Optimizations, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator};

fn ls_bits(scale: RunScale, study: &ModelSpec, topology: Topology, out: &mut Vec<MetricRow>) {
    println!("\n== LS-bit sweep: false partial-address dependences ==");
    println!("{:>8} {:>12} {:>10}", "LS bits", "false deps", "AM IPC");
    for bits in [4, 6, 8, 12, 16] {
        let mut cfg = ProcessorConfig::for_model_spec(study, topology);
        cfg.ls_bits = bits;
        let suite = run_suite(&cfg, scale);
        let (fd, loads) = suite.runs.iter().fold((0, 0), |(fd, ld), r| {
            (fd + r.lsq.false_dependences, ld + r.lsq.loads)
        });
        let fd_pct = fd as f64 / loads as f64 * 100.0;
        println!("{:>8} {:>11.2}% {:>10.3}", bits, fd_pct, suite.mean_ipc());
        let label = bits.to_string();
        out.push(MetricRow::new("ls-bits", &label, "false_dep_pct", fd_pct));
        out.push(MetricRow::new(
            "ls-bits",
            &label,
            "am_ipc",
            suite.mean_ipc(),
        ));
    }
    println!("(paper: <9% of loads at 8 LS bits)");
}

fn balance(scale: RunScale, study: &ModelSpec, topology: Topology, out: &mut Vec<MetricRow>) {
    // The balancer needs both full-width planes; fall back to Model V
    // (144 B + 288 PW) when the study model lacks one.
    let link = study.link();
    let model = if link.lanes(heterowire_wires::WireClass::B) > 0
        && link.lanes(heterowire_wires::WireClass::Pw) > 0
    {
        study.clone()
    } else {
        InterconnectModel::V.spec()
    };
    println!(
        "\n== Load-balancer sweep ({}: {}) ==",
        model.label(),
        model.description()
    );
    println!("(the balancer diverts overflow traffic to the less congested plane)");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "window", "threshold", "AM IPC", "PW share"
    );
    // The balancer lives in the policy; window/threshold are fixed at the
    // paper's values in the public API, so this sweep exercises on/off and
    // the PW-steering criteria combinations instead.
    for (pw, lb, label) in [
        (false, false, "off/off"),
        (true, false, "criteria only"),
        (false, true, "balance only"),
        (true, true, "paper (both)"),
    ] {
        let mut cfg = ProcessorConfig::for_model_spec(&model, topology);
        cfg.opts.pw_steering = pw;
        cfg.opts.load_balance = lb;
        let suite = run_suite(&cfg, scale);
        let (pw_t, total) = suite.runs.iter().fold((0u64, 0u64), |(p, t), r| {
            (p + r.net.transfers[1], t + r.net.total_transfers())
        });
        let pw_share = pw_t as f64 / total as f64 * 100.0;
        println!(
            "{:>21} {:>10.3} {:>9.1}%",
            label,
            suite.mean_ipc(),
            pw_share
        );
        out.push(MetricRow::new("balance", label, "am_ipc", suite.mean_ipc()));
        out.push(MetricRow::new("balance", label, "pw_share_pct", pw_share));
    }
}

fn narrow(_scale: RunScale, out: &mut Vec<MetricRow>) {
    println!("\n== Narrow-operand availability (trace property) ==");
    println!("{:>10} {:>16}", "threshold", "narrow results");
    for bits in [8u32, 10, 12, 16] {
        let mut narrow = 0u64;
        let mut total = 0u64;
        for p in spec2000() {
            for op in TraceGenerator::new(p, SEED).take(20_000) {
                if let Some(d) = op.dest() {
                    if d.class() == heterowire_isa::RegClass::Int {
                        total += 1;
                        if heterowire_isa::value::fits_in(op.result(), bits) {
                            narrow += 1;
                        }
                    }
                }
            }
        }
        let pct = narrow as f64 / total as f64 * 100.0;
        println!("{:>7} bit {:>15.1}%", bits, pct);
        out.push(MetricRow::new(
            "narrow",
            &bits.to_string(),
            "narrow_result_pct",
            pct,
        ));
    }
    println!("(paper uses 10 bits: 8-bit tag + 10-bit payload on 18 L-Wires)");
}

type OptVariant = (&'static str, fn(&mut Optimizations));

fn opts(scale: RunScale, study: &ModelSpec, topology: Topology, out: &mut Vec<MetricRow>) {
    println!(
        "\n== Individual L-Wire optimization contributions ({}) ==",
        study.label()
    );
    let bench_set = ["gzip", "gcc", "twolf", "swim", "mcf", "applu"];
    let variants: [OptVariant; 5] = [
        ("none (baseline wires)", |o| {
            o.cache_pipeline = false;
            o.narrow_operands = false;
            o.branch_signal = false;
        }),
        ("cache pipeline only", |o| {
            o.narrow_operands = false;
            o.branch_signal = false;
        }),
        ("narrow operands only", |o| {
            o.cache_pipeline = false;
            o.branch_signal = false;
        }),
        ("branch signal only", |o| {
            o.cache_pipeline = false;
            o.narrow_operands = false;
        }),
        ("all three (paper)", |_| {}),
    ];
    println!("{:<24} {:>10}", "variant", "AM IPC");
    for (label, tweak) in variants {
        let mut sum = 0.0;
        for b in bench_set {
            let mut cfg = ProcessorConfig::for_model_spec(study, topology);
            tweak(&mut cfg.opts);
            let r = run_one(cfg, by_name(b).expect("known benchmark"), scale);
            sum += r.ipc();
        }
        let am = sum / bench_set.len() as f64;
        println!("{:<24} {:>10.3}", label, am);
        out.push(MetricRow::new("opts", label, "am_ipc", am));
    }
    println!("(paper: the three optimizations contributed equally)");
}

fn extensions(scale: RunScale, study: &ModelSpec, topology: Topology, out: &mut Vec<MetricRow>) {
    println!(
        "\n== Paper-discussed extensions ({}, 2x wire-constrained latency) ==",
        study.label()
    );
    let bench_set = ["gzip", "gcc", "mcf", "swim", "applu", "twolf"];
    let variants: [(&str, Extensions); 5] = [
        ("paper (no extensions)", Extensions::default()),
        (
            "frequent-value compaction",
            Extensions {
                frequent_value: true,
                ..Default::default()
            },
        ),
        (
            "L2 critical-word-first",
            Extensions {
                l2_critical_word: true,
                ..Default::default()
            },
        ),
        (
            "transmission-line L-wires",
            Extensions {
                transmission_lines: true,
                ..Default::default()
            },
        ),
        (
            "all extensions",
            Extensions {
                frequent_value: true,
                l2_critical_word: true,
                transmission_lines: true,
            },
        ),
    ];
    println!("{:<28} {:>8} {:>12}", "variant", "AM IPC", "IC dyn (rel)");
    let mut base_energy = 0.0;
    for (i, (label, ext)) in variants.iter().enumerate() {
        let mut ipc = 0.0;
        let mut energy = 0.0;
        for b in bench_set {
            let mut cfg = ProcessorConfig::for_model_spec(study, topology);
            cfg.latency_scale = 2.0;
            cfg.extensions = *ext;
            let r = run_one(cfg, by_name(b).expect("known benchmark"), scale);
            ipc += r.ipc();
            energy += r.net.dynamic_energy;
        }
        if i == 0 {
            base_energy = energy;
        }
        let am = ipc / bench_set.len() as f64;
        let rel = energy / base_energy * 100.0;
        println!("{:<28} {:>8.3} {:>11.1}%", label, am, rel);
        out.push(MetricRow::new("ext", label, "am_ipc", am));
        out.push(MetricRow::new("ext", label, "ic_dynamic_pct", rel));
    }
}

/// The first positional (non-flag) argument: flag/value pairs are skipped.
fn which_study(args: &[String]) -> String {
    let flags = ["--model", "--topology", "--csv", "--json"];
    let mut i = 1;
    while i < args.len() {
        if flags.contains(&args[i].as_str()) {
            i += 2;
        } else {
            return args[i].clone();
        }
    }
    String::new()
}

fn main() {
    let scale = RunScale::from_env();
    let study = model_override_or("VII");
    let topology = topology_override_or("crossbar4").topology();
    let paths = artifact_paths_from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = which_study(&args);
    let mut metrics = Vec::new();
    match which.as_str() {
        "ls-bits" => ls_bits(scale, &study, topology, &mut metrics),
        "balance" => balance(scale, &study, topology, &mut metrics),
        "narrow" => narrow(scale, &mut metrics),
        "opts" => opts(scale, &study, topology, &mut metrics),
        "ext" => extensions(scale, &study, topology, &mut metrics),
        _ => {
            ls_bits(scale, &study, topology, &mut metrics);
            balance(scale, &study, topology, &mut metrics);
            narrow(scale, &mut metrics);
            opts(scale, &study, topology, &mut metrics);
            extensions(scale, &study, topology, &mut metrics);
        }
    }
    emit_metric_artifacts(&metrics, &paths);
}
