//! Ablation studies for the design choices the paper calls out:
//!
//! * `ls-bits`  — LS-bit count vs false-dependence rate (paper picks 8);
//! * `balance`  — load-balancer window/threshold sweep (paper picks N=5, T=10);
//! * `narrow`   — narrow-width threshold (paper picks 10 bits);
//! * `opts`     — each L-Wire optimization enabled alone;
//! * `ext`      — the paper's discussed-but-unevaluated extensions
//!   (frequent-value compaction, L2 critical-word-first, transmission-line
//!   L-Wires).
//!
//! Run `cargo run -p heterowire-bench --bin ablation -- <which>`; with no
//! argument, all four sweeps run.

use heterowire_bench::{run_one, run_suite, RunScale, SEED};
use heterowire_core::{Extensions, InterconnectModel, Optimizations, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::{by_name, spec2000, TraceGenerator};

fn ls_bits(scale: RunScale) {
    println!("\n== LS-bit sweep: false partial-address dependences ==");
    println!("{:>8} {:>12} {:>10}", "LS bits", "false deps", "AM IPC");
    for bits in [4, 6, 8, 12, 16] {
        let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        cfg.ls_bits = bits;
        let suite = run_suite(&cfg, scale);
        let (fd, loads) = suite.runs.iter().fold((0, 0), |(fd, ld), r| {
            (fd + r.lsq.false_dependences, ld + r.lsq.loads)
        });
        println!(
            "{:>8} {:>11.2}% {:>10.3}",
            bits,
            fd as f64 / loads as f64 * 100.0,
            suite.mean_ipc()
        );
    }
    println!("(paper: <9% of loads at 8 LS bits)");
}

fn balance(scale: RunScale) {
    println!("\n== Load-balancer sweep (Model V: 144 B + 288 PW) ==");
    println!("(the balancer diverts overflow traffic to the less congested plane)");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "window", "threshold", "AM IPC", "PW share"
    );
    // The balancer lives in the policy; window/threshold are fixed at the
    // paper's values in the public API, so this sweep exercises on/off and
    // the PW-steering criteria combinations instead.
    for (pw, lb, label) in [
        (false, false, "off/off"),
        (true, false, "criteria only"),
        (false, true, "balance only"),
        (true, true, "paper (both)"),
    ] {
        let mut cfg = ProcessorConfig::for_model(InterconnectModel::V, Topology::crossbar4());
        cfg.opts.pw_steering = pw;
        cfg.opts.load_balance = lb;
        let suite = run_suite(&cfg, scale);
        let (pw_t, total) = suite.runs.iter().fold((0u64, 0u64), |(p, t), r| {
            (p + r.net.transfers[1], t + r.net.total_transfers())
        });
        println!(
            "{:>21} {:>10.3} {:>9.1}%",
            label,
            suite.mean_ipc(),
            pw_t as f64 / total as f64 * 100.0
        );
    }
}

fn narrow(_scale: RunScale) {
    println!("\n== Narrow-operand availability (trace property) ==");
    println!("{:>10} {:>16}", "threshold", "narrow results");
    for bits in [8u32, 10, 12, 16] {
        let mut narrow = 0u64;
        let mut total = 0u64;
        for p in spec2000() {
            for op in TraceGenerator::new(p, SEED).take(20_000) {
                if let Some(d) = op.dest() {
                    if d.class() == heterowire_isa::RegClass::Int {
                        total += 1;
                        if heterowire_isa::value::fits_in(op.result(), bits) {
                            narrow += 1;
                        }
                    }
                }
            }
        }
        println!(
            "{:>7} bit {:>15.1}%",
            bits,
            narrow as f64 / total as f64 * 100.0
        );
    }
    println!("(paper uses 10 bits: 8-bit tag + 10-bit payload on 18 L-Wires)");
}

type OptVariant = (&'static str, fn(&mut Optimizations));

fn opts(scale: RunScale) {
    println!("\n== Individual L-Wire optimization contributions (Model VII) ==");
    let bench_set = ["gzip", "gcc", "twolf", "swim", "mcf", "applu"];
    let variants: [OptVariant; 5] = [
        ("none (baseline wires)", |o| {
            o.cache_pipeline = false;
            o.narrow_operands = false;
            o.branch_signal = false;
        }),
        ("cache pipeline only", |o| {
            o.narrow_operands = false;
            o.branch_signal = false;
        }),
        ("narrow operands only", |o| {
            o.cache_pipeline = false;
            o.branch_signal = false;
        }),
        ("branch signal only", |o| {
            o.cache_pipeline = false;
            o.narrow_operands = false;
        }),
        ("all three (paper)", |_| {}),
    ];
    println!("{:<24} {:>10}", "variant", "AM IPC");
    for (label, tweak) in variants {
        let mut sum = 0.0;
        for b in bench_set {
            let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
            tweak(&mut cfg.opts);
            let r = run_one(cfg, by_name(b).expect("known benchmark"), scale);
            sum += r.ipc();
        }
        println!("{:<24} {:>10.3}", label, sum / bench_set.len() as f64);
    }
    println!("(paper: the three optimizations contributed equally)");
}

fn extensions(scale: RunScale) {
    println!("\n== Paper-discussed extensions (Model VII, 2x wire-constrained latency) ==");
    let bench_set = ["gzip", "gcc", "mcf", "swim", "applu", "twolf"];
    let variants: [(&str, Extensions); 5] = [
        ("paper (no extensions)", Extensions::default()),
        (
            "frequent-value compaction",
            Extensions {
                frequent_value: true,
                ..Default::default()
            },
        ),
        (
            "L2 critical-word-first",
            Extensions {
                l2_critical_word: true,
                ..Default::default()
            },
        ),
        (
            "transmission-line L-wires",
            Extensions {
                transmission_lines: true,
                ..Default::default()
            },
        ),
        (
            "all extensions",
            Extensions {
                frequent_value: true,
                l2_critical_word: true,
                transmission_lines: true,
            },
        ),
    ];
    println!("{:<28} {:>8} {:>12}", "variant", "AM IPC", "IC dyn (rel)");
    let mut base_energy = 0.0;
    for (i, (label, ext)) in variants.iter().enumerate() {
        let mut ipc = 0.0;
        let mut energy = 0.0;
        for b in bench_set {
            let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
            cfg.latency_scale = 2.0;
            cfg.extensions = *ext;
            let r = run_one(cfg, by_name(b).expect("known benchmark"), scale);
            ipc += r.ipc();
            energy += r.net.dynamic_energy;
        }
        if i == 0 {
            base_energy = energy;
        }
        println!(
            "{:<28} {:>8.3} {:>11.1}%",
            label,
            ipc / bench_set.len() as f64,
            energy / base_energy * 100.0
        );
    }
}

fn main() {
    let scale = RunScale::from_env();
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "ls-bits" => ls_bits(scale),
        "balance" => balance(scale),
        "narrow" => narrow(scale),
        "opts" => opts(scale),
        "ext" => extensions(scale),
        _ => {
            ls_bits(scale);
            balance(scale);
            narrow(scale);
            opts(scale);
            extensions(scale);
        }
    }
}
