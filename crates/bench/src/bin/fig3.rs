//! Regenerates **Figure 3** of the paper: per-benchmark IPC for the
//! baseline 4-cluster processor (one metal layer: 72 B-Wires per cluster
//! link, 144 to the cache) versus the same processor with an added L-Wire
//! layer (18 L-Wires per cluster link) running all three L-Wire
//! optimizations — partial-address cache pipeline, narrow operands and
//! branch-mispredict signals (paper §5.3).
//!
//! `--model <token>` swaps the enhanced machine for any other model (a
//! preset or `custom:<spec>`); the baseline stays the figure's 72 B-Wire
//! single layer.

use heterowire_bench::{
    artifact_paths_from_args, emit_suite_artifacts, model_override_or, run_suite,
    topology_override_or, RunScale,
};
use heterowire_core::{Optimizations, ProcessorConfig};

fn main() {
    let scale = RunScale::from_env();
    // Figure 3 uses a single metal layer: 72 B-Wires per cluster link (the
    // cache link has twice that), versus the same plus an L-Wire layer of
    // 18 wires per cluster link (paper §5.3). Both machines share one
    // topology so the comparison isolates the wire mix.
    let base_spec = heterowire_core::ModelSpec::parse("custom:b72").expect("valid spec");
    let enhanced = model_override_or("custom:b72+l18");
    let topology = topology_override_or("crossbar4").topology();

    let mut base_cfg = ProcessorConfig::for_model_spec(&base_spec, topology);
    base_cfg.opts = Optimizations::none();
    let l_cfg = ProcessorConfig::for_model_spec(&enhanced, topology);

    eprintln!("running baseline (72 B-Wires) suite ...");
    let base = run_suite(&base_cfg, scale);
    eprintln!("running enhanced ({}) suite ...", enhanced.description());
    let lwire = run_suite(&l_cfg, scale);
    emit_suite_artifacts(
        &[("baseline", &base), ("lwire", &lwire)],
        &artifact_paths_from_args(),
    );

    println!("Figure 3: IPC, 4-cluster partitioned architecture");
    println!(
        "{:<10} {:>10} {:>14} {:>8}",
        "benchmark", "baseline", "enhanced", "delta"
    );
    for i in 0..base.names.len() {
        let b = base.runs[i].ipc();
        let l = lwire.runs[i].ipc();
        println!(
            "{:<10} {:>10.3} {:>14.3} {:>+7.1}%",
            base.names[i],
            b,
            l,
            (l / b - 1.0) * 100.0
        );
    }
    let bam = base.mean_ipc();
    let lam = lwire.mean_ipc();
    println!(
        "{:<10} {:>10.3} {:>14.3} {:>+7.1}%",
        "AM",
        bam,
        lam,
        (lam / bam - 1.0) * 100.0
    );
    println!(
        "\npaper: +4.2% AM IPC from the three L-Wire optimizations \
         (cache pipeline, narrow operands, branch signal contributing equally)"
    );
}
