//! Regenerates **Table 3** of the paper: the ten interconnect models on the
//! 4-cluster crossbar — relative metal area, IPC, relative interconnect
//! dynamic and leakage energy, relative processor energy, and ED² at 10%
//! and 20% interconnect energy fractions, all normalised to Model I.

use heterowire_bench::{format_model_table, model_sweep_main};

fn main() {
    let (topo, rows) = model_sweep_main("crossbar4");
    println!(
        "Table 3: heterogeneous interconnect energy and performance, {} ({} clusters)",
        topo.name(),
        topo.topology().clusters()
    );
    println!("(all values except IPC are % of Model I)\n");
    print!("{}", format_model_table(&rows, true));

    let best = rows
        .iter()
        .min_by(|a, b| a.at_10.rel_ed2.total_cmp(&b.at_10.rel_ed2))
        .expect("ten rows");
    println!(
        "\nbest ED2(10%): {} at {:.1}% (paper: Model IX at 92.0%)",
        best.model.label(),
        best.at_10.rel_ed2
    );
    let best20 = rows
        .iter()
        .min_by(|a, b| a.at_20.rel_ed2.total_cmp(&b.at_20.rel_ed2))
        .expect("ten rows");
    println!(
        "best ED2(20%): {} at {:.1}% (paper: Model III at 92.1%)",
        best20.model.label(),
        best20.at_20.rel_ed2
    );
}
