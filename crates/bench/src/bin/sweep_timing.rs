//! Times the quick-scale Table-3 model sweep two ways — the seed's serial
//! reference loop and the flattened work-queue executor — verifies the two
//! produce bit-identical results, and appends one CSV row per invocation
//! to `results/sweep_timing.csv` (pass `--label` to tag the row, `--out`
//! to redirect it). This is the reproducible before/after number behind
//! EXPERIMENTS.md's executor section.

use heterowire_bench::timing::{git_revision, time_once, BenchReport, Measurement};
use heterowire_bench::{
    executor, parse_topology_token, sweep_runs_serial_set, sweep_runs_set, ModelSet, RunScale,
};
use heterowire_core::ModelSpec;

const USAGE: &str = "usage: sweep_timing [--label NAME] [--out CSV_PATH] [--json-out JSON_PATH]\n\
    [--model TOKEN]... [--topology TOKEN]\n\
    times the quick-scale model sweep (serial vs. executor) and appends a\n\
    CSV row to --out (default results/sweep_timing.csv) plus a schema-checked\n\
    bench.json report to --json-out (default results/bench.json); repeated\n\
    --model flags (presets or custom:<spec>) replace the default Models I-X;\n\
    --topology (a preset, compact spec or spec file) replaces the default\n\
    4-cluster crossbar";

fn main() {
    let mut label = "run".to_string();
    let mut out = "results/sweep_timing.csv".to_string();
    let mut json_out = "results/bench.json".to_string();
    let mut specs: Vec<ModelSpec> = Vec::new();
    let mut topo_token = "crossbar4".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} requires a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--label" => label = value(&mut args),
            "--out" => out = value(&mut args),
            "--json-out" => json_out = value(&mut args),
            "--model" => {
                let token = value(&mut args);
                specs.push(ModelSpec::parse(&token).unwrap_or_else(|e| {
                    eprintln!("--model {token:?}: {e}\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--topology" => topo_token = value(&mut args),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let models = if specs.is_empty() {
        ModelSet::paper()
    } else {
        ModelSet::new(specs).expect("non-empty")
    };

    let scale = RunScale::quick();
    let workers = executor::default_workers();
    let topology = parse_topology_token(&topo_token)
        .unwrap_or_else(|e| {
            eprintln!("{e}\n{USAGE}");
            std::process::exit(2);
        })
        .topology();

    eprintln!(
        "quick-scale model sweep ({} models), serial reference ...",
        models.len()
    );
    let (serial, t_serial) = time_once(|| sweep_runs_serial_set(&models, topology, scale));
    eprintln!("quick-scale model sweep, executor ({workers} workers) ...");
    let (parallel, t_parallel) = time_once(|| sweep_runs_set(&models, topology, scale, workers));

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.runs, p.runs, "executor must be bit-identical to serial");
    }

    let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64();
    println!(
        "label={label} host_threads={workers} serial={:.3}s executor={:.3}s speedup={speedup:.2}x",
        t_serial.as_secs_f64(),
        t_parallel.as_secs_f64(),
    );

    let path = std::path::Path::new(&out);
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create results directory {}: {e}", dir.display());
            std::process::exit(2);
        }
    }
    let header = "label,host_threads,window,warmup,serial_s,executor_s,speedup\n";
    let mut body = match std::fs::read_to_string(path) {
        Ok(existing) => existing,
        Err(_) => String::from(header),
    };
    body.push_str(&format!(
        "{},{},{},{},{:.3},{:.3},{:.2}\n",
        label,
        workers,
        scale.window,
        scale.warmup,
        t_serial.as_secs_f64(),
        t_parallel.as_secs_f64(),
        speedup
    ));
    if let Err(e) = std::fs::write(path, &body) {
        eprintln!("cannot write timing csv {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("appended to {out}");

    // Machine-readable perf-trajectory artifact, schema-validated on write
    // and after re-reading from disk (the CI gate fails on schema errors
    // only; the timing values themselves are warn-only on shared runners).
    let report = BenchReport {
        suite: "sweep_timing".to_string(),
        label,
        host_threads: workers as u64,
        git_rev: git_revision(),
        measurements: vec![
            Measurement {
                name: "serial".to_string(),
                seconds: t_serial.as_secs_f64(),
            },
            Measurement {
                name: "executor".to_string(),
                seconds: t_parallel.as_secs_f64(),
            },
        ],
    };
    if let Err(e) = report.write(std::path::Path::new(&json_out)) {
        eprintln!("bench.json schema violation: {e}");
        std::process::exit(1);
    }
    println!("wrote {json_out}");
}
