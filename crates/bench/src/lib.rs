//! # heterowire-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! HPCA-11 2005 wire-management paper from the `heterowire` simulator:
//!
//! | Binary        | Regenerates |
//! |---------------|-------------|
//! | `table2`      | Table 2 (wire parameters, derived from physics) |
//! | `fig3`        | Figure 3 (per-benchmark IPC, baseline vs +L-Wires) |
//! | `table3`      | Table 3 (Models I–X on 4 clusters) |
//! | `table4`      | Table 4 (Models I–X on 16 clusters) |
//! | `sensitivity` | §1/§5.3 scalar claims (2x latency, 4→16 clusters, predictor and LSQ rates) |
//! | `ablation`    | design-choice sweeps (LS bits, balancer, narrow threshold, per-optimization) |
//!
//! The library part hosts the shared experiment-running machinery so the
//! binaries, the integration tests and the Criterion benches all run the
//! exact same code.

use heterowire_core::{
    mean_report, relative_report, EnergyParams, InterconnectModel, Processor, ProcessorConfig,
    RelativeReport, SimResults,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, BenchmarkProfile, TraceGenerator};

/// Default committed-instruction window per benchmark.
pub const DEFAULT_WINDOW: u64 = 100_000;
/// Default warmup (excluded from statistics).
pub const DEFAULT_WARMUP: u64 = 30_000;
/// Experiment seed (fixed for reproducibility).
pub const SEED: u64 = 0x5EED_2005;

/// Which workload scale to run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Measured instructions per benchmark.
    pub window: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
}

impl RunScale {
    /// The full scale used for reported numbers.
    pub fn full() -> Self {
        RunScale {
            window: DEFAULT_WINDOW,
            warmup: DEFAULT_WARMUP,
        }
    }

    /// A fast scale for smoke tests and Criterion timing.
    pub fn quick() -> Self {
        RunScale {
            window: 10_000,
            warmup: 3_000,
        }
    }

    /// Reads `HETEROWIRE_SCALE=quick|full` from the environment (default
    /// full) so CI can downscale the harness.
    pub fn from_env() -> Self {
        match std::env::var("HETEROWIRE_SCALE").as_deref() {
            Ok("quick") => Self::quick(),
            _ => Self::full(),
        }
    }
}

/// Runs one benchmark profile under one processor configuration.
pub fn run_one(config: ProcessorConfig, profile: BenchmarkProfile, scale: RunScale) -> SimResults {
    let trace = TraceGenerator::new(profile, SEED);
    Processor::simulate(config, trace, scale.window, scale.warmup)
}

/// Per-benchmark results of one model over the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Benchmark names, in suite order.
    pub names: Vec<&'static str>,
    /// One result per benchmark.
    pub runs: Vec<SimResults>,
}

impl SuiteResults {
    /// Arithmetic-mean IPC (the paper's aggregate).
    pub fn mean_ipc(&self) -> f64 {
        heterowire_core::mean_ipc(&self.runs)
    }
}

/// Runs the full 23-benchmark suite under a configuration, one OS thread
/// per benchmark (runs are independent and deterministic, so this changes
/// nothing but wall-clock time).
pub fn run_suite(config: &ProcessorConfig, scale: RunScale) -> SuiteResults {
    let profiles = spec2000();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    let runs = std::thread::scope(|s| {
        let handles: Vec<_> = profiles
            .into_iter()
            .map(|p| {
                let config = config.clone();
                s.spawn(move || run_one(config, p, scale))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("benchmark thread panicked"))
            .collect()
    });
    SuiteResults { names, runs }
}

/// One row of the regenerated Table 3/4.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Which interconnect model.
    pub model: InterconnectModel,
    /// Link description string.
    pub description: String,
    /// Relative metal area.
    pub metal_area: f64,
    /// Suite mean report at 10% interconnect fraction.
    pub at_10: RelativeReport,
    /// Suite mean report at 20% interconnect fraction.
    pub at_20: RelativeReport,
}

/// Regenerates a Table-3/4-style model sweep on the given topology.
/// Returns one row per model, each relative to Model I.
pub fn model_sweep(topology: Topology, scale: RunScale) -> Vec<ModelRow> {
    let baseline_cfg = ProcessorConfig::for_model(InterconnectModel::I, topology);
    let baseline = run_suite(&baseline_cfg, scale);
    InterconnectModel::ALL
        .iter()
        .map(|&model| {
            let cfg = ProcessorConfig::for_model(model, topology);
            let suite = if model == InterconnectModel::I {
                baseline.clone()
            } else {
                run_suite(&cfg, scale)
            };
            let reports_10: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, EnergyParams::ten_percent()))
                .collect();
            let reports_20: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, EnergyParams::twenty_percent()))
                .collect();
            ModelRow {
                model,
                description: model.description(),
                metal_area: model.relative_metal_area(),
                at_10: mean_report(&reports_10),
                at_20: mean_report(&reports_20),
            }
        })
        .collect()
}

/// Formats a model sweep as an aligned text table (Table-3 layout).
pub fn format_model_table(rows: &[ModelRow], include_10: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<40} {:>5} {:>6} {:>7} {:>7} {:>7} {:>9} {:>9}\n",
        "Model", "Link composition", "Area", "IPC", "IC-dyn", "IC-lkg", "Energy", "ED2(10%)", "ED2(20%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<40} {:>5.1} {:>6.3} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>9.1}\n",
            format!("Model {}", r.model.name()),
            r.description,
            r.metal_area,
            r.at_10.ipc,
            r.at_10.rel_ic_dynamic,
            r.at_10.rel_ic_leakage,
            if include_10 {
                r.at_10.rel_processor_energy
            } else {
                r.at_20.rel_processor_energy
            },
            r.at_10.rel_ed2,
            r.at_20.rel_ed2,
        ));
    }
    out
}

/// Formats a model sweep as CSV (machine-readable companion to
/// [`format_model_table`]); pass the path via `--csv <file>` on the
/// `table3`/`table4` binaries.
pub fn format_model_csv(rows: &[ModelRow]) -> String {
    let mut out = String::from(
        "model,link,metal_area,ipc,ic_dynamic_pct,ic_leakage_pct,\
         energy10_pct,ed2_10_pct,energy20_pct,ed2_20_pct\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:?},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.model.name(),
            r.description,
            r.metal_area,
            r.at_10.ipc,
            r.at_10.rel_ic_dynamic,
            r.at_10.rel_ic_leakage,
            r.at_10.rel_processor_energy,
            r.at_10.rel_ed2,
            r.at_20.rel_processor_energy,
            r.at_20.rel_ed2,
        ));
    }
    out
}

/// Formats per-benchmark suite results as CSV (one row per benchmark).
pub fn format_suite_csv(suite: &SuiteResults) -> String {
    let mut out = String::from(
        "benchmark,instructions,cycles,ipc,transfers_per_inst,\
         ic_dynamic_energy,l1_misses,l2_misses,mispredict_rate,\
         false_dep_rate,narrow_coverage\n",
    );
    for (name, r) in suite.names.iter().zip(&suite.runs) {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.3},{:.1},{},{},{:.4},{:.4},{:.4}\n",
            name,
            r.instructions,
            r.cycles,
            r.ipc(),
            r.transfers_per_inst(),
            r.net.dynamic_energy,
            r.mem.l1_misses,
            r.mem.l2_misses,
            r.fetch.mispredict_rate(),
            r.lsq.false_dependence_rate(),
            r.narrow_coverage,
        ));
    }
    out
}

/// Parses an optional `--csv <path>` argument pair from `std::env::args`.
pub fn csv_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_one_row_per_model() {
        let rows = model_sweep(
            Topology::crossbar4(),
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let csv = format_model_csv(&rows);
        assert_eq!(csv.lines().count(), 11, "header + 10 models");
        assert!(csv.starts_with("model,"));
        assert!(csv.contains("\nI,"));
        assert!(csv.contains("\nX,"));
    }

    #[test]
    fn suite_csv_has_one_row_per_benchmark() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let suite = run_suite(
            &cfg,
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let csv = format_suite_csv(&suite);
        assert_eq!(csv.lines().count(), 24, "header + 23 benchmarks");
        assert!(csv.contains("gzip,"));
        assert!(csv.contains("mcf,"));
    }

    #[test]
    fn quick_suite_runs() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let scale = RunScale {
            window: 2_000,
            warmup: 500,
        };
        let suite = run_suite(&cfg, scale);
        assert_eq!(suite.runs.len(), 23);
        assert!(suite.mean_ipc() > 0.0);
    }

    #[test]
    fn scale_from_env_defaults_to_full() {
        // No env set in tests -> full scale.
        let s = RunScale::from_env();
        assert!(s.window >= RunScale::quick().window);
    }
}
