//! # heterowire-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! HPCA-11 2005 wire-management paper from the `heterowire` simulator:
//!
//! | Binary        | Regenerates |
//! |---------------|-------------|
//! | `table2`      | Table 2 (wire parameters, derived from physics) |
//! | `fig3`        | Figure 3 (per-benchmark IPC, baseline vs +L-Wires) |
//! | `table3`      | Table 3 (Models I–X on 4 clusters) |
//! | `table4`      | Table 4 (Models I–X on 16 clusters) |
//! | `sensitivity` | §1/§5.3 scalar claims (2x latency, 4→16 clusters, predictor and LSQ rates) |
//! | `ablation`    | design-choice sweeps (LS bits, balancer, narrow threshold, per-optimization) |
//!
//! The library part hosts the shared experiment-running machinery so the
//! binaries, the integration tests and the timing benches all run the
//! exact same code. Suite and sweep runs are parallelised by the bounded
//! work-queue in [`executor`]; wall-clock measurement lives in [`timing`].

pub mod executor;
pub mod timing;

use std::sync::Arc;

use heterowire_core::{
    mean_report, relative_report, CriticalityPolicy, EnergyParams, FaultSpec, ModelSpec, NullProbe,
    Optimizations, OraclePolicy, PaperPolicy, Processor, ProcessorConfig, PwFirstPolicy,
    RelativeReport, SimResults, SprayPolicy, StallReport,
};
use heterowire_interconnect::{Topology, TopologySpec};
use heterowire_telemetry::json::JsonWriter;
use heterowire_trace::{spec2000, BenchmarkProfile, TraceGenerator};
use heterowire_wires::classes::Table2Row;
use heterowire_wires::WireClass;

/// Default committed-instruction window per benchmark.
pub const DEFAULT_WINDOW: u64 = 100_000;
/// Default warmup (excluded from statistics).
pub const DEFAULT_WARMUP: u64 = 30_000;
/// Experiment seed (fixed for reproducibility).
pub const SEED: u64 = 0x5EED_2005;

/// Which workload scale to run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Measured instructions per benchmark.
    pub window: u64,
    /// Warmup instructions per benchmark.
    pub warmup: u64,
}

impl RunScale {
    /// The full scale used for reported numbers.
    pub fn full() -> Self {
        RunScale {
            window: DEFAULT_WINDOW,
            warmup: DEFAULT_WARMUP,
        }
    }

    /// A fast scale for smoke tests and Criterion timing.
    pub fn quick() -> Self {
        RunScale {
            window: 10_000,
            warmup: 3_000,
        }
    }

    /// Maps a `HETEROWIRE_SCALE` value to a scale: `"quick"` and `"full"`
    /// select the matching preset, unset/empty defaults to full, and
    /// anything else is an error (a typo must not silently run the
    /// hour-long full scale).
    pub fn from_env_value(value: Option<&str>) -> Result<Self, String> {
        match value {
            None | Some("") | Some("full") => Ok(Self::full()),
            Some("quick") => Ok(Self::quick()),
            Some(other) => Err(format!(
                "unknown HETEROWIRE_SCALE value {other:?}; expected \"quick\" or \"full\""
            )),
        }
    }

    /// Reads `HETEROWIRE_SCALE=quick|full` from the environment (default
    /// full) so CI can downscale the harness. Panics on unknown values.
    pub fn from_env() -> Self {
        let value = std::env::var("HETEROWIRE_SCALE").ok();
        Self::from_env_value(value.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The ordered set of interconnect models a sweep covers. The first entry
/// is the normalisation baseline every row is reported against; the
/// default set is the paper's Models I–X (baseline Model I).
///
/// Every harness binary accepts repeated `--model <token>` flags, where a
/// token is a Roman-numeral preset (`VII`) or a data-driven composition
/// (`custom:b144+pw288+l36`); see [`ModelSpec::parse`].
#[derive(Debug, Clone)]
pub struct ModelSet {
    specs: Vec<ModelSpec>,
}

impl ModelSet {
    /// The paper's Models I–X in table order (Model I is the baseline).
    pub fn paper() -> Self {
        ModelSet {
            specs: ModelSpec::paper_presets(),
        }
    }

    /// Builds a set from explicit specs; the first is the baseline.
    pub fn new(specs: Vec<ModelSpec>) -> Result<Self, String> {
        if specs.is_empty() {
            return Err("a model set needs at least one model".to_string());
        }
        Ok(ModelSet { specs })
    }

    /// The specs, in sweep order.
    pub fn specs(&self) -> &[ModelSpec] {
        &self.specs
    }

    /// Number of models in the set (never zero).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Always false — kept for clippy's `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Collects every `--model <token>` pair from an argument list.
    /// Returns `None` when no `--model` flag is present (caller picks its
    /// default); a flag without a value or an unparseable token is an
    /// error.
    pub fn from_args(args: &[String]) -> Result<Option<Self>, String> {
        let mut specs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--model" {
                let token = args
                    .get(i + 1)
                    .ok_or_else(|| "--model requires a value".to_string())?;
                specs.push(ModelSpec::parse(token).map_err(|e| format!("--model {token:?}: {e}"))?);
                i += 2;
            } else {
                i += 1;
            }
        }
        if specs.is_empty() {
            return Ok(None);
        }
        Self::new(specs).map(Some)
    }

    /// [`ModelSet::from_args`] over `std::env::args`, defaulting to the
    /// paper set; exits with status 2 on a malformed `--model`.
    pub fn from_args_or_paper() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match Self::from_args(&args) {
            Ok(set) => set.unwrap_or_else(Self::paper),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

/// Parses a single `--model` override from `std::env::args` for binaries
/// that study one model rather than sweeping a set; `default` (a preset
/// name or `custom:<spec>` token) applies when no flag is given. Exits
/// with status 2 on a malformed token or on more than one `--model`.
pub fn model_override_or(default: &str) -> ModelSpec {
    let args: Vec<String> = std::env::args().collect();
    match ModelSet::from_args(&args) {
        Ok(None) => ModelSpec::parse(default).expect("default model token is valid"),
        Ok(Some(set)) if set.len() == 1 => set.specs()[0].clone(),
        Ok(Some(_)) => {
            eprintln!("this binary takes at most one --model");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Runs one benchmark profile under one processor configuration.
pub fn run_one(config: ProcessorConfig, profile: BenchmarkProfile, scale: RunScale) -> SimResults {
    run_one_shared(Arc::new(config), profile, scale)
}

/// [`run_one`] over a shared configuration — sweep harnesses running one
/// config across many benchmarks share a single allocation instead of
/// cloning the whole `ProcessorConfig` per job.
pub fn run_one_shared(
    config: Arc<ProcessorConfig>,
    profile: BenchmarkProfile,
    scale: RunScale,
) -> SimResults {
    let trace = TraceGenerator::new(profile, SEED);
    Processor::with_shared_config(config, trace).run(scale.window, scale.warmup)
}

/// A named steering policy the multi-policy A/B harness (`policy_ab`) can
/// race. Each kind maps to one [`TransferPolicy`] implementation;
/// [`run_one_policy`] does the monomorphized dispatch.
///
/// [`TransferPolicy`]: heterowire_core::TransferPolicy
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's wire management
    /// ([`PaperPolicy`]) — the default the
    /// whole repo runs, and the harness's usual baseline.
    Paper,
    /// Round-robin full-width spraying ([`SprayPolicy`]).
    Spray,
    /// Criticality-first L-Wire steering with wide-value splitting
    /// ([`CriticalityPolicy`]).
    Criticality,
    /// Bandwidth-aware PW-default inversion ([`PwFirstPolicy`]).
    PwFirst,
    /// Width + consumer-distance oracle upper bound ([`OraclePolicy`]).
    Oracle,
}

impl PolicyKind {
    /// Every racer, in the order the harness runs them by default.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Paper,
        PolicyKind::Spray,
        PolicyKind::Criticality,
        PolicyKind::PwFirst,
        PolicyKind::Oracle,
    ];

    /// The command-line token naming this policy.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Paper => "paper",
            PolicyKind::Spray => "spray",
            PolicyKind::Criticality => "criticality",
            PolicyKind::PwFirst => "pwfirst",
            PolicyKind::Oracle => "oracle",
        }
    }

    /// Parses one `--policy` token.
    pub fn parse(token: &str) -> Result<Self, String> {
        Self::ALL
            .into_iter()
            .find(|p| p.name() == token)
            .ok_or_else(|| {
                let known: Vec<_> = Self::ALL.iter().map(|p| p.name()).collect();
                format!(
                    "unknown policy {token:?}; expected one of {}",
                    known.join(", ")
                )
            })
    }

    /// The wire class without which this policy is meaningless (not merely
    /// degraded): criticality steering is *about* L-Wires, the PW-first
    /// inversion is *about* PW-Wires. `None` means the policy runs on any
    /// link (clamping to available planes where needed).
    pub fn required_class(self) -> Option<WireClass> {
        match self {
            PolicyKind::Criticality => Some(WireClass::L),
            PolicyKind::PwFirst => Some(WireClass::Pw),
            PolicyKind::Paper | PolicyKind::Spray | PolicyKind::Oracle => None,
        }
    }

    /// Refuses models that lack this policy's [`required_class`] entirely
    /// (the lane-starved `custom:` spec guard: the policies themselves
    /// degrade gracefully, but racing e.g. `pwfirst` on a B-only link
    /// measures nothing).
    ///
    /// [`required_class`]: PolicyKind::required_class
    pub fn check_supported(self, spec: &ModelSpec) -> Result<(), String> {
        if let Some(class) = self.required_class() {
            if spec.link().lanes(class) == 0 {
                return Err(format!(
                    "policy {:?} needs a {class} plane, which model {} lacks entirely",
                    self.name(),
                    spec.label(),
                ));
            }
        }
        Ok(())
    }
}

/// Collects the comma-separated values of every `--policy` flag from an
/// argument list (`--policy paper,spray --policy oracle` ==
/// `--policy paper,spray,oracle`). Returns `None` when no flag is present
/// (caller picks its default); a flag without a value, an unknown name or
/// a duplicate is an error.
pub fn policies_from_args(args: &[String]) -> Result<Option<Vec<PolicyKind>>, String> {
    let mut policies: Vec<PolicyKind> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--policy" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| "--policy requires a value".to_string())?;
            for token in value.split(',') {
                let p = PolicyKind::parse(token)?;
                if policies.contains(&p) {
                    return Err(format!("policy {token:?} given more than once"));
                }
                policies.push(p);
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(if policies.is_empty() {
        None
    } else {
        Some(policies)
    })
}

/// Resolves one `--topology` token: a preset name (`crossbar4`, `hier16`),
/// a compact spec (`xbar:8`, `ring:6x4[@hop<n>][@xbar<n>]`), or the path
/// of a key=value spec file. Tokens containing `:` are always treated as
/// specs; anything else that names an existing file is read as a spec
/// file.
pub fn parse_topology_token(token: &str) -> Result<TopologySpec, String> {
    let is_preset = heterowire_interconnect::TopologyPreset::ALL
        .iter()
        .any(|p| p.name() == token);
    let spec = if is_preset || token.contains(':') {
        TopologySpec::parse(token).map_err(|e| format!("--topology {token:?}: {e}"))?
    } else {
        let path = std::path::Path::new(token);
        if !path.is_file() {
            return Err(format!(
                "unknown topology {token:?}: not a preset (crossbar4, hier16), a spec \
                 (xbar:8, ring:6x4[@hop<n>][@xbar<n>]) or an existing spec file"
            ));
        }
        let contents = std::fs::read_to_string(path)
            .map_err(|e| format!("--topology: cannot read spec file {token:?}: {e}"))?;
        TopologySpec::parse_file(&contents)
            .map_err(|e| format!("--topology spec file {token:?}: {e}"))?
    };
    // Capacity (cluster cap, ring-quad bound) is the spec parser's job:
    // it runs the shared checker, whose message names the cap and the
    // offending count, so sweeps exit 2 with the same wording every
    // other layer uses.
    debug_assert!(spec.topology().clusters() <= heterowire_core::MAX_CLUSTERS);
    Ok(spec)
}

/// The ordered set of topologies a race covers, mirroring [`ModelSet`]:
/// every harness binary accepts repeated `--topology <token>` flags (see
/// [`parse_topology_token`] for the token forms); single-topology binaries
/// use [`topology_override_or`] instead.
#[derive(Debug, Clone)]
pub struct TopologySet {
    specs: Vec<TopologySpec>,
}

impl TopologySet {
    /// Builds a set from explicit specs.
    pub fn new(specs: Vec<TopologySpec>) -> Result<Self, String> {
        if specs.is_empty() {
            return Err("a topology set needs at least one topology".to_string());
        }
        Ok(TopologySet { specs })
    }

    /// The specs, in sweep order.
    pub fn specs(&self) -> &[TopologySpec] {
        &self.specs
    }

    /// Number of topologies in the set (never zero).
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Always false — kept for clippy's `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Collects every `--topology <token>` pair from an argument list.
    /// Returns `None` when no flag is present (caller picks its default);
    /// a flag without a value or an unparseable token is an error.
    pub fn from_args(args: &[String]) -> Result<Option<Self>, String> {
        let mut specs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--topology" {
                let token = args
                    .get(i + 1)
                    .ok_or_else(|| "--topology requires a value".to_string())?;
                specs.push(parse_topology_token(token)?);
                i += 2;
            } else {
                i += 1;
            }
        }
        if specs.is_empty() {
            return Ok(None);
        }
        Self::new(specs).map(Some)
    }

    /// [`TopologySet::from_args`] over `std::env::args`, defaulting to the
    /// single topology named by `default`; exits with status 2 on a
    /// malformed `--topology`.
    pub fn from_args_or(default: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        match Self::from_args(&args) {
            Ok(Some(set)) => set,
            Ok(None) => {
                let spec = parse_topology_token(default).expect("default topology token is valid");
                TopologySet { specs: vec![spec] }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

/// Parses an optional single `--topology` flag (preset, spec or spec-file
/// token). `Ok(None)` when the flag is absent; `Err` on a malformed token
/// or a repeated flag.
pub fn topology_from_args(args: &[String]) -> Result<Option<TopologySpec>, String> {
    match TopologySet::from_args(args)? {
        None => Ok(None),
        Some(set) if set.len() == 1 => Ok(Some(set.specs()[0])),
        Some(_) => Err("--topology given more than once".to_string()),
    }
}

/// Parses a single `--topology` override from `std::env::args` for
/// binaries that study one topology rather than racing a set; `default`
/// applies when no flag is given. Exits with status 2 on a malformed token
/// or on more than one `--topology`.
pub fn topology_override_or(default: &str) -> TopologySpec {
    let args: Vec<String> = std::env::args().collect();
    match topology_from_args(&args) {
        Ok(None) => parse_topology_token(default).expect("default topology token is valid"),
        Ok(Some(spec)) => spec,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Runs one benchmark profile under one configuration with the named
/// steering policy. `PolicyKind::Paper` takes the exact default-processor
/// construction path, so its results are bit-identical to
/// [`run_one_shared`].
pub fn run_one_policy(
    config: Arc<ProcessorConfig>,
    profile: BenchmarkProfile,
    scale: RunScale,
    policy: PolicyKind,
) -> SimResults {
    let trace = TraceGenerator::new(profile, SEED);
    match policy {
        PolicyKind::Paper => {
            Processor::with_shared_config(config, trace).run(scale.window, scale.warmup)
        }
        PolicyKind::Spray => {
            let p = SprayPolicy::new(&config.link);
            Processor::with_policy_shared(config, trace, NullProbe, p)
                .run(scale.window, scale.warmup)
        }
        PolicyKind::Criticality => {
            let p = CriticalityPolicy::new(&config);
            Processor::with_policy_shared(config, trace, NullProbe, p)
                .run(scale.window, scale.warmup)
        }
        PolicyKind::PwFirst => {
            let p = PwFirstPolicy::new(&config);
            Processor::with_policy_shared(config, trace, NullProbe, p)
                .run(scale.window, scale.warmup)
        }
        PolicyKind::Oracle => {
            let p = OraclePolicy::new(&config);
            Processor::with_policy_shared(config, trace, NullProbe, p)
                .run(scale.window, scale.warmup)
        }
    }
}

/// Builds the processor configuration for a model on a topology with a
/// fault scenario's stuck lanes already retired from the link — the
/// optimization set is recomputed for the surviving planes, so steering
/// policies and the load balancer see the degraded fabric, not the
/// nominal one. `None` (or a spec with no stuck lanes) reproduces
/// [`ProcessorConfig::for_model_spec`] exactly.
pub fn degraded_config(
    model: &ModelSpec,
    topology: Topology,
    faults: Option<&FaultSpec>,
) -> Result<ProcessorConfig, String> {
    let mut config = ProcessorConfig::for_model_spec(model, topology);
    if let Some(spec) = faults.filter(|s| !s.stuck_lanes().is_empty()) {
        let link = spec
            .apply_to_link(&config.link)
            .map_err(|e| e.to_string())?;
        config.opts = Optimizations::for_link(&link);
        config.link = link;
    }
    Ok(config)
}

/// [`run_one_policy`] under a fault scenario: transient rates drive the
/// seeded injector inside the network, and the watchdog's stall report
/// comes back as a structured error instead of a panic (a saturated rate
/// can livelock the fabric legitimately — that is a failed row, not a
/// dead sweep). `config` must already carry the scenario's degraded link
/// (see [`degraded_config`]). With `faults` absent or transient-free the
/// run takes the exact fault-free construction path, so results are
/// bit-identical to [`run_one_policy`].
pub fn run_one_policy_faults(
    config: Arc<ProcessorConfig>,
    profile: BenchmarkProfile,
    scale: RunScale,
    policy: PolicyKind,
    faults: Option<&FaultSpec>,
) -> Result<SimResults, Box<StallReport>> {
    let trace = TraceGenerator::new(profile, SEED);
    let Some(spec) = faults.filter(|s| s.has_transient()) else {
        return Ok(run_one_policy(config, profile, scale, policy));
    };
    let inj = spec.injector();
    match policy {
        PolicyKind::Paper => {
            let p = PaperPolicy::new(&config);
            Processor::with_faults_shared(config, trace, NullProbe, p, inj)
                .try_run(scale.window, scale.warmup)
        }
        PolicyKind::Spray => {
            let p = SprayPolicy::new(&config.link);
            Processor::with_faults_shared(config, trace, NullProbe, p, inj)
                .try_run(scale.window, scale.warmup)
        }
        PolicyKind::Criticality => {
            let p = CriticalityPolicy::new(&config);
            Processor::with_faults_shared(config, trace, NullProbe, p, inj)
                .try_run(scale.window, scale.warmup)
        }
        PolicyKind::PwFirst => {
            let p = PwFirstPolicy::new(&config);
            Processor::with_faults_shared(config, trace, NullProbe, p, inj)
                .try_run(scale.window, scale.warmup)
        }
        PolicyKind::Oracle => {
            let p = OraclePolicy::new(&config);
            Processor::with_faults_shared(config, trace, NullProbe, p, inj)
                .try_run(scale.window, scale.warmup)
        }
    }
}

/// Collects every repeated `--faults <spec>` flag in CLI order. Malformed
/// tokens and exact duplicates (by canonical name) are errors; binaries
/// report them and exit 2, matching the `--model` convention.
pub fn fault_specs_from_args(args: &[String]) -> Result<Vec<FaultSpec>, String> {
    let mut specs: Vec<FaultSpec> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--faults" {
            let token = args
                .get(i + 1)
                .ok_or("--faults needs a fault spec (e.g. --faults l@2e-4)")?;
            let spec = FaultSpec::parse(token).map_err(|e| format!("--faults {token:?}: {e}"))?;
            if specs.iter().any(|s| s.name() == spec.name()) {
                return Err(format!("duplicate --faults {token:?}"));
            }
            specs.push(spec);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(specs)
}

/// Runs every (model × policy × benchmark) triple of a policy race as one
/// flattened job list on the shared executor. Returns suites indexed
/// `[model][policy]` in the given orders.
pub fn policy_sweep_runs(
    models: &ModelSet,
    policies: &[PolicyKind],
    topology: Topology,
    scale: RunScale,
    workers: usize,
) -> Vec<Vec<SuiteResults>> {
    assert!(
        !policies.is_empty(),
        "a policy race needs at least one policy"
    );
    let profiles = spec2000();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    let configs: Vec<Arc<ProcessorConfig>> = models
        .specs()
        .iter()
        .map(|spec| Arc::new(ProcessorConfig::for_model_spec(spec, topology)))
        .collect();
    let mut jobs: Vec<(usize, PolicyKind, BenchmarkProfile)> =
        Vec::with_capacity(configs.len() * policies.len() * profiles.len());
    for mi in 0..configs.len() {
        for &pk in policies {
            for &p in &profiles {
                jobs.push((mi, pk, p));
            }
        }
    }
    let results = executor::run_indexed(jobs, workers, |(mi, pk, profile)| {
        run_one_policy(configs[mi].clone(), profile, scale, pk)
    });
    results
        .chunks(names.len())
        .map(|runs| SuiteResults {
            names: names.clone(),
            runs: runs.to_vec(),
        })
        .collect::<Vec<_>>()
        .chunks(policies.len())
        .map(|s| s.to_vec())
        .collect()
}

/// Fraction (in percent) of a suite's transfers carried on `class`.
pub fn suite_class_share(suite: &SuiteResults, class: WireClass) -> f64 {
    let idx = WireClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class in ALL");
    let total: u64 = suite.runs.iter().map(|r| r.net.total_transfers()).sum();
    if total == 0 {
        return 0.0;
    }
    let on_class: u64 = suite.runs.iter().map(|r| r.net.transfers[idx]).sum();
    100.0 * on_class as f64 / total as f64
}

/// Builds the per-policy [`MetricRow`] comparison for one model of a
/// policy race: IPC, traffic mix per wire class, interconnect energy and
/// ED² (relative to the race's *first* policy, mirroring the model-sweep
/// convention that the first entry is the baseline). `section` is the
/// model name, `label` the policy name.
pub fn policy_metric_rows(
    model: &ModelSpec,
    policies: &[PolicyKind],
    suites: &[SuiteResults],
) -> Vec<MetricRow> {
    assert_eq!(suites.len(), policies.len());
    let section = model.name();
    let baseline = &suites[0];
    let mut rows = Vec::new();
    for (&pk, suite) in policies.iter().zip(suites) {
        let reports = |params: EnergyParams| -> RelativeReport {
            let rs: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, params))
                .collect();
            mean_report(&rs)
        };
        let at_10 = reports(EnergyParams::ten_percent());
        let at_20 = reports(EnergyParams::twenty_percent());
        let ic_dyn: f64 = suite.runs.iter().map(|r| r.net.dynamic_energy).sum();
        let label = pk.name();
        rows.push(MetricRow::new(&section, label, "am_ipc", suite.mean_ipc()));
        for (metric, class) in [
            ("traffic_b_pct", WireClass::B),
            ("traffic_pw_pct", WireClass::Pw),
            ("traffic_l_pct", WireClass::L),
        ] {
            rows.push(MetricRow::new(
                &section,
                label,
                metric,
                suite_class_share(suite, class),
            ));
        }
        rows.push(MetricRow::new(&section, label, "ic_dyn_energy", ic_dyn));
        rows.push(MetricRow::new(&section, label, "ed2_10_pct", at_10.rel_ed2));
        rows.push(MetricRow::new(&section, label, "ed2_20_pct", at_20.rel_ed2));
    }
    rows
}

/// Formats one model's policy race as an aligned text table.
pub fn format_policy_table(
    model: &ModelSpec,
    policies: &[PolicyKind],
    suites: &[SuiteResults],
) -> String {
    assert_eq!(suites.len(), policies.len());
    let baseline = &suites[0];
    let mut out = format!(
        "model {} ({}), ED2 relative to policy {:?}\n{:<12} {:>6} {:>6} {:>6} {:>6} {:>10} {:>9} {:>9}\n",
        model.label(),
        model.description(),
        policies[0].name(),
        "Policy",
        "IPC",
        "B%",
        "PW%",
        "L%",
        "IC-dyn",
        "ED2(10%)",
        "ED2(20%)"
    );
    for (&pk, suite) in policies.iter().zip(suites) {
        let rel = |params: EnergyParams| {
            let rs: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, params))
                .collect();
            mean_report(&rs).rel_ed2
        };
        out.push_str(&format!(
            "{:<12} {:>6.3} {:>6.1} {:>6.1} {:>6.1} {:>10.0} {:>9.1} {:>9.1}\n",
            pk.name(),
            suite.mean_ipc(),
            suite_class_share(suite, WireClass::B),
            suite_class_share(suite, WireClass::Pw),
            suite_class_share(suite, WireClass::L),
            suite.runs.iter().map(|r| r.net.dynamic_energy).sum::<f64>(),
            rel(EnergyParams::ten_percent()),
            rel(EnergyParams::twenty_percent()),
        ));
    }
    out
}

/// Per-benchmark results of one model over the whole suite.
#[derive(Debug, Clone)]
pub struct SuiteResults {
    /// Benchmark names, in suite order.
    pub names: Vec<&'static str>,
    /// One result per benchmark.
    pub runs: Vec<SimResults>,
}

impl SuiteResults {
    /// Arithmetic-mean IPC (the paper's aggregate).
    pub fn mean_ipc(&self) -> f64 {
        heterowire_core::mean_ipc(&self.runs)
    }
}

/// Runs the full 23-benchmark suite under a configuration on the shared
/// work-queue executor, sized to the host's hardware threads. Runs are
/// independent and deterministic, so parallelism changes nothing but
/// wall-clock time.
pub fn run_suite(config: &ProcessorConfig, scale: RunScale) -> SuiteResults {
    run_suite_on(config, scale, executor::default_workers())
}

/// [`run_suite`] with an explicit worker count (`1` = serial).
pub fn run_suite_on(config: &ProcessorConfig, scale: RunScale, workers: usize) -> SuiteResults {
    let profiles = spec2000();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    let shared = Arc::new(config.clone());
    let runs = executor::run_indexed(profiles, workers, |p| {
        run_one_shared(shared.clone(), p, scale)
    });
    SuiteResults { names, runs }
}

/// One row of the regenerated Table 3/4.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Which interconnect model (a preset or a custom spec).
    pub model: ModelSpec,
    /// Link description string.
    pub description: String,
    /// Relative metal area.
    pub metal_area: f64,
    /// Suite mean report at 10% interconnect fraction.
    pub at_10: RelativeReport,
    /// Suite mean report at 20% interconnect fraction.
    pub at_20: RelativeReport,
}

/// Runs every (model × benchmark) pair of a model sweep as one flattened
/// job list on the shared executor, returning one [`SuiteResults`] per
/// model in set order. The first model runs exactly once; its runs double
/// as the baseline for every row.
pub fn sweep_runs_set(
    models: &ModelSet,
    topology: Topology,
    scale: RunScale,
    workers: usize,
) -> Vec<SuiteResults> {
    let profiles = spec2000();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    // One shared config per model; jobs carry an index into it plus a
    // by-value (`Copy`) profile — nothing is cloned per job.
    let configs: Vec<Arc<ProcessorConfig>> = models
        .specs()
        .iter()
        .map(|spec| Arc::new(ProcessorConfig::for_model_spec(spec, topology)))
        .collect();
    let jobs: Vec<(usize, BenchmarkProfile)> = (0..configs.len())
        .flat_map(|mi| profiles.iter().map(move |&p| (mi, p)))
        .collect();
    let results = executor::run_indexed(jobs, workers, |(mi, profile)| {
        run_one_shared(configs[mi].clone(), profile, scale)
    });
    results
        .chunks(names.len())
        .map(|runs| SuiteResults {
            names: names.clone(),
            runs: runs.to_vec(),
        })
        .collect()
}

/// [`sweep_runs_set`] over the paper's Models I–X.
pub fn sweep_runs(topology: Topology, scale: RunScale, workers: usize) -> Vec<SuiteResults> {
    sweep_runs_set(&ModelSet::paper(), topology, scale, workers)
}

/// Serial reference for [`sweep_runs_set`]: the seed's original shape — a
/// plain nested loop over models and benchmarks on the calling thread.
/// Kept so the determinism test can assert the parallel path is
/// bit-identical.
pub fn sweep_runs_serial_set(
    models: &ModelSet,
    topology: Topology,
    scale: RunScale,
) -> Vec<SuiteResults> {
    let profiles = spec2000();
    let names: Vec<&'static str> = profiles.iter().map(|p| p.name).collect();
    models
        .specs()
        .iter()
        .map(|spec| {
            let runs = profiles
                .iter()
                .map(|&p| run_one(ProcessorConfig::for_model_spec(spec, topology), p, scale))
                .collect();
            SuiteResults {
                names: names.clone(),
                runs,
            }
        })
        .collect()
}

/// [`sweep_runs_serial_set`] over the paper's Models I–X.
pub fn sweep_runs_serial(topology: Topology, scale: RunScale) -> Vec<SuiteResults> {
    sweep_runs_serial_set(&ModelSet::paper(), topology, scale)
}

/// Builds Table-3/4-style rows from per-model suite results; `suites[0]`
/// (the set's first model) is the baseline every row is normalised
/// against.
pub fn rows_from_runs_set(models: &ModelSet, suites: &[SuiteResults]) -> Vec<ModelRow> {
    assert_eq!(suites.len(), models.len());
    let baseline = &suites[0];
    models
        .specs()
        .iter()
        .zip(suites)
        .map(|(model, suite)| {
            let reports_10: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, EnergyParams::ten_percent()))
                .collect();
            let reports_20: Vec<_> = suite
                .runs
                .iter()
                .zip(&baseline.runs)
                .map(|(m, b)| relative_report(m, b, EnergyParams::twenty_percent()))
                .collect();
            ModelRow {
                model: model.clone(),
                description: model.description(),
                metal_area: model.relative_metal_area(),
                at_10: mean_report(&reports_10),
                at_20: mean_report(&reports_20),
            }
        })
        .collect()
}

/// [`rows_from_runs_set`] over the paper's Models I–X (the suites must be
/// a full I–X sweep in table order).
pub fn rows_from_runs(suites: &[SuiteResults]) -> Vec<ModelRow> {
    rows_from_runs_set(&ModelSet::paper(), suites)
}

/// Regenerates a Table-3/4-style model sweep on the given topology.
/// Returns one row per model in the set, each relative to the set's first
/// model. All (model × benchmark) runs execute on one executor pool sized
/// to the host's hardware threads.
pub fn model_sweep_set(models: &ModelSet, topology: Topology, scale: RunScale) -> Vec<ModelRow> {
    rows_from_runs_set(
        models,
        &sweep_runs_set(models, topology, scale, executor::default_workers()),
    )
}

/// [`model_sweep_set`] over the paper's Models I–X.
pub fn model_sweep(topology: Topology, scale: RunScale) -> Vec<ModelRow> {
    model_sweep_set(&ModelSet::paper(), topology, scale)
}

/// Formats a model sweep as an aligned text table (Table-3 layout).
pub fn format_model_table(rows: &[ModelRow], include_10: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:<40} {:>5} {:>6} {:>7} {:>7} {:>7} {:>9} {:>9}\n",
        "Model",
        "Link composition",
        "Area",
        "IPC",
        "IC-dyn",
        "IC-lkg",
        "Energy",
        "ED2(10%)",
        "ED2(20%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<40} {:>5.1} {:>6.3} {:>7.1} {:>7.1} {:>7.1} {:>9.1} {:>9.1}\n",
            r.model.label(),
            r.description,
            r.metal_area,
            r.at_10.ipc,
            r.at_10.rel_ic_dynamic,
            r.at_10.rel_ic_leakage,
            if include_10 {
                r.at_10.rel_processor_energy
            } else {
                r.at_20.rel_processor_energy
            },
            r.at_10.rel_ed2,
            r.at_20.rel_ed2,
        ));
    }
    out
}

/// Quotes a CSV field per RFC 4180: fields containing a comma, quote or
/// newline are wrapped in double quotes with internal quotes doubled;
/// plain fields pass through unchanged.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats a model sweep as CSV (machine-readable companion to
/// [`format_model_table`]); pass the path via `--csv <file>` on the
/// `table3`/`table4` binaries.
pub fn format_model_csv(rows: &[ModelRow]) -> String {
    let mut out = String::from(
        "model,link,metal_area,ipc,ic_dynamic_pct,ic_leakage_pct,\
         energy10_pct,ed2_10_pct,energy20_pct,ed2_20_pct\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            r.model.name(),
            csv_field(&r.description),
            r.metal_area,
            r.at_10.ipc,
            r.at_10.rel_ic_dynamic,
            r.at_10.rel_ic_leakage,
            r.at_10.rel_processor_energy,
            r.at_10.rel_ed2,
            r.at_20.rel_processor_energy,
            r.at_20.rel_ed2,
        ));
    }
    out
}

/// Formats per-benchmark suite results as CSV (one row per benchmark).
pub fn format_suite_csv(suite: &SuiteResults) -> String {
    let mut out = String::from(
        "benchmark,instructions,cycles,ipc,transfers_per_inst,\
         ic_dynamic_energy,l1_misses,l2_misses,mispredict_rate,\
         false_dep_rate,narrow_coverage\n",
    );
    for (name, r) in suite.names.iter().zip(&suite.runs) {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.3},{:.1},{},{},{:.4},{:.4},{:.4}\n",
            name,
            r.instructions,
            r.cycles,
            r.ipc(),
            r.transfers_per_inst(),
            r.net.dynamic_energy,
            r.mem.l1_misses,
            r.mem.l2_misses,
            r.fetch.mispredict_rate(),
            r.lsq.false_dependence_rate(),
            r.narrow_coverage,
        ));
    }
    out
}

/// Formats a model sweep as one JSON document (the `--json` companion to
/// [`format_model_csv`]), hand-rolled through the telemetry writer so the
/// offline container needs no serde.
pub fn format_model_json(rows: &[ModelRow]) -> String {
    fn report(w: &mut JsonWriter, r: &RelativeReport) {
        w.begin_object();
        w.key("ipc").f64(r.ipc);
        w.key("ic_dynamic_pct").f64(r.rel_ic_dynamic);
        w.key("ic_leakage_pct").f64(r.rel_ic_leakage);
        w.key("energy_pct").f64(r.rel_processor_energy);
        w.key("ed2_pct").f64(r.rel_ed2);
        w.end_object();
    }
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("rows").begin_array();
    for r in rows {
        w.begin_object();
        w.key("model").string(&r.model.name());
        w.key("link").string(&r.description);
        w.key("metal_area").f64(r.metal_area);
        w.key("at_10");
        report(&mut w, &r.at_10);
        w.key("at_20");
        report(&mut w, &r.at_20);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Formats labelled per-benchmark suites as one JSON document: every run
/// embeds the full [`SimResults::to_json`] record.
pub fn format_suite_json(suites: &[(&str, &SuiteResults)]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("suites").begin_array();
    for (label, suite) in suites {
        w.begin_object();
        w.key("label").string(label);
        w.key("mean_ipc").f64(suite.mean_ipc());
        w.key("runs").begin_array();
        for (name, r) in suite.names.iter().zip(&suite.runs) {
            w.begin_object();
            w.key("benchmark").string(name);
            w.key("results").raw(&r.to_json());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Formats the Table-2 wire-parameter rows as CSV.
pub fn format_table2_csv(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "class,relative_delay,derived_delay,relative_dynamic,\
         derived_dynamic,relative_leakage,crossbar_latency,ring_hop_latency\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{},{:.3},{},{},{}\n",
            r.class.label(),
            r.relative_delay,
            r.derived_delay,
            r.relative_dynamic,
            r.derived_dynamic,
            r.relative_leakage,
            r.crossbar_latency,
            r.ring_hop_latency,
        ));
    }
    out
}

/// Formats the Table-2 wire-parameter rows as JSON.
pub fn format_table2_json(rows: &[Table2Row]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("rows").begin_array();
    for r in rows {
        w.begin_object();
        w.key("class").string(r.class.label());
        w.key("relative_delay").f64(r.relative_delay);
        w.key("derived_delay").f64(r.derived_delay);
        w.key("relative_dynamic").f64(r.relative_dynamic);
        w.key("derived_dynamic").f64(r.derived_dynamic);
        w.key("relative_leakage").f64(r.relative_leakage);
        w.key("crossbar_latency").u64(r.crossbar_latency as u64);
        w.key("ring_hop_latency").u64(r.ring_hop_latency as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Parses an optional `--<flag> <path>` argument pair from an argument
/// list. A flag without a following path is an error rather than a silent
/// `None` (the caller asked for an artifact and would not get one).
pub fn flag_path_from(args: &[String], flag: &str) -> Result<Option<std::path::PathBuf>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(p) => Ok(Some(std::path::PathBuf::from(p))),
            None => Err(format!("{flag} requires a path argument")),
        },
    }
}

/// [`flag_path_from`] for the original `--csv` flag (kept for callers that
/// only emit CSV).
pub fn csv_path_from(args: &[String]) -> Result<Option<std::path::PathBuf>, String> {
    flag_path_from(args, "--csv")
}

/// [`csv_path_from`] over `std::env::args`; exits with status 2 on a
/// malformed `--csv` (same convention as `sweep_timing`'s flag handling).
pub fn csv_path_from_args() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    match csv_path_from(&args) {
        Ok(path) => path,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// The machine-readable outputs a harness binary was asked for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArtifactPaths {
    /// `--csv <path>` destination, if requested.
    pub csv: Option<std::path::PathBuf>,
    /// `--json <path>` destination, if requested.
    pub json: Option<std::path::PathBuf>,
}

/// Parses the `--csv` / `--json` artifact flags shared by the harness
/// binaries.
pub fn artifact_paths_from(args: &[String]) -> Result<ArtifactPaths, String> {
    Ok(ArtifactPaths {
        csv: flag_path_from(args, "--csv")?,
        json: flag_path_from(args, "--json")?,
    })
}

/// [`artifact_paths_from`] over `std::env::args`; exits with status 2 on a
/// malformed flag.
pub fn artifact_paths_from_args() -> ArtifactPaths {
    let args: Vec<String> = std::env::args().collect();
    match artifact_paths_from(&args) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Writes one artifact file, logging the destination (the binaries' shared
/// write-and-announce convention). A filesystem refusal (missing
/// permission, read-only mount, bad path) exits with status 2 naming the
/// path, matching the binaries' malformed-flag convention — results are
/// the whole point of a sweep, so a silent or cryptic loss is not
/// acceptable.
pub fn write_artifact(path: &std::path::Path, contents: &str) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create artifact directory {}: {e}", parent.display());
            std::process::exit(2);
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write artifact {}: {e}", path.display());
        std::process::exit(2);
    }
    eprintln!("wrote {}", path.display());
}

/// Emits the requested `--csv` / `--json` artifacts for a model sweep.
pub fn emit_model_artifacts(rows: &[ModelRow], paths: &ArtifactPaths) {
    if let Some(path) = &paths.csv {
        write_artifact(path, &format_model_csv(rows));
    }
    if let Some(path) = &paths.json {
        write_artifact(path, &format_model_json(rows));
    }
}

/// Emits the requested `--csv` / `--json` artifacts for labelled
/// per-benchmark suites. The CSV keeps the historical shape — one
/// [`format_suite_csv`] block per suite, blank-line separated.
pub fn emit_suite_artifacts(suites: &[(&str, &SuiteResults)], paths: &ArtifactPaths) {
    if let Some(path) = &paths.csv {
        let csv = suites
            .iter()
            .map(|(_, s)| format_suite_csv(s))
            .collect::<Vec<_>>()
            .join("\n");
        write_artifact(path, &csv);
    }
    if let Some(path) = &paths.json {
        write_artifact(path, &format_suite_json(suites));
    }
}

/// Emits the requested `--csv` / `--json` artifacts for (a subset of) the
/// Table-2 wire-parameter rows.
pub fn emit_table2_artifacts(rows: &[Table2Row], paths: &ArtifactPaths) {
    if let Some(path) = &paths.csv {
        write_artifact(path, &format_table2_csv(rows));
    }
    if let Some(path) = &paths.json {
        write_artifact(path, &format_table2_json(rows));
    }
}

/// One labelled scalar from an ablation or sensitivity study: the
/// machine-readable shape behind those binaries' `--csv` / `--json`
/// output. `section` names the study (e.g. `ls-bits`), `label` the swept
/// point (e.g. `8`), `metric` the measured quantity (e.g. `am_ipc`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Which study produced the value.
    pub section: String,
    /// Which swept point within the study.
    pub label: String,
    /// Which quantity was measured.
    pub metric: String,
    /// The measured value.
    pub value: f64,
}

impl MetricRow {
    /// Builds one row (stringifying the borrowed name parts).
    pub fn new(section: &str, label: &str, metric: &str, value: f64) -> Self {
        MetricRow {
            section: section.to_string(),
            label: label.to_string(),
            metric: metric.to_string(),
            value,
        }
    }
}

/// Formats study metrics as CSV (one row per scalar).
pub fn format_metric_csv(rows: &[MetricRow]) -> String {
    let mut out = String::from("section,label,metric,value\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{}\n",
            csv_field(&r.section),
            csv_field(&r.label),
            csv_field(&r.metric),
            r.value,
        ));
    }
    out
}

/// Formats study metrics as one JSON document.
pub fn format_metric_json(rows: &[MetricRow]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("metrics").begin_array();
    for r in rows {
        w.begin_object();
        w.key("section").string(&r.section);
        w.key("label").string(&r.label);
        w.key("metric").string(&r.metric);
        w.key("value").f64(r.value);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Emits the requested `--csv` / `--json` artifacts for study metrics
/// (the shared back end of the `ablation` and `sensitivity` binaries).
pub fn emit_metric_artifacts(rows: &[MetricRow], paths: &ArtifactPaths) {
    if let Some(path) = &paths.csv {
        write_artifact(path, &format_metric_csv(rows));
    }
    if let Some(path) = &paths.json {
        write_artifact(path, &format_metric_json(rows));
    }
}

/// The whole shared spine of the `table3`/`table4` binaries: read the
/// scale from the environment, resolve a `--topology` override against
/// `default_topology` (a preset, spec or spec-file token), collect any
/// repeated `--model` overrides (default: the paper's Models I–X; the
/// first model given is the normalisation baseline), sweep them, and
/// write any `--csv` / `--json` artifacts requested on the command line.
/// Returns the resolved topology alongside the rows so callers can label
/// their output.
pub fn model_sweep_main(default_topology: &str) -> (TopologySpec, Vec<ModelRow>) {
    let scale = RunScale::from_env();
    let spec = topology_override_or(default_topology);
    let models = ModelSet::from_args_or_paper();
    let names: Vec<String> = models.specs().iter().map(|s| s.name()).collect();
    eprintln!(
        "sweeping {} on {} ({} clusters) x 23 benchmarks ...",
        names.join(", "),
        spec.name(),
        spec.topology().clusters()
    );
    let rows = model_sweep_set(&models, spec.topology(), scale);
    emit_model_artifacts(&rows, &artifact_paths_from_args());
    (spec, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heterowire_core::InterconnectModel;
    use heterowire_wires::classes::table2;

    /// Splits one CSV line into fields, honouring RFC-4180 quoting.
    fn parse_csv_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if in_quotes && chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
        fields.push(field);
        fields
    }

    #[test]
    fn csv_has_one_row_per_model_and_consistent_fields() {
        let rows = model_sweep(
            Topology::crossbar4(),
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let csv = format_model_csv(&rows);
        assert_eq!(csv.lines().count(), 11, "header + 10 models");
        assert!(csv.starts_with("model,"));
        assert!(csv.contains("\nI,"));
        assert!(csv.contains("\nX,"));
        let header = parse_csv_line(csv.lines().next().unwrap());
        for (line, row) in csv.lines().skip(1).zip(&rows) {
            let fields = parse_csv_line(line);
            assert_eq!(
                fields.len(),
                header.len(),
                "row has as many fields as the header: {line}"
            );
            assert_eq!(fields[0], row.model.name());
            // The description round-trips through quoting even though it
            // contains commas (e.g. "72 B-Wires, 144 L-Wires").
            assert_eq!(fields[1], row.description);
        }
    }

    #[test]
    fn csv_field_escapes_specials() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn suite_csv_has_one_row_per_benchmark() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let suite = run_suite(
            &cfg,
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let csv = format_suite_csv(&suite);
        assert_eq!(csv.lines().count(), 24, "header + 23 benchmarks");
        assert!(csv.contains("gzip,"));
        assert!(csv.contains("mcf,"));
    }

    #[test]
    fn quick_suite_runs() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let scale = RunScale {
            window: 2_000,
            warmup: 500,
        };
        let suite = run_suite(&cfg, scale);
        assert_eq!(suite.runs.len(), 23);
        assert!(suite.mean_ipc() > 0.0);
    }

    #[test]
    fn scale_from_env_value() {
        // Value-based so the test is immune to whatever HETEROWIRE_SCALE
        // the ambient environment carries (e.g. quick-scale CI).
        assert_eq!(RunScale::from_env_value(None), Ok(RunScale::full()));
        assert_eq!(RunScale::from_env_value(Some("")), Ok(RunScale::full()));
        assert_eq!(RunScale::from_env_value(Some("full")), Ok(RunScale::full()));
        assert_eq!(
            RunScale::from_env_value(Some("quick")),
            Ok(RunScale::quick())
        );
        assert!(RunScale::from_env_value(Some("fast")).is_err());
        assert!(RunScale::from_env_value(Some("QUICK")).is_err());
    }

    #[test]
    fn model_json_round_trips() {
        let rows = model_sweep(
            Topology::crossbar4(),
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let doc = heterowire_telemetry::json::parse(&format_model_json(&rows))
            .expect("model JSON parses");
        let out = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(out.len(), 10);
        for (obj, row) in out.iter().zip(&rows) {
            // Descriptions contain commas and survive JSON escaping.
            assert_eq!(obj.get("link").unwrap().as_str(), Some(&*row.description));
            assert_eq!(
                obj.get("at_10").unwrap().get("ipc").unwrap().as_num(),
                Some(row.at_10.ipc)
            );
        }
    }

    #[test]
    fn suite_json_embeds_full_results() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let suite = run_suite(
            &cfg,
            RunScale {
                window: 1_000,
                warmup: 200,
            },
        );
        let doc = heterowire_telemetry::json::parse(&format_suite_json(&[("base", &suite)]))
            .expect("suite JSON parses");
        let suites = doc.get("suites").unwrap().as_arr().unwrap();
        assert_eq!(suites.len(), 1);
        let runs = suites[0].get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 23);
        let first = &runs[0];
        assert_eq!(
            first.get("benchmark").unwrap().as_str(),
            Some(suite.names[0])
        );
        assert_eq!(
            first
                .get("results")
                .unwrap()
                .get("instructions")
                .unwrap()
                .as_num(),
            Some(suite.runs[0].instructions as f64)
        );
    }

    #[test]
    fn table2_json_and_csv_agree() {
        let rows = table2();
        let csv = format_table2_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        let doc = heterowire_telemetry::json::parse(&format_table2_json(&rows)).expect("parses");
        assert_eq!(doc.get("rows").unwrap().as_arr().unwrap().len(), rows.len());
    }

    #[test]
    fn artifact_paths_parsing() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(
            artifact_paths_from(&to_args(&["t"])),
            Ok(ArtifactPaths::default())
        );
        let both =
            artifact_paths_from(&to_args(&["t", "--csv", "a.csv", "--json", "a.json"])).unwrap();
        assert_eq!(both.csv, Some(std::path::PathBuf::from("a.csv")));
        assert_eq!(both.json, Some(std::path::PathBuf::from("a.json")));
        assert!(artifact_paths_from(&to_args(&["t", "--json"])).is_err());
    }

    #[test]
    fn csv_path_parsing() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(csv_path_from(&to_args(&["table3"])), Ok(None));
        assert_eq!(
            csv_path_from(&to_args(&["table3", "--csv", "out.csv"])),
            Ok(Some(std::path::PathBuf::from("out.csv")))
        );
        // `--csv` as the last argument is an error, not a silent None.
        assert!(csv_path_from(&to_args(&["table3", "--csv"])).is_err());
    }

    #[test]
    fn model_set_from_args() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(ModelSet::from_args(&to_args(&["table3"]))
            .unwrap()
            .is_none());
        let set = ModelSet::from_args(&to_args(&[
            "table3",
            "--model",
            "X",
            "--model",
            "custom:b144+pw288+l36",
        ]))
        .unwrap()
        .expect("two models");
        assert_eq!(set.len(), 2);
        assert_eq!(set.specs()[0].name(), "X");
        assert_eq!(set.specs()[1].name(), "custom:b144+pw288+l36");
        // Both tokens name the same link.
        assert_eq!(set.specs()[0].link(), set.specs()[1].link());
        // Malformed flags are errors, not silent defaults.
        assert!(ModelSet::from_args(&to_args(&["t", "--model"])).is_err());
        assert!(ModelSet::from_args(&to_args(&["t", "--model", "XI"])).is_err());
        assert!(ModelSet::from_args(&to_args(&["t", "--model", "custom:l36"])).is_err());
    }

    #[test]
    fn custom_spec_sweep_matches_preset() {
        // `custom:b144` is the same machine as Model I; a two-model sweep
        // of the pair must produce identical runs.
        let set = ModelSet::new(vec![
            ModelSpec::parse("I").unwrap(),
            ModelSpec::parse("custom:b144").unwrap(),
        ])
        .unwrap();
        let scale = RunScale {
            window: 800,
            warmup: 200,
        };
        let suites = sweep_runs_set(&set, Topology::crossbar4(), scale, 4);
        assert_eq!(suites.len(), 2);
        assert_eq!(suites[0].runs, suites[1].runs, "bit-identical results");
        let rows = rows_from_runs_set(&set, &suites);
        assert_eq!(rows[0].at_10.ipc, rows[1].at_10.ipc);
        assert_eq!(rows[1].model.name(), "custom:b144");
    }

    #[test]
    fn metric_rows_round_trip_csv_and_json() {
        let rows = vec![
            MetricRow::new("ls-bits", "8", "false_dep_pct", 7.25),
            MetricRow::new("balance", "paper (both)", "am_ipc", 2.5),
        ];
        let csv = format_metric_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("ls-bits,8,false_dep_pct,7.25"));
        let doc = heterowire_telemetry::json::parse(&format_metric_json(&rows)).expect("parses");
        let arr = doc.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("label").unwrap().as_str(), Some("paper (both)"));
        assert_eq!(arr[0].get("value").unwrap().as_num(), Some(7.25));
    }

    #[test]
    fn topology_from_args_parsing() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(topology_from_args(&to_args(&["policy_ab"]))
            .unwrap()
            .is_none());
        // Presets and their equivalent compact specs resolve identically.
        let resolve = |token: &str| {
            topology_from_args(&to_args(&["t", "--topology", token]))
                .unwrap()
                .expect("flag present")
        };
        assert_eq!(resolve("hier16").topology(), Topology::hier16());
        assert_eq!(resolve("crossbar4").topology(), Topology::crossbar4());
        assert_eq!(resolve("ring:4x4").topology(), Topology::hier16());
        assert_eq!(resolve("xbar:8").topology().clusters(), 8);
        // The preset form keeps its preset identity; the spec form does not.
        assert_eq!(resolve("hier16").name(), "hier16");
        assert_eq!(resolve("ring:4x4").name(), "ring:4x4");
        // Malformed tokens fail loudly with the shared parser's message.
        assert!(topology_from_args(&to_args(&["t", "--topology", "mesh"]))
            .unwrap_err()
            .contains("unknown topology"));
        assert!(
            topology_from_args(&to_args(&["t", "--topology", "ring:2x4"]))
                .unwrap_err()
                .contains("quads")
        );
        assert!(topology_from_args(&to_args(&["t", "--topology"])).is_err());
        assert!(topology_from_args(&to_args(&[
            "t",
            "--topology",
            "hier16",
            "--topology",
            "hier16"
        ]))
        .is_err());
    }

    #[test]
    fn topology_set_collects_repeated_flags() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(TopologySet::from_args(&to_args(&["t"])).unwrap().is_none());
        let set = TopologySet::from_args(&to_args(&[
            "t",
            "--topology",
            "crossbar4",
            "--topology",
            "ring:6x2",
        ]))
        .unwrap()
        .expect("two topologies");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.specs()[0].name(), "crossbar4");
        assert_eq!(set.specs()[1].name(), "ring:6x2");
        assert_eq!(set.specs()[1].topology().clusters(), 12);
        assert!(TopologySet::new(Vec::new()).is_err());
        // Shapes past the processor's old inline capacity now parse (the
        // per-value structures spill); the simulator-wide cap still
        // refuses at parse time, not by a panic mid-sweep, with the
        // shared checker's message (cap + offending count).
        let wide = TopologySet::from_args(&to_args(&["t", "--topology", "ring:6x4"]))
            .unwrap()
            .expect("one topology");
        assert_eq!(wide.specs()[0].topology().clusters(), 24);
        let err = TopologySet::from_args(&to_args(&["t", "--topology", "xbar:65"])).unwrap_err();
        assert!(err.contains("65 clusters"), "{err}");
        assert!(err.contains("at most 64"), "{err}");
    }

    #[test]
    fn topology_token_resolves_spec_files() {
        let dir = std::env::temp_dir().join(format!("hw-topo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.topo");
        std::fs::write(
            &path,
            "# asymmetric ring\nshape = ring\nquads = 6\nper_quad = 2\nhop_len = 3\n",
        )
        .unwrap();
        let spec = parse_topology_token(path.to_str().unwrap()).unwrap();
        assert_eq!(spec, TopologySpec::parse("ring:6x2@hop3").unwrap());
        // A malformed file reports the file-level error, prefixed with the path.
        std::fs::write(&path, "shape = torus\n").unwrap();
        let err = parse_topology_token(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("spec file") && err.contains("torus"), "{err}");
        // A missing file that is not a preset or spec names all three forms.
        let err = parse_topology_token("no-such-file.topo").unwrap_err();
        assert!(err.contains("spec file"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policies_from_args_parsing() {
        let to_args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(policies_from_args(&to_args(&["policy_ab"]))
            .unwrap()
            .is_none());
        let got = policies_from_args(&to_args(&["t", "--policy", "paper,oracle"]))
            .unwrap()
            .expect("two policies");
        assert_eq!(got, vec![PolicyKind::Paper, PolicyKind::Oracle]);
        // Repeated flags accumulate.
        let got = policies_from_args(&to_args(&["t", "--policy", "spray", "--policy", "pwfirst"]))
            .unwrap()
            .unwrap();
        assert_eq!(got, vec![PolicyKind::Spray, PolicyKind::PwFirst]);
        // Malformed forms are errors, not silent defaults.
        assert!(policies_from_args(&to_args(&["t", "--policy"])).is_err());
        assert!(policies_from_args(&to_args(&["t", "--policy", "greedy"])).is_err());
        assert!(policies_from_args(&to_args(&["t", "--policy", "paper,paper"])).is_err());
    }

    #[test]
    fn policy_support_check_names_the_missing_plane() {
        let b_only = ModelSpec::parse("custom:b144").unwrap();
        let x = ModelSpec::parse("X").unwrap();
        for pk in PolicyKind::ALL {
            assert!(pk.check_supported(&x).is_ok(), "{} on X", pk.name());
        }
        assert!(PolicyKind::Paper.check_supported(&b_only).is_ok());
        assert!(PolicyKind::Oracle.check_supported(&b_only).is_ok());
        let err = PolicyKind::Criticality
            .check_supported(&b_only)
            .unwrap_err();
        assert!(
            err.contains("criticality") && err.contains("L-Wires"),
            "{err}"
        );
        let err = PolicyKind::PwFirst.check_supported(&b_only).unwrap_err();
        assert!(err.contains("pwfirst") && err.contains("PW-Wires"), "{err}");
    }

    #[test]
    fn policy_race_rows_cover_the_grid() {
        let models = ModelSet::new(vec![ModelSpec::parse("X").unwrap()]).unwrap();
        let policies = [PolicyKind::Paper, PolicyKind::Oracle];
        let scale = RunScale {
            window: 800,
            warmup: 200,
        };
        let suites = policy_sweep_runs(&models, &policies, Topology::crossbar4(), scale, 4);
        assert_eq!(suites.len(), 1);
        assert_eq!(suites[0].len(), 2);
        assert_eq!(suites[0][0].runs.len(), 23);
        // The paper lane is the exact default path.
        let direct = run_suite_on(
            &ProcessorConfig::for_model_spec(&models.specs()[0], Topology::crossbar4()),
            scale,
            4,
        );
        assert_eq!(suites[0][0].runs, direct.runs, "bit-identical paper row");
        let rows = policy_metric_rows(&models.specs()[0], &policies, &suites[0]);
        assert_eq!(rows.len(), 2 * 7, "7 metrics per policy");
        assert!(rows
            .iter()
            .all(|r| r.section == "X" && (r.label == "paper" || r.label == "oracle")));
        // Traffic shares per policy sum to ~100% (W is never used by the
        // default processor; every transfer lands on B/PW/L).
        for label in ["paper", "oracle"] {
            let share: f64 = rows
                .iter()
                .filter(|r| r.label == label && r.metric.starts_with("traffic_"))
                .map(|r| r.value)
                .sum();
            assert!((share - 100.0).abs() < 1e-6, "{label}: {share}");
        }
        // The baseline policy's ED2 is 100% of itself by construction.
        let base_ed2 = rows
            .iter()
            .find(|r| r.label == "paper" && r.metric == "ed2_10_pct")
            .unwrap();
        assert!((base_ed2.value - 100.0).abs() < 1e-9);
        let table = format_policy_table(&models.specs()[0], &policies, &suites[0]);
        assert!(table.contains("paper") && table.contains("oracle"));
    }

    #[test]
    fn suite_executor_matches_serial() {
        let cfg = ProcessorConfig::for_model(InterconnectModel::IV, Topology::crossbar4());
        let scale = RunScale {
            window: 800,
            warmup: 200,
        };
        let serial = run_suite_on(&cfg, scale, 1);
        let parallel = run_suite_on(&cfg, scale, 4);
        assert_eq!(serial.names, parallel.names);
        assert_eq!(serial.runs, parallel.runs, "bit-identical results");
    }
}
