//! Timing benches over the wire-physics substrate: Table-2 derivation and
//! the power-optimal repeater search.

use heterowire_bench::timing::bench;
use heterowire_wires::classes::{derive_relative_delays, table2};
use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};

fn main() {
    println!("{}", bench("wires/table2_derivation", 50, table2).report());
    println!(
        "{}",
        bench("wires/relative_delays", 50, derive_relative_delays).report()
    );
    let g = WireGeometry::minimum_45nm();
    let d = DeviceParams::node_45nm();
    println!(
        "{}",
        bench("wires/power_optimal_search", 50, || {
            RepeatedWire::power_optimal_for_penalty(g, d, 1.2)
        })
        .report()
    );
}
