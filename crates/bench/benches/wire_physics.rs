//! Criterion benches over the wire-physics substrate: Table-2 derivation
//! and the power-optimal repeater search.

use criterion::{criterion_group, criterion_main, Criterion};

use heterowire_wires::classes::{derive_relative_delays, table2};
use heterowire_wires::geometry::WireGeometry;
use heterowire_wires::repeater::{DeviceParams, RepeatedWire};

fn bench_wire_physics(c: &mut Criterion) {
    c.bench_function("table2_derivation", |b| {
        b.iter(|| std::hint::black_box(table2()))
    });
    c.bench_function("relative_delays", |b| {
        b.iter(|| std::hint::black_box(derive_relative_delays()))
    });
    c.bench_function("power_optimal_search", |b| {
        let g = WireGeometry::minimum_45nm();
        let d = DeviceParams::node_45nm();
        b.iter(|| {
            std::hint::black_box(RepeatedWire::power_optimal_for_penalty(g, d, 1.2))
        })
    });
}

criterion_group!(benches, bench_wire_physics);
criterion_main!(benches);
