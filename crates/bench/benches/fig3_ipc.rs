//! Criterion wrapper around the Figure-3 experiment: times one
//! baseline-vs-L-Wires benchmark pair at reduced scale and reports the IPCs
//! through Criterion's output. The full figure is produced by the `fig3`
//! binary; this bench guards against simulator performance regressions on
//! the exact code path the figure uses.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn bench_fig3(c: &mut Criterion) {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.window + scale.warmup));
    for model in [InterconnectModel::I, InterconnectModel::VII] {
        g.bench_function(format!("gzip_model_{}", model.name()), |b| {
            b.iter(|| {
                let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
                let r = run_one(cfg, by_name("gzip").expect("gzip exists"), scale);
                std::hint::black_box(r.ipc())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
