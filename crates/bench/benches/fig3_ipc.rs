//! Timing wrapper around the Figure-3 experiment: times one
//! baseline-vs-L-Wires benchmark pair at reduced scale. The full figure is
//! produced by the `fig3` binary; this bench guards against simulator
//! performance regressions on the exact code path the figure uses.

use heterowire_bench::timing::bench;
use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn main() {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    for model in [InterconnectModel::I, InterconnectModel::VII] {
        let s = bench(&format!("fig3/gzip_model_{}", model.name()), 10, || {
            let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
            let r = run_one(cfg, by_name("gzip").expect("gzip exists"), scale);
            r.ipc()
        });
        println!("{}", s.report());
    }
}
