//! Criterion wrapper around the Table-3 code path: times single-benchmark
//! runs of the extreme 4-cluster models (homogeneous baseline, PW-only,
//! full heterogeneous). The full table is produced by the `table3` binary.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn bench_table3(c: &mut Criterion) {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.window + scale.warmup));
    for model in [
        InterconnectModel::I,
        InterconnectModel::II,
        InterconnectModel::X,
    ] {
        g.bench_function(format!("gcc_model_{}", model.name()), |b| {
            b.iter(|| {
                let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
                let r = run_one(cfg, by_name("gcc").expect("gcc exists"), scale);
                std::hint::black_box((r.ipc(), r.net.dynamic_energy))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
