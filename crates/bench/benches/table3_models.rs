//! Timing wrapper around the Table-3 code path: times single-benchmark
//! runs of the extreme 4-cluster models (homogeneous baseline, PW-only,
//! full heterogeneous). The full table is produced by the `table3` binary.

use heterowire_bench::timing::bench;
use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn main() {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    for model in [
        InterconnectModel::I,
        InterconnectModel::II,
        InterconnectModel::X,
    ] {
        let s = bench(&format!("table3/gcc_model_{}", model.name()), 10, || {
            let cfg = ProcessorConfig::for_model(model, Topology::crossbar4());
            let r = run_one(cfg, by_name("gcc").expect("gcc exists"), scale);
            (r.ipc(), r.net.dynamic_energy)
        });
        println!("{}", s.report());
    }
}
