//! Head-to-head timing of the indexed O(events) network engine against the
//! retained scan-based reference engine (`ReferenceNetwork`), on traffic
//! shapes that bracket what the model sweep produces: light steady traffic
//! (pending stays tiny, ticks dominate), a deep contended backlog (the
//! arbitration loop dominates), and a sparse long-latency stream (delivery
//! bookkeeping dominates). Both engines run the identical send stream, so
//! any wall-clock gap is pure engine constant, not host noise across
//! binaries.

use heterowire_bench::timing::bench;
use heterowire_interconnect::{
    MessageKind, NetConfig, Network, Node, ReferenceNetwork, Topology, Transfer, TransferId,
};
use heterowire_rng::SmallRng;
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

fn full_link() -> LinkComposition {
    LinkComposition::new(vec![
        WirePlane::new(WireClass::B, 144),
        WirePlane::new(WireClass::Pw, 288),
        WirePlane::new(WireClass::L, 36),
    ])
    .unwrap()
}

fn transfer(rng: &mut SmallRng, clusters: usize) -> Transfer {
    let node = |rng: &mut SmallRng| {
        if rng.gen_bool(0.2) {
            Node::Cache
        } else {
            Node::Cluster(rng.gen_range(0..clusters))
        }
    };
    let src = node(rng);
    let mut dst = node(rng);
    while dst == src {
        dst = node(rng);
    }
    let (class, kind) = match rng.gen_range(0..4u32) {
        0 => (WireClass::B, MessageKind::FullAddress),
        1 => (WireClass::Pw, MessageKind::FullAddress),
        2 => (WireClass::L, MessageKind::PartialAddress),
        _ => (WireClass::L, MessageKind::SplitValue),
    };
    Transfer {
        src,
        dst,
        class,
        kind,
    }
}

/// Drives one engine over `cycles` cycles with `sends_per_cycle` expected
/// random sends per cycle (Bernoulli per slot, so pending depth varies),
/// ticking and draining every cycle like the processor kernel does.
macro_rules! drive {
    ($net:expr, $seed:expr, $cycles:expr, $send_slots:expr, $p_send:expr) => {{
        let mut rng = SmallRng::seed_from_u64($seed);
        let mut buf: Vec<(TransferId, Transfer)> = Vec::new();
        let mut delivered = 0usize;
        for cycle in 1..=$cycles {
            for _ in 0..$send_slots {
                if rng.gen_bool($p_send) {
                    let t = transfer(&mut rng, 4);
                    $net.send(t, cycle - 1);
                }
            }
            if $net.pending_len() > 0 {
                $net.tick(cycle);
            }
            $net.take_delivered_into(cycle, &mut buf);
            delivered += buf.len();
            std::hint::black_box($net.next_event_cycle(cycle));
        }
        delivered
    }};
}

fn main() {
    let config = || NetConfig::new(Topology::crossbar4(), full_link());
    let samples = [
        // Sweep-shaped: ~0.4 sends/cycle, pending rarely exceeds a handful.
        bench("net/indexed_light_200k_cycles", 10, || {
            let mut net = Network::new(config());
            drive!(net, 7, 200_000u64, 2, 0.2)
        }),
        bench("net/reference_light_200k_cycles", 10, || {
            let mut net = ReferenceNetwork::new(config());
            drive!(net, 7, 200_000u64, 2, 0.2)
        }),
        // Contended: 6 expected sends/cycle keeps a deep backlog queued.
        bench("net/indexed_contended_20k_cycles", 10, || {
            let mut net = Network::new(config());
            drive!(net, 11, 20_000u64, 8, 0.75)
        }),
        bench("net/reference_contended_20k_cycles", 10, || {
            let mut net = ReferenceNetwork::new(config());
            drive!(net, 11, 20_000u64, 8, 0.75)
        }),
        // Sparse: one send every ~50 cycles; delivery/idle bookkeeping only.
        bench("net/indexed_sparse_1m_cycles", 10, || {
            let mut net = Network::new(config());
            drive!(net, 13, 1_000_000u64, 1, 0.02)
        }),
        bench("net/reference_sparse_1m_cycles", 10, || {
            let mut net = ReferenceNetwork::new(config());
            drive!(net, 13, 1_000_000u64, 1, 0.02)
        }),
    ];
    for s in &samples {
        println!("{}", s.report());
    }
}
