//! Timing benches over individual simulator components: trace generation,
//! branch prediction, cache/LSQ models and the network engine.

use heterowire_bench::timing::bench;
use heterowire_frontend::{Combined, DirectionPredictor};
use heterowire_interconnect::{MessageKind, NetConfig, Network, Node, Topology, Transfer};
use heterowire_memory::{Cache, LoadStoreQueue};
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

fn main() {
    let samples = [
        bench("trace/generate_10k_gcc", 20, || {
            let gen = TraceGenerator::new(by_name("gcc").unwrap(), 1);
            gen.take(10_000).count()
        }),
        {
            let mut p = Combined::table1();
            bench("predictor/combined_10k", 20, move || {
                let mut correct = 0u32;
                for i in 0..10_000u64 {
                    let pc = 0x1000 + (i % 256) * 4;
                    let taken = (i / 7) % 3 != 0;
                    if p.predict(pc) == taken {
                        correct += 1;
                    }
                    p.update(pc, taken);
                }
                correct
            })
        },
        {
            let mut cache = Cache::l1d_table1();
            bench("cache/l1d_10k_accesses", 20, move || {
                let mut hits = 0u32;
                for i in 0..10_000u64 {
                    if cache.access((i * 4391) % (1 << 20)) {
                        hits += 1;
                    }
                }
                hits
            })
        },
        bench("lsq/1k_pairs", 20, || {
            let mut lsq = LoadStoreQueue::new(8);
            for i in 0..1_000u64 {
                let s = i * 2;
                lsq.insert(s, true);
                lsq.insert(s + 1, false);
                lsq.arrive_full(s, 0x1000 + i * 64, i);
                lsq.arrive_full(s + 1, 0x9000 + i * 64, i);
                std::hint::black_box(lsq.load_status(s + 1, i, true));
                lsq.retire_through(s + 1);
            }
        }),
        bench("network/crossbar_4k_transfers", 20, || {
            let link = LinkComposition::new(vec![WirePlane::new(WireClass::B, 144)]).unwrap();
            let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
            let mut delivered = 0usize;
            let mut buf = Vec::new();
            for cycle in 1..=1_000u64 {
                for src in 0..4usize {
                    net.send(
                        Transfer {
                            src: Node::Cluster(src),
                            dst: Node::Cache,
                            class: WireClass::B,
                            kind: MessageKind::FullAddress,
                        },
                        cycle - 1,
                    );
                }
                net.tick(cycle);
                net.take_delivered_into(cycle, &mut buf);
                delivered += buf.len();
            }
            delivered
        }),
    ];
    for s in &samples {
        println!("{}", s.report());
    }
}
