//! Criterion benches over individual simulator components: trace
//! generation, branch prediction, cache/LSQ models and the network engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use heterowire_frontend::{Combined, DirectionPredictor};
use heterowire_interconnect::{
    MessageKind, NetConfig, Network, Node, Topology, Transfer,
};
use heterowire_memory::{Cache, LoadStoreQueue};
use heterowire_trace::{by_name, TraceGenerator};
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

fn bench_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("generate_10k_gcc", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(by_name("gcc").unwrap(), 1);
            std::hint::black_box(gen.take(10_000).count())
        })
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("combined_10k", |b| {
        let mut p = Combined::table1();
        b.iter(|| {
            let mut correct = 0u32;
            for i in 0..10_000u64 {
                let pc = 0x1000 + (i % 256) * 4;
                let taken = (i / 7) % 3 != 0;
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            std::hint::black_box(correct)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l1d_10k_accesses", |b| {
        let mut cache = Cache::l1d_table1();
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..10_000u64 {
                if cache.access((i * 4391) % (1 << 20)) {
                    hits += 1;
                }
            }
            std::hint::black_box(hits)
        })
    });
    g.finish();
}

fn bench_lsq(c: &mut Criterion) {
    c.bench_function("lsq_1k_pairs", |b| {
        b.iter(|| {
            let mut lsq = LoadStoreQueue::new(8);
            for i in 0..1_000u64 {
                let s = i * 2;
                lsq.insert(s, true);
                lsq.insert(s + 1, false);
                lsq.arrive_full(s, 0x1000 + i * 64, i);
                lsq.arrive_full(s + 1, 0x9000 + i * 64, i);
                std::hint::black_box(lsq.load_status(s + 1, i, true));
                lsq.retire_through(s + 1);
            }
        })
    });
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("crossbar_4k_transfers", |b| {
        b.iter(|| {
            let link = LinkComposition::new(vec![WirePlane::new(WireClass::B, 144)]);
            let mut net = Network::new(NetConfig::new(Topology::crossbar4(), link));
            for cycle in 1..=1_000u64 {
                for src in 0..4usize {
                    net.send(
                        Transfer {
                            src: Node::Cluster(src),
                            dst: Node::Cache,
                            class: WireClass::B,
                            kind: MessageKind::FullAddress,
                        },
                        cycle - 1,
                    );
                }
                net.tick(cycle);
                std::hint::black_box(net.take_delivered(cycle).len());
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trace,
    bench_predictor,
    bench_cache,
    bench_lsq,
    bench_network
);
criterion_main!(benches);
