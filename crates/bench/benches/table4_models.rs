//! Criterion wrapper around the Table-4 code path: times the 16-cluster
//! hierarchical topology (the paper's most interconnect-sensitive
//! configuration). The full table is produced by the `table4` binary.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn bench_table4(c: &mut Criterion) {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scale.window + scale.warmup));
    for model in [InterconnectModel::I, InterconnectModel::IX] {
        g.bench_function(format!("swim_16cl_model_{}", model.name()), |b| {
            b.iter(|| {
                let cfg = ProcessorConfig::for_model(model, Topology::hier16());
                let r = run_one(cfg, by_name("swim").expect("swim exists"), scale);
                std::hint::black_box(r.ipc())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
