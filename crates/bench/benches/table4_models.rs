//! Timing wrapper around the Table-4 code path: times the 16-cluster
//! hierarchical topology (the paper's most interconnect-sensitive
//! configuration). The full table is produced by the `table4` binary.

use heterowire_bench::timing::bench;
use heterowire_bench::{run_one, RunScale};
use heterowire_core::{InterconnectModel, ProcessorConfig};
use heterowire_interconnect::Topology;
use heterowire_trace::by_name;

fn main() {
    let scale = RunScale {
        window: 5_000,
        warmup: 1_000,
    };
    for model in [InterconnectModel::I, InterconnectModel::IX] {
        let s = bench(
            &format!("table4/swim_16cl_model_{}", model.name()),
            10,
            || {
                let cfg = ProcessorConfig::for_model(model, Topology::hier16());
                let r = run_one(cfg, by_name("swim").expect("swim exists"), scale);
                r.ipc()
            },
        );
        println!("{}", s.report());
    }
}
