//! Randomized property-style tests over the workload generator: structural
//! invariants that must hold for any profile and seed (std-only).

use heterowire_rng::SmallRng;

use heterowire_isa::{OpClass, RegClass};
use heterowire_trace::{spec2000, BenchmarkProfile, TraceGenerator};

/// Draws a benchmark profile and a fresh seed for each case.
fn arb_case(rng: &mut SmallRng) -> (BenchmarkProfile, u64) {
    let idx = rng.gen_range(0usize..23);
    (spec2000().swap_remove(idx), rng.gen())
}

const CASES: usize = 24;

/// Micro-op structural invariants hold for every generated op: memory ops
/// carry addresses, branches outcomes, dests match the op class.
#[test]
fn ops_are_well_formed() {
    let mut rng = SmallRng::seed_from_u64(0x7ace_0001);
    for _ in 0..CASES {
        let (profile, seed) = arb_case(&mut rng);
        for op in TraceGenerator::new(profile, seed).take(2_000) {
            match op.op() {
                OpClass::Load => {
                    assert!(op.addr().is_some());
                    assert!(op.dest().is_some());
                }
                OpClass::Store => {
                    assert!(op.addr().is_some());
                    assert!(op.dest().is_none());
                }
                OpClass::Branch => {
                    assert!(op.branch().is_some());
                    assert!(op.dest().is_none());
                }
                c if c.is_fp() => {
                    assert_eq!(op.dest().unwrap().class(), RegClass::Fp);
                }
                _ => {
                    assert_eq!(op.dest().unwrap().class(), RegClass::Int);
                }
            }
            // Addresses are 8-byte aligned (the generator's word model).
            if let Some(a) = op.addr() {
                assert_eq!(a % 8, 0);
            }
        }
    }
}

/// Sequence numbers are dense and ordered for any profile/seed.
#[test]
fn seqs_are_dense() {
    let mut rng = SmallRng::seed_from_u64(0x7ace_0002);
    for _ in 0..CASES {
        let (profile, seed) = arb_case(&mut rng);
        for (i, op) in TraceGenerator::new(profile, seed).take(500).enumerate() {
            assert_eq!(op.seq(), i as u64);
        }
    }
}

/// Determinism holds for arbitrary seeds.
#[test]
fn determinism() {
    let mut rng = SmallRng::seed_from_u64(0x7ace_0003);
    for _ in 0..CASES {
        let (profile, seed) = arb_case(&mut rng);
        let a: Vec<_> = TraceGenerator::new(profile, seed).take(300).collect();
        let b: Vec<_> = TraceGenerator::new(profile, seed).take(300).collect();
        assert_eq!(a, b);
    }
}

/// Source registers always refer to previously written registers once the
/// write window has warmed up.
#[test]
fn no_dangling_sources() {
    let mut rng = SmallRng::seed_from_u64(0x7ace_0004);
    for _ in 0..CASES {
        let (profile, seed) = arb_case(&mut rng);
        let mut written = std::collections::HashSet::new();
        for op in TraceGenerator::new(profile, seed).take(3_000) {
            if written.len() > 62 {
                for s in op.srcs() {
                    assert!(written.contains(&s), "dangling {s}");
                }
            }
            if let Some(d) = op.dest() {
                written.insert(d);
            }
        }
    }
}

/// The instruction mix converges to the profile for every benchmark.
#[test]
fn mix_tracks_profile() {
    for profile in spec2000() {
        let n = 30_000;
        let mut loads = 0u32;
        let mut branches = 0u32;
        for op in TraceGenerator::new(profile, 1).take(n) {
            match op.op() {
                OpClass::Load => loads += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        assert!(
            (lf - profile.load_frac).abs() < 0.02,
            "{}: load frac {lf}",
            profile.name
        );
        assert!(
            (bf - profile.branch_frac).abs() < 0.02,
            "{}: branch frac {bf}",
            profile.name
        );
    }
}

/// Branch PCs live in their own region, apart from straight-line code.
#[test]
fn branch_pcs_are_disjoint() {
    let mut rng = SmallRng::seed_from_u64(0x7ace_0005);
    for _ in 0..CASES {
        let (profile, seed) = arb_case(&mut rng);
        let mut branch_pcs = std::collections::HashSet::new();
        let mut line_pcs = std::collections::HashSet::new();
        for op in TraceGenerator::new(profile, seed).take(5_000) {
            if op.op() == OpClass::Branch {
                branch_pcs.insert(op.pc());
            } else {
                line_pcs.insert(op.pc());
            }
        }
        assert!(branch_pcs.is_disjoint(&line_pcs));
    }
}
