//! Property-based tests over the workload generator: structural invariants
//! that must hold for any profile and seed.

use proptest::prelude::*;

use heterowire_isa::{OpClass, RegClass};
use heterowire_trace::{spec2000, TraceGenerator};

fn arb_profile() -> impl Strategy<Value = heterowire_trace::BenchmarkProfile> {
    (0usize..23).prop_map(|i| spec2000().swap_remove(i))
}

proptest! {
    /// Micro-op structural invariants hold for every generated op: memory
    /// ops carry addresses, branches outcomes, dests match the op class.
    #[test]
    fn ops_are_well_formed(profile in arb_profile(), seed in any::<u64>()) {
        for op in TraceGenerator::new(profile, seed).take(2_000) {
            match op.op() {
                OpClass::Load => {
                    prop_assert!(op.addr().is_some());
                    prop_assert!(op.dest().is_some());
                }
                OpClass::Store => {
                    prop_assert!(op.addr().is_some());
                    prop_assert!(op.dest().is_none());
                }
                OpClass::Branch => {
                    prop_assert!(op.branch().is_some());
                    prop_assert!(op.dest().is_none());
                }
                c if c.is_fp() => {
                    prop_assert_eq!(op.dest().unwrap().class(), RegClass::Fp);
                }
                _ => {
                    prop_assert_eq!(op.dest().unwrap().class(), RegClass::Int);
                }
            }
            // Addresses are 8-byte aligned (the generator's word model).
            if let Some(a) = op.addr() {
                prop_assert_eq!(a % 8, 0);
            }
        }
    }

    /// Sequence numbers are dense and ordered for any profile/seed.
    #[test]
    fn seqs_are_dense(profile in arb_profile(), seed in any::<u64>()) {
        for (i, op) in TraceGenerator::new(profile, seed).take(500).enumerate() {
            prop_assert_eq!(op.seq(), i as u64);
        }
    }

    /// Determinism holds for arbitrary seeds.
    #[test]
    fn determinism(profile in arb_profile(), seed in any::<u64>()) {
        let a: Vec<_> = TraceGenerator::new(profile.clone(), seed).take(300).collect();
        let b: Vec<_> = TraceGenerator::new(profile, seed).take(300).collect();
        prop_assert_eq!(a, b);
    }

    /// Source registers always refer to previously written registers once
    /// the write window has warmed up.
    #[test]
    fn no_dangling_sources(profile in arb_profile(), seed in any::<u64>()) {
        let mut written = std::collections::HashSet::new();
        for op in TraceGenerator::new(profile, seed).take(3_000) {
            if written.len() > 62 {
                for s in op.srcs() {
                    prop_assert!(written.contains(&s), "dangling {s}");
                }
            }
            if let Some(d) = op.dest() {
                written.insert(d);
            }
        }
    }

    /// The instruction mix converges to the profile for every benchmark.
    #[test]
    fn mix_tracks_profile(profile in arb_profile()) {
        let n = 30_000;
        let mut loads = 0u32;
        let mut branches = 0u32;
        for op in TraceGenerator::new(profile.clone(), 1).take(n) {
            match op.op() {
                OpClass::Load => loads += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let lf = loads as f64 / n as f64;
        let bf = branches as f64 / n as f64;
        prop_assert!((lf - profile.load_frac).abs() < 0.02, "{lf}");
        prop_assert!((bf - profile.branch_frac).abs() < 0.02, "{bf}");
    }

    /// Branch PCs live in their own region, apart from straight-line code.
    #[test]
    fn branch_pcs_are_disjoint(profile in arb_profile(), seed in any::<u64>()) {
        let mut branch_pcs = std::collections::HashSet::new();
        let mut line_pcs = std::collections::HashSet::new();
        for op in TraceGenerator::new(profile, seed).take(5_000) {
            if op.op() == OpClass::Branch {
                branch_pcs.insert(op.pc());
            } else {
                line_pcs.insert(op.pc());
            }
        }
        prop_assert!(branch_pcs.is_disjoint(&line_pcs));
    }
}
