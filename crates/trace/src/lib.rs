#![warn(missing_docs)]
//! # heterowire-trace
//!
//! Synthetic SPEC2000-like workloads for the `heterowire` simulator.
//!
//! The HPCA-11 2005 paper simulates 23 SPEC2000 programs over SimPoint
//! windows. Neither the binaries nor an Alpha functional front-end can ship
//! with this reproduction, so this crate substitutes **statistically
//! calibrated synthetic traces**: each program is a
//! [`profile::BenchmarkProfile`] and [`generator::TraceGenerator`] expands
//! it into a deterministic, seeded stream of micro-ops with
//!
//! * the program's instruction mix (loads/stores/branches/FP),
//! * geometric register-dependency distances (controls extractable ILP and
//!   inter-cluster communication),
//! * hot/cold/streaming memory address behaviour (drives *real* cache-model
//!   misses rather than pre-labelled ones),
//! * per-site biased branch outcomes (drives *real* predictor mispredicts),
//! * a calibrated fraction of narrow (`0..=1023`) integer results.
//!
//! ```
//! use heterowire_trace::{generator::TraceGenerator, profile, stats::TraceStats};
//!
//! let gen = TraceGenerator::new(profile::by_name("swim").unwrap(), 0xfeed);
//! let stats = TraceStats::from_ops(gen.take(10_000));
//! assert!(stats.mem_frac() > 0.3);
//! ```

pub mod generator;
pub mod profile;
pub mod stats;

pub use generator::TraceGenerator;
pub use profile::{by_name, spec2000, BenchmarkProfile};
pub use stats::TraceStats;
