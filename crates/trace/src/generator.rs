//! Deterministic synthesis of instruction streams from a
//! [`BenchmarkProfile`].
//!
//! The generator is an infinite, seeded iterator of
//! [`heterowire_isa::MicroOp`]s. Register dependences are drawn from a
//! geometric distance distribution over recently written registers, memory
//! addresses come from a hot-set / cold-set / sequential-stream mix, and
//! branch outcomes follow per-site biases — so downstream cache and branch
//! predictor models observe realistic locality rather than pre-baked
//! hit/miss labels.

use std::collections::VecDeque;

use heterowire_rng::SmallRng;

use heterowire_isa::{ArchReg, MicroOp, OpClass, RegClass};

use crate::profile::BenchmarkProfile;

/// How many recently written registers to remember per class when sampling
/// dependences.
const RECENT_WINDOW: usize = 64;
/// Number of concurrent sequential access streams for array-walking codes.
const NUM_STREAMS: usize = 8;
/// Size of the static code footprint of straight-line (non-branch) code.
/// Small enough that static sites repeat many times within a simulation
/// window — hot loops dominate dynamic instruction counts — so per-site
/// predictors (narrow-width, branch direction) can learn.
const CODE_FOOTPRINT: u64 = 4 * 1024;
/// Base address of the branch-site PC region (kept apart from the
/// straight-line region so branch sites never alias narrow-value sites).
const BRANCH_REGION: u64 = 0x0080_0000;

/// A deterministic, infinite micro-op stream for one benchmark profile.
///
/// # Examples
///
/// ```
/// use heterowire_trace::generator::TraceGenerator;
/// use heterowire_trace::profile::by_name;
///
/// let mut gen = TraceGenerator::new(by_name("gzip").unwrap(), 42);
/// let window: Vec<_> = gen.by_ref().take(1000).collect();
/// assert_eq!(window.len(), 1000);
/// // Same profile + seed => identical stream.
/// let again: Vec<_> = TraceGenerator::new(by_name("gzip").unwrap(), 42)
///     .take(1000)
///     .collect();
/// assert_eq!(window, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    rng: SmallRng,
    seq: u64,
    pc: u64,
    recent_int: VecDeque<ArchReg>,
    recent_fp: VecDeque<ArchReg>,
    int_rr: u8,
    fp_rr: u8,
    branch_bias_taken: Vec<bool>,
    streams: Vec<u64>,
    next_stream: usize,
    cold_ptr: u64,
}

impl TraceGenerator {
    /// Creates a generator for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid benchmark profile: {e}");
        }
        // Mix the program name into the seed so each benchmark gets an
        // independent stream even under a shared experiment seed.
        let name_hash = profile.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let mut rng = SmallRng::seed_from_u64(seed ^ name_hash);
        let branch_bias_taken = (0..profile.branch_sites)
            .map(|_| rng.gen_bool(0.5))
            .collect();
        // Stagger stream starting points by distinct cache-line and page
        // offsets so concurrent streams do not conflict-miss in the same
        // cache sets (real array bases are not set-aligned).
        let streams = (0..NUM_STREAMS as u64)
            .map(|i| {
                0x4000_0000 + i * (profile.cold_working_set / NUM_STREAMS as u64) + i * (4096 + 64)
            })
            .collect();
        TraceGenerator {
            profile,
            rng,
            seq: 0,
            pc: 0x0040_0000,
            recent_int: VecDeque::with_capacity(RECENT_WINDOW),
            recent_fp: VecDeque::with_capacity(RECENT_WINDOW),
            int_rr: 1,
            fp_rr: 1,
            branch_bias_taken,
            streams,
            next_stream: 0,
            cold_ptr: 0x8000_0000,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Samples an operation class from the profile's instruction mix.
    fn sample_op(&mut self) -> OpClass {
        let p = &self.profile;
        let mut x: f64 = self.rng.gen();
        let steps = [
            (p.load_frac, OpClass::Load),
            (p.store_frac, OpClass::Store),
            (p.branch_frac, OpClass::Branch),
            (p.fp_frac * 0.6, OpClass::FpAlu),
            (p.fp_frac * 0.3, OpClass::FpMul),
            (p.fp_frac * 0.1, OpClass::FpDiv),
            (p.int_mul_frac, OpClass::IntMul),
        ];
        for (frac, op) in steps {
            if x < frac {
                return op;
            }
            x -= frac;
        }
        OpClass::IntAlu
    }

    /// Samples a register written roughly `geometric(1/mean)` instructions
    /// ago from the given class, if any has been written yet. With
    /// probability `independence` the source instead references long-dead
    /// architected state (`None`), breaking the dependence web into
    /// separate chains.
    fn sample_src(&mut self, class: RegClass) -> Option<ArchReg> {
        if self.rng.gen_bool(self.profile.independence) {
            return None;
        }
        let recent = match class {
            RegClass::Int => &self.recent_int,
            RegClass::Fp => &self.recent_fp,
        };
        if recent.is_empty() {
            return None;
        }
        let mean = self.profile.dep_distance_mean;
        let p = (1.0 / mean).clamp(1e-6, 1.0);
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let dist = 1 + ((1.0 - u).ln() / (1.0 - p).ln()) as usize;
        let idx = dist.min(recent.len()) - 1;
        // Index from the most recent end.
        Some(recent[recent.len() - 1 - idx])
    }

    /// Samples the address-base operand of a load/store. Address bases
    /// (stack/frame pointers, globals, induction variables) are long-lived:
    /// they mostly reference architected state; when produced in-window
    /// they are usually old values — except in pointer-chasing codes, where
    /// they are fresh load results.
    fn sample_addr_src(&mut self) -> Option<ArchReg> {
        if self.rng.gen_bool(self.profile.addr_independence) {
            return None;
        }
        if self.rng.gen_bool(self.profile.addr_freshness) {
            return self.sample_src(RegClass::Int);
        }
        // An old value: deep in the recent-write window.
        if self.recent_int.len() < 8 {
            return None;
        }
        let d = self
            .rng
            .gen_range(self.recent_int.len() / 2..self.recent_int.len());
        Some(self.recent_int[self.recent_int.len() - 1 - d])
    }

    fn alloc_dest(&mut self, class: RegClass) -> ArchReg {
        // Round-robin over r1..r30 (r0 conventionally zero, r31 reserved),
        // mirroring compiler register rotation in hot loops.
        match class {
            RegClass::Int => {
                let r = ArchReg::int(self.int_rr);
                self.int_rr = if self.int_rr >= 30 {
                    1
                } else {
                    self.int_rr + 1
                };
                if self.recent_int.len() == RECENT_WINDOW {
                    self.recent_int.pop_front();
                }
                self.recent_int.push_back(r);
                r
            }
            RegClass::Fp => {
                let r = ArchReg::fp(self.fp_rr);
                self.fp_rr = if self.fp_rr >= 30 { 1 } else { self.fp_rr + 1 };
                if self.recent_fp.len() == RECENT_WINDOW {
                    self.recent_fp.pop_front();
                }
                self.recent_fp.push_back(r);
                r
            }
        }
    }

    /// Samples an effective address: sequential stream, hot set or cold set.
    fn sample_addr(&mut self) -> u64 {
        let p = &self.profile;
        if self.rng.gen_bool(p.stream_frac) {
            let s = self.next_stream;
            self.next_stream = (self.next_stream + 1) % NUM_STREAMS;
            let a = self.streams[s];
            // Unit-stride walk. The wrap length is capped at 1 MB per
            // stream so the steady-state stream footprint stays L2-resident
            // (as blocked/tiled numeric loops are); the stagger keeps
            // streams out of each other's L1 sets.
            let lane = p.cold_working_set / NUM_STREAMS as u64;
            let wrap = p.stream_wrap.clamp(8, lane.max(8));
            let base = 0x4000_0000 + s as u64 * lane + s as u64 * (4096 + 64);
            self.streams[s] = base + ((a - base) + 8) % wrap;
            a & !7
        } else if self.rng.gen_bool(p.hot_frac) {
            let off = self.rng.gen_range(0..p.hot_working_set.max(8)) & !7;
            0x1000_0000 + off
        } else {
            // Cold accesses are a pointer walk with occasional random jumps:
            // mostly short strides within the current line/page (real heap
            // traversals have spatial locality), sometimes a far jump that
            // costs a TLB and cache miss.
            if self.rng.gen_bool(0.03) {
                let off = self.rng.gen_range(0..p.cold_working_set.max(64)) & !63;
                self.cold_ptr = 0x8000_0000 + off;
            } else {
                let stride = 8 * self.rng.gen_range(1u64..=3);
                self.cold_ptr = 0x8000_0000
                    + (self.cold_ptr - 0x8000_0000 + stride) % p.cold_working_set.max(64);
            }
            self.cold_ptr & !7
        }
    }

    /// Result values: whether a value is narrow is chiefly a property of
    /// the *static* instruction (a flag computation always produces flags),
    /// with a little per-instance noise. This is what makes the paper's
    /// PC-indexed narrow predictor viable.
    fn sample_result(&mut self, class: RegClass, pc: u64) -> u64 {
        match class {
            RegClass::Int => {
                // Stable per-site hash decides if this is a narrow site.
                let mut h = pc.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= h >> 33;
                let narrow_site = (h % 10_000) as f64 / 10_000.0 < self.profile.narrow_frac;
                let narrow = if narrow_site {
                    self.rng.gen_bool(0.995)
                } else {
                    self.rng.gen_bool(0.005)
                };
                if narrow {
                    self.rng.gen_range(0..=1023)
                } else {
                    // Wide values have log-uniform widths (11..=53 bits), so
                    // width-threshold ablations see a realistic spectrum.
                    let bits = self.rng.gen_range(11u32..=53);
                    self.rng.gen_range((1u64 << (bits - 1))..(1u64 << bits))
                }
            }
            RegClass::Fp => self.rng.gen::<u64>() | (1 << 62),
        }
    }

    fn gen_branch(&mut self, seq: u64) -> MicroOp {
        let site = self.rng.gen_range(0..self.profile.branch_sites);
        let bias = self.branch_bias_taken[site];
        let follows = self.rng.gen_bool(self.profile.branch_bias);
        let taken = if follows { bias } else { !bias };
        // Each site has a stable PC in its own region and a stable target
        // within the straight-line code footprint.
        let pc = BRANCH_REGION + site as u64 * 4;
        let target = (0x0040_0000 + ((site as u64).wrapping_mul(2654435761) % CODE_FOOTPRINT)) & !3;
        let mut b = MicroOp::builder(seq, pc, OpClass::Branch).branch(taken, target);
        // Branch conditions (loop counters, flags) are usually computed well
        // ahead of the branch; only a minority wait on fresh values.
        if !self.rng.gen_bool(0.6) {
            if let Some(s) = self.sample_src(RegClass::Int) {
                b = b.src(s);
            }
        }
        let op = b.build();
        self.pc = if taken { target } else { pc + 4 };
        op
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        let seq = self.seq;
        self.seq += 1;
        let op = self.sample_op();
        if op == OpClass::Branch {
            return Some(self.gen_branch(seq));
        }

        let pc = 0x0040_0000 + (self.pc - 0x0040_0000) % CODE_FOOTPRINT;
        self.pc = pc + 4;
        let mut b = MicroOp::builder(seq, pc, op);

        match op {
            OpClass::Load => {
                let addr = self.sample_addr();
                // Whether a load fills an FP register is a static property
                // of the instruction (ldq vs ldt), so derive it from the PC.
                let mut h = pc.wrapping_mul(0xd6e8_feb8_6659_fd93);
                h ^= h >> 32;
                let fp_dest =
                    (h % 10_000) as f64 / 10_000.0 < (self.profile.fp_frac * 0.8).min(1.0);
                let class = if fp_dest { RegClass::Fp } else { RegClass::Int };
                if let Some(s) = self.sample_addr_src() {
                    b = b.src(s);
                }
                let dest = self.alloc_dest(class);
                let result = self.sample_result(class, pc);
                Some(b.dest(dest).addr(addr).result(result).build())
            }
            OpClass::Store => {
                let addr = self.sample_addr();
                if let Some(s) = self.sample_addr_src() {
                    b = b.src(s); // address base
                }
                let data_fp = self.rng.gen_bool((self.profile.fp_frac * 0.8).min(1.0));
                let data_class = if data_fp { RegClass::Fp } else { RegClass::Int };
                if let Some(s) = self.sample_src(data_class) {
                    b = b.src_data(s); // store data always sits in slot 1
                }
                Some(b.addr(addr).build())
            }
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => {
                for _ in 0..2 {
                    if let Some(s) = self.sample_src(RegClass::Fp) {
                        b = b.src(s);
                    }
                }
                let dest = self.alloc_dest(RegClass::Fp);
                let result = self.sample_result(RegClass::Fp, pc);
                Some(b.dest(dest).result(result).build())
            }
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                for _ in 0..2 {
                    if let Some(s) = self.sample_src(RegClass::Int) {
                        b = b.src(s);
                    }
                }
                let dest = self.alloc_dest(RegClass::Int);
                let result = self.sample_result(RegClass::Int, pc);
                Some(b.dest(dest).result(result).build())
            }
            OpClass::Branch => unreachable!("handled above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{by_name, spec2000};

    #[test]
    fn generator_is_deterministic() {
        let a: Vec<_> = TraceGenerator::new(by_name("mcf").unwrap(), 7)
            .take(5000)
            .collect();
        let b: Vec<_> = TraceGenerator::new(by_name("mcf").unwrap(), 7)
            .take(5000)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = TraceGenerator::new(by_name("mcf").unwrap(), 7)
            .take(100)
            .collect();
        let b: Vec<_> = TraceGenerator::new(by_name("mcf").unwrap(), 8)
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_converges_to_profile() {
        let p = by_name("gcc").unwrap();
        let n = 200_000;
        let window: Vec<_> = TraceGenerator::new(p, 1).take(n).collect();
        let frac = |cls: OpClass| window.iter().filter(|i| i.op() == cls).count() as f64 / n as f64;
        assert!((frac(OpClass::Load) - p.load_frac).abs() < 0.01);
        assert!((frac(OpClass::Store) - p.store_frac).abs() < 0.01);
        assert!((frac(OpClass::Branch) - p.branch_frac).abs() < 0.01);
    }

    #[test]
    fn seqs_are_consecutive() {
        let window: Vec<_> = TraceGenerator::new(by_name("art").unwrap(), 3)
            .take(1000)
            .collect();
        for (i, op) in window.iter().enumerate() {
            assert_eq!(op.seq(), i as u64);
        }
    }

    #[test]
    fn sources_reference_previously_written_regs() {
        // After warmup every source register must have been some earlier
        // op's destination (the generator never fabricates dangling deps).
        let window: Vec<_> = TraceGenerator::new(by_name("swim").unwrap(), 9)
            .take(10_000)
            .collect();
        let mut written = std::collections::HashSet::new();
        for op in &window {
            for s in op.srcs() {
                if !written.is_empty() {
                    // Source regs are drawn from the recent-write window, so
                    // after warmup they must be in the written set.
                    if written.len() > 60 {
                        assert!(written.contains(&s), "dangling source {s}");
                    }
                }
            }
            if let Some(d) = op.dest() {
                written.insert(d);
            }
        }
    }

    #[test]
    fn narrow_fraction_tracks_profile() {
        let p = by_name("gzip").unwrap();
        let window: Vec<_> = TraceGenerator::new(p, 5).take(100_000).collect();
        let int_results: Vec<_> = window
            .iter()
            .filter(|o| {
                o.dest()
                    .map(|d| d.class() == RegClass::Int)
                    .unwrap_or(false)
            })
            .collect();
        let narrow = int_results.iter().filter(|o| o.is_narrow_result()).count() as f64
            / int_results.len() as f64;
        // Per-site narrowness: expect site-sampling variance around the
        // profile value.
        assert!((narrow - p.narrow_frac).abs() < 0.08, "narrow = {narrow}");
    }

    #[test]
    fn every_profile_generates_without_panic() {
        for p in spec2000() {
            let n = TraceGenerator::new(p, 11).take(2000).count();
            assert_eq!(n, 2000);
        }
    }

    #[test]
    fn fp_suite_generates_fp_ops() {
        let window: Vec<_> = TraceGenerator::new(by_name("swim").unwrap(), 2)
            .take(10_000)
            .collect();
        let fp = window.iter().filter(|o| o.op().is_fp()).count();
        assert!(fp > 3_000, "fp ops = {fp}");
    }

    #[test]
    fn streams_produce_sequential_addresses() {
        let mut gen = TraceGenerator::new(by_name("swim").unwrap(), 4);
        let mut per_stream: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        for op in gen.by_ref().take(50_000) {
            if let Some(a) = op.addr() {
                if (0x4000_0000..0x8000_0000).contains(&a) {
                    let lane = by_name("swim").unwrap().cold_working_set / 8;
                    per_stream
                        .entry((a - 0x4000_0000) / lane)
                        .or_default()
                        .push(a);
                }
            }
        }
        // Within each stream, consecutive accesses advance by 8 bytes.
        let mut sequential = 0usize;
        let mut total = 0usize;
        for (_, addrs) in per_stream {
            for w in addrs.windows(2) {
                total += 1;
                if w[1] == w[0] + 8 {
                    sequential += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            sequential as f64 / total as f64 > 0.9,
            "sequential {sequential}/{total}"
        );
    }
}
