//! Benchmark profiles: statistical models of the 23 SPEC2000 programs the
//! paper simulates.
//!
//! We cannot ship SPEC binaries or an Alpha functional simulator, so each
//! program is replaced by a `BenchmarkProfile` — a small set of parameters
//! (instruction mix, branch predictability, dependency-distance
//! distribution, working-set sizes, narrow-result fraction) from which
//! [`crate::generator::TraceGenerator`] synthesises a deterministic
//! instruction stream. The parameters are calibrated to the published
//! character of each program (FP vs INT suite, memory-boundedness, branch
//! behaviour); see DESIGN.md §4 for why this substitution preserves the
//! paper's effects.

use std::fmt;

/// Statistical description of one benchmark program. All-POD and `Copy`,
/// so sweep harnesses pass profiles by value instead of cloning per job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Program name (SPEC2000 shorthand, e.g. `"gzip"`).
    pub name: &'static str,
    /// Fraction of dynamic instructions that are loads.
    pub load_frac: f64,
    /// Fraction that are stores.
    pub store_frac: f64,
    /// Fraction that are conditional branches.
    pub branch_frac: f64,
    /// Fraction that are FP operations (splits 60/30/10 into add/mul/div).
    pub fp_frac: f64,
    /// Fraction that are integer multiplies (of the non-FP remainder).
    pub int_mul_frac: f64,
    /// Probability a branch follows its per-site bias. The real predictor's
    /// accuracy emerges from this and the site count.
    pub branch_bias: f64,
    /// Number of static branch sites (smaller = more predictable history).
    pub branch_sites: usize,
    /// Mean of the geometric register-dependency distance. Larger means
    /// more ILP (consumers sit further from producers).
    pub dep_distance_mean: f64,
    /// Fraction of integer results that are narrow (`0..=1023`).
    pub narrow_frac: f64,
    /// Bytes of the hot (cache-resident) data working set.
    pub hot_working_set: u64,
    /// Bytes of the cold working set (drives L2/memory misses).
    pub cold_working_set: u64,
    /// Probability a memory access falls in the hot set.
    pub hot_frac: f64,
    /// Fraction of memory ops that walk sequential streams (unit stride) —
    /// characteristic of FP array codes.
    pub stream_frac: f64,
    /// Probability a source operand references long-dead architected state
    /// rather than a recently produced value. Breaks the dependence web
    /// into independent chains — the knob controlling how much of the
    /// memory latency sits on the critical path.
    pub independence: f64,
    /// Bytes each sequential stream walks before wrapping. Small wraps
    /// model blocked/tiled loops that reuse an L2-resident buffer; large
    /// wraps model grand streaming codes (swim) that defeat the L2.
    pub stream_wrap: u64,
    /// Probability a load/store address base references architected state
    /// (stack/frame pointers, globals) rather than a produced value.
    pub addr_independence: f64,
    /// When an address base *is* produced in-window: probability it is a
    /// fresh value (pointer chasing) rather than an old, long-completed one
    /// (induction variables).
    pub addr_freshness: f64,
}

impl BenchmarkProfile {
    /// Fraction of instructions that are plain integer ALU ops.
    pub fn int_alu_frac(&self) -> f64 {
        1.0 - self.load_frac - self.store_frac - self.branch_frac - self.fp_frac - self.int_mul_frac
    }

    /// Validates that all fractions are sane probabilities.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        let check = |v: f64, what: &str| {
            if !(0.0..=1.0).contains(&v) {
                Err(format!("{}: {what} = {v} out of [0,1]", self.name))
            } else {
                Ok(())
            }
        };
        check(self.load_frac, "load_frac")?;
        check(self.store_frac, "store_frac")?;
        check(self.branch_frac, "branch_frac")?;
        check(self.fp_frac, "fp_frac")?;
        check(self.int_mul_frac, "int_mul_frac")?;
        check(self.branch_bias, "branch_bias")?;
        check(self.narrow_frac, "narrow_frac")?;
        check(self.hot_frac, "hot_frac")?;
        check(self.stream_frac, "stream_frac")?;
        check(self.independence, "independence")?;
        check(self.addr_independence, "addr_independence")?;
        check(self.addr_freshness, "addr_freshness")?;
        if self.int_alu_frac() < 0.0 {
            return Err(format!(
                "{}: instruction mix exceeds 100% (int residue {})",
                self.name,
                self.int_alu_frac()
            ));
        }
        if self.dep_distance_mean < 1.0 {
            return Err(format!("{}: dep_distance_mean must be >= 1", self.name));
        }
        if self.branch_sites == 0 {
            return Err(format!("{}: needs at least one branch site", self.name));
        }
        Ok(())
    }

    /// Is this an FP-suite program (fp_frac above 20%)?
    pub fn is_fp_suite(&self) -> bool {
        self.fp_frac > 0.20
    }
}

impl fmt::Display for BenchmarkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} suite, {:.0}% mem, {:.0}% br)",
            self.name,
            if self.is_fp_suite() { "FP" } else { "INT" },
            (self.load_frac + self.store_frac) * 100.0,
            self.branch_frac * 100.0,
        )
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Builds one profile; keeps the 23-entry table below readable.
#[allow(clippy::too_many_arguments)]
const fn profile(
    name: &'static str,
    load_frac: f64,
    store_frac: f64,
    branch_frac: f64,
    fp_frac: f64,
    branch_bias: f64,
    dep_distance_mean: f64,
    narrow_frac: f64,
    hot_working_set: u64,
    cold_working_set: u64,
    hot_frac: f64,
    stream_frac: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        load_frac,
        store_frac,
        branch_frac,
        fp_frac,
        int_mul_frac: 0.01,
        branch_bias,
        branch_sites: 512,
        dep_distance_mean,
        narrow_frac,
        hot_working_set,
        cold_working_set,
        hot_frac,
        stream_frac,
        independence: 0.3,
        stream_wrap: 64 * KB,
        addr_independence: 0.75,
        addr_freshness: 0.15,
    }
}

/// The 23 SPEC2000 programs of Figure 3, in the paper's (alphabetical)
/// order. Sixtrack, facerec and perlbmk are excluded, as in the paper.
pub fn spec2000() -> Vec<BenchmarkProfile> {
    let mut all = raw_profiles();
    for p in &mut all {
        // FP loop nests have few static branch sites; integer codes many.
        p.branch_sites = if p.is_fp_suite() { 64 } else { 512 };
        // FP array codes have more independent chains than integer codes;
        // mcf's pointer chase is the serial extreme.
        // ILP calibration: these two knobs were fit so the 4-cluster
        // Model-I baseline lands in a SimpleScalar-like IPC range (see
        // EXPERIMENTS.md): integer codes carry several independent chains,
        // FP loop nests more; mcf's pointer chase is the serial extreme.
        p.independence = if p.is_fp_suite() { 0.60 } else { 0.50 };
        p.dep_distance_mean *= 2.0;
        if p.name == "mcf" {
            p.independence = 0.30;
        }
        // Grand-streaming FP codes walk far past the L2; everything else
        // re-uses a blocked buffer.
        // Wrap lengths are scaled to the simulation windows this
        // reproduction uses (~100k instructions; the paper used 100M):
        // buffers must wrap within the window for their reuse to register.
        p.stream_wrap = match p.name {
            "swim" | "mgrid" => 1024 * KB,
            "applu" | "lucas" | "art" | "equake" | "fma3d" | "galgel" | "wupwise" => 32 * KB,
            _ => 8 * KB,
        };
        // mcf is the pointer chaser: its addresses depend on fresh load
        // results, serialising its cache misses.
        if p.name == "mcf" {
            p.addr_independence = 0.30;
            p.addr_freshness = 0.90;
        }
    }
    all
}

fn raw_profiles() -> Vec<BenchmarkProfile> {
    vec![
        //        name      ld    st    br    fp    bias  dep   narrow hotWS    coldWS   hot   stream
        profile(
            "ammp",
            0.26,
            0.08,
            0.05,
            0.38,
            0.97,
            9.0,
            0.10,
            24 * KB,
            16 * MB,
            0.90,
            0.55,
        ),
        profile(
            "applu",
            0.27,
            0.11,
            0.02,
            0.45,
            0.99,
            12.0,
            0.08,
            28 * KB,
            32 * MB,
            0.85,
            0.75,
        ),
        profile(
            "apsi",
            0.25,
            0.10,
            0.04,
            0.40,
            0.97,
            10.0,
            0.09,
            24 * KB,
            24 * MB,
            0.88,
            0.65,
        ),
        profile(
            "art",
            0.30,
            0.07,
            0.06,
            0.35,
            0.96,
            8.0,
            0.12,
            64 * KB,
            4 * MB,
            0.55,
            0.70,
        ),
        profile(
            "bzip2",
            0.24,
            0.09,
            0.13,
            0.00,
            0.955,
            4.5,
            0.22,
            20 * KB,
            8 * MB,
            0.96,
            0.30,
        ),
        profile(
            "crafty",
            0.27,
            0.08,
            0.12,
            0.00,
            0.95,
            4.0,
            0.20,
            16 * KB,
            2 * MB,
            0.98,
            0.15,
        ),
        profile(
            "eon",
            0.25,
            0.12,
            0.10,
            0.12,
            0.965,
            5.0,
            0.15,
            16 * KB,
            MB,
            0.98,
            0.20,
        ),
        profile(
            "equake",
            0.30,
            0.09,
            0.04,
            0.38,
            0.97,
            9.0,
            0.09,
            32 * KB,
            24 * MB,
            0.88,
            0.60,
        ),
        profile(
            "fma3d",
            0.26,
            0.12,
            0.05,
            0.40,
            0.96,
            9.0,
            0.08,
            28 * KB,
            32 * MB,
            0.84,
            0.55,
        ),
        profile(
            "galgel",
            0.28,
            0.08,
            0.03,
            0.45,
            0.98,
            12.0,
            0.07,
            24 * KB,
            16 * MB,
            0.88,
            0.80,
        ),
        profile(
            "gap",
            0.24,
            0.10,
            0.11,
            0.00,
            0.955,
            4.5,
            0.24,
            20 * KB,
            8 * MB,
            0.95,
            0.25,
        ),
        profile(
            "gcc",
            0.25,
            0.11,
            0.14,
            0.00,
            0.94,
            3.8,
            0.23,
            28 * KB,
            12 * MB,
            0.94,
            0.15,
        ),
        profile(
            "gzip",
            0.22,
            0.08,
            0.12,
            0.00,
            0.955,
            4.2,
            0.25,
            16 * KB,
            4 * MB,
            0.97,
            0.35,
        ),
        profile(
            "lucas",
            0.24,
            0.10,
            0.02,
            0.48,
            0.99,
            13.0,
            0.06,
            24 * KB,
            32 * MB,
            0.88,
            0.85,
        ),
        profile(
            "mcf",
            0.32,
            0.09,
            0.12,
            0.00,
            0.94,
            3.5,
            0.22,
            96 * KB,
            96 * MB,
            0.35,
            0.10,
        ),
        profile(
            "mesa",
            0.24,
            0.11,
            0.08,
            0.25,
            0.97,
            6.0,
            0.14,
            20 * KB,
            4 * MB,
            0.93,
            0.40,
        ),
        profile(
            "mgrid",
            0.30,
            0.08,
            0.01,
            0.48,
            0.99,
            13.0,
            0.06,
            28 * KB,
            32 * MB,
            0.86,
            0.85,
        ),
        profile(
            "parser",
            0.24,
            0.09,
            0.13,
            0.00,
            0.94,
            3.8,
            0.21,
            24 * KB,
            8 * MB,
            0.94,
            0.15,
        ),
        profile(
            "swim",
            0.28,
            0.10,
            0.01,
            0.48,
            0.99,
            13.0,
            0.05,
            32 * KB,
            48 * MB,
            0.82,
            0.90,
        ),
        profile(
            "twolf",
            0.26,
            0.08,
            0.12,
            0.02,
            0.93,
            3.6,
            0.19,
            24 * KB,
            2 * MB,
            0.95,
            0.10,
        ),
        profile(
            "vortex",
            0.27,
            0.12,
            0.11,
            0.00,
            0.96,
            4.5,
            0.20,
            28 * KB,
            16 * MB,
            0.93,
            0.20,
        ),
        profile(
            "vpr",
            0.26,
            0.09,
            0.11,
            0.03,
            0.945,
            4.0,
            0.19,
            24 * KB,
            4 * MB,
            0.95,
            0.15,
        ),
        profile(
            "wupwise",
            0.24,
            0.10,
            0.03,
            0.45,
            0.98,
            11.0,
            0.07,
            20 * KB,
            24 * MB,
            0.86,
            0.70,
        ),
    ]
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    spec2000().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_23_profiles_validate() {
        let all = spec2000();
        assert_eq!(all.len(), 23);
        for p in &all {
            p.validate().unwrap();
        }
    }

    #[test]
    fn names_are_unique_and_sorted() {
        let all = spec2000();
        for w in all.windows(2) {
            assert!(w[0].name < w[1].name, "{} !< {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn more_than_a_third_memory_ops_on_average() {
        // Paper §4: "more than one third of all instructions are loads or
        // stores", motivating the double-width cache links.
        let all = spec2000();
        let avg: f64 =
            all.iter().map(|p| p.load_frac + p.store_frac).sum::<f64>() / all.len() as f64;
        assert!(avg > 1.0 / 3.0, "average memory fraction {avg}");
    }

    #[test]
    fn narrow_fraction_averages_near_paper_value() {
        // Paper §5.3: "Only 14% of all register traffic ... are integers
        // between 0 and 1023". Register traffic weights int results only, so
        // the per-program narrow_frac should average in that neighbourhood.
        let all = spec2000();
        let avg: f64 = all
            .iter()
            .map(|p| p.narrow_frac * (1.0 - p.fp_frac))
            .sum::<f64>()
            / all.len() as f64;
        assert!((0.08..=0.20).contains(&avg), "avg narrow {avg}");
    }

    #[test]
    fn fp_suite_split_matches_spec2000() {
        let all = spec2000();
        let fp = all.iter().filter(|p| p.is_fp_suite()).count();
        // 12 CFP2000 programs survive the paper's selection.
        assert_eq!(fp, 12, "FP programs: {fp}");
    }

    #[test]
    fn mcf_is_the_memory_monster() {
        let mcf = by_name("mcf").unwrap();
        for p in spec2000() {
            assert!(p.cold_working_set <= mcf.cold_working_set);
        }
        assert!(mcf.hot_frac < 0.5);
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(by_name("perlbmk").is_none());
        assert!(by_name("gzip").is_some());
    }

    #[test]
    fn validate_rejects_bad_mix() {
        let mut p = by_name("gzip").unwrap();
        p.load_frac = 0.9;
        assert!(p.validate().is_err());
        p.load_frac = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn display_mentions_suite() {
        assert!(by_name("swim").unwrap().to_string().contains("FP"));
        assert!(by_name("gcc").unwrap().to_string().contains("INT"));
    }
}
