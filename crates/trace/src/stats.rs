//! Descriptive statistics over a trace window — used to validate that the
//! generator reproduces its profile and to report workload characteristics
//! in the harness output.

use std::fmt;

use heterowire_isa::{MicroOp, OpClass, RegClass};

/// Aggregate statistics of a window of micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceStats {
    /// Total micro-ops observed.
    pub total: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// FP arithmetic ops.
    pub fp_ops: u64,
    /// Ops producing an integer register result.
    pub int_results: u64,
    /// Integer results in `0..=1023`.
    pub narrow_results: u64,
}

impl TraceStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one micro-op into the statistics.
    pub fn record(&mut self, op: &MicroOp) {
        self.total += 1;
        match op.op() {
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::Branch => {
                self.branches += 1;
                if op.branch().map(|b| b.taken).unwrap_or(false) {
                    self.taken_branches += 1;
                }
            }
            c if c.is_fp() => self.fp_ops += 1,
            _ => {}
        }
        if let Some(d) = op.dest() {
            if d.class() == RegClass::Int {
                self.int_results += 1;
                if op.is_narrow_result() {
                    self.narrow_results += 1;
                }
            }
        }
    }

    /// Computes statistics over an iterator of micro-ops.
    pub fn from_ops<I: IntoIterator<Item = MicroOp>>(ops: I) -> Self {
        let mut s = Self::new();
        for op in ops {
            s.record(&op);
        }
        s
    }

    /// Fraction of memory operations.
    pub fn mem_frac(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.total as f64
    }

    /// Fraction of integer results that are narrow.
    pub fn narrow_frac(&self) -> f64 {
        if self.int_results == 0 {
            return 0.0;
        }
        self.narrow_results as f64 / self.int_results as f64
    }

    /// Fraction of branches that were taken.
    pub fn taken_frac(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.taken_branches as f64 / self.branches as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops: {:.1}% mem, {:.1}% br ({:.0}% taken), {:.1}% narrow int results",
            self.total,
            self.mem_frac() * 100.0,
            self.branches as f64 / self.total.max(1) as f64 * 100.0,
            self.taken_frac() * 100.0,
            self.narrow_frac() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::profile::by_name;

    #[test]
    fn stats_track_generator() {
        let p = by_name("vpr").unwrap();
        let stats = TraceStats::from_ops(TraceGenerator::new(p, 13).take(100_000));
        assert_eq!(stats.total, 100_000);
        assert!((stats.mem_frac() - (p.load_frac + p.store_frac)).abs() < 0.01);
        // Narrowness is a per-site property, so the realized fraction has
        // site-sampling variance on top of instance noise.
        assert!((stats.narrow_frac() - p.narrow_frac).abs() < 0.08);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.mem_frac(), 0.0);
        assert_eq!(s.narrow_frac(), 0.0);
        assert_eq!(s.taken_frac(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let s = TraceStats::from_ops(TraceGenerator::new(by_name("gzip").unwrap(), 1).take(1000));
        let text = s.to_string();
        assert!(text.contains("1000 ops"), "{text}");
    }
}
