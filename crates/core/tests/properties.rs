//! Property-based tests over the core: steering, the narrow predictor, the
//! energy model and short simulator invariants.

use proptest::prelude::*;

use heterowire_core::{
    relative_report, EnergyParams, InterconnectModel, NarrowPredictor, Processor,
    ProcessorConfig, Steering, SteeringWeights,
};
use heterowire_core::steer::{ClusterView, ProducerInfo};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, TraceGenerator};

proptest! {
    /// Steering never returns a resource-less cluster, and returns None
    /// exactly when no cluster has resources.
    #[test]
    fn steering_respects_resources(
        free in proptest::collection::vec((0usize..4, 0usize..4), 4),
        producer in proptest::option::of(0usize..4),
        is_load in any::<bool>(),
    ) {
        let views: Vec<ClusterView> = free
            .iter()
            .map(|&(iq, regs)| ClusterView { free_iq: iq, free_regs: regs })
            .collect();
        let producers: Vec<ProducerInfo> = producer
            .map(|c| vec![ProducerInfo { cluster: c, critical: true }])
            .unwrap_or_default();
        let s = Steering::new(Topology::crossbar4(), SteeringWeights::default());
        match s.choose(is_load, &producers, &views) {
            Some(c) => prop_assert!(views[c].has_resources()),
            None => prop_assert!(views.iter().all(|v| !v.has_resources())),
        }
    }

    /// The narrow predictor only predicts narrow after three consecutive
    /// narrow outcomes, and any wide outcome resets it.
    #[test]
    fn narrow_counter_semantics(outcomes in proptest::collection::vec(any::<bool>(), 1..50)) {
        let mut p = NarrowPredictor::new(1024);
        let pc = 0x40;
        let mut streak = 0u32;
        for &narrow in &outcomes {
            prop_assert_eq!(p.predict(pc), streak >= 3, "streak {}", streak);
            p.update(pc, narrow);
            streak = if narrow { streak + 1 } else { 0 };
        }
    }

    /// Energy model identities: a model identical to the baseline scores
    /// exactly 100 everywhere, for any interconnect fraction.
    #[test]
    fn energy_identity(f in 0.01f64..0.5) {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(spec2000().swap_remove(0), 3);
        let r = Processor::simulate(cfg, trace, 2_000, 200);
        let params = EnergyParams { ic_fraction: f, leakage_share: 0.3 };
        let rel = relative_report(&r, &r, params);
        prop_assert!((rel.rel_processor_energy - 100.0).abs() < 1e-9);
        prop_assert!((rel.rel_ed2 - 100.0).abs() < 1e-9);
    }

    /// Slower cycles with identical interconnect energy always increase
    /// ED² (the D² term dominates the leakage credit).
    #[test]
    fn ed2_punishes_slowdowns(slowdown in 1.01f64..2.0) {
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(spec2000().swap_remove(5), 3);
        let base = Processor::simulate(cfg, trace, 2_000, 200);
        let mut slow = base;
        slow.cycles = (base.cycles as f64 * slowdown) as u64;
        let rel = relative_report(&slow, &base, EnergyParams::ten_percent());
        prop_assert!(rel.rel_ed2 > 100.0, "{}", rel.rel_ed2);
    }

    /// The simulator commits exactly the requested window for any small
    /// window size and any benchmark.
    #[test]
    fn exact_window_commit(bench in 0usize..23, window in 500u64..2_000) {
        let profile = spec2000().swap_remove(bench);
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(profile, 9);
        let r = Processor::simulate(cfg, trace, window, 100);
        prop_assert_eq!(r.instructions, window);
        prop_assert!(r.cycles > 0);
    }
}
