//! Randomized property-style tests over the core: steering, the narrow
//! predictor, the energy model and short simulator invariants (std-only).

use heterowire_rng::SmallRng;

use heterowire_core::steer::{ClusterView, ProducerInfo};
use heterowire_core::{
    relative_report, EnergyParams, InterconnectModel, NarrowPredictor, Processor, ProcessorConfig,
    Steering, SteeringWeights,
};
use heterowire_interconnect::Topology;
use heterowire_trace::{spec2000, TraceGenerator};

const CASES: usize = 256;

/// Steering never returns a resource-less cluster, and returns None
/// exactly when no cluster has resources.
#[test]
fn steering_respects_resources() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0001);
    let s = Steering::new(Topology::crossbar4(), SteeringWeights::default());
    for _ in 0..CASES {
        let views: Vec<ClusterView> = (0..4)
            .map(|_| ClusterView {
                free_iq: rng.gen_range(0usize..4),
                free_regs: rng.gen_range(0usize..4),
            })
            .collect();
        let producers: Vec<ProducerInfo> = if rng.gen_bool(0.5) {
            vec![ProducerInfo {
                cluster: rng.gen_range(0usize..4),
                critical: true,
            }]
        } else {
            Vec::new()
        };
        let is_load = rng.gen_bool(0.5);
        match s.choose(is_load, &producers, &views) {
            Some(c) => assert!(views[c].has_resources()),
            None => assert!(views.iter().all(|v| !v.has_resources())),
        }
    }
}

/// `choose` and the scratch-buffer `choose_into` agree on randomized
/// inputs for both topologies (the simulator hot path uses the latter).
#[test]
fn choose_into_matches_choose() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0006);
    let mut scratch = Vec::new();
    for topology in [Topology::crossbar4(), Topology::hier16()] {
        let s = Steering::new(topology, SteeringWeights::default());
        let n = topology.clusters();
        for _ in 0..CASES {
            let views: Vec<ClusterView> = (0..n)
                .map(|_| ClusterView {
                    free_iq: rng.gen_range(0usize..6),
                    free_regs: if rng.gen_bool(0.2) {
                        usize::MAX
                    } else {
                        rng.gen_range(0usize..6)
                    },
                })
                .collect();
            let mut producers = Vec::new();
            for _ in 0..rng.gen_range(0usize..3) {
                producers.push(ProducerInfo {
                    cluster: rng.gen_range(0..n),
                    critical: rng.gen_bool(0.5),
                });
            }
            let is_load = rng.gen_bool(0.3);
            let a = s.choose(is_load, &producers, &views);
            let b = s.choose_into(is_load, &producers, &views, &mut scratch);
            assert_eq!(a, b, "views {views:?} producers {producers:?}");
        }
    }
}

/// The narrow predictor only predicts narrow after three consecutive
/// narrow outcomes, and any wide outcome resets it.
#[test]
fn narrow_counter_semantics() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0002);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..50);
        let mut p = NarrowPredictor::new(1024);
        let pc = 0x40;
        let mut streak = 0u32;
        for _ in 0..len {
            let narrow = rng.gen_bool(0.5);
            assert_eq!(p.predict(pc), streak >= 3, "streak {streak}");
            p.update(pc, narrow);
            streak = if narrow { streak + 1 } else { 0 };
        }
    }
}

/// Energy model identities: a model identical to the baseline scores
/// exactly 100 everywhere, for any interconnect fraction.
#[test]
fn energy_identity() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0003);
    let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let trace = TraceGenerator::new(spec2000().swap_remove(0), 3);
    let r = Processor::simulate(cfg, trace, 2_000, 200);
    for _ in 0..32 {
        let f = rng.gen_range(0.01f64..0.5);
        let params = EnergyParams {
            ic_fraction: f,
            leakage_share: 0.3,
        };
        let rel = relative_report(&r, &r, params);
        assert!((rel.rel_processor_energy - 100.0).abs() < 1e-9);
        assert!((rel.rel_ed2 - 100.0).abs() < 1e-9);
    }
}

/// Slower cycles with identical interconnect energy always increase ED²
/// (the D² term dominates the leakage credit).
#[test]
fn ed2_punishes_slowdowns() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0004);
    let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let trace = TraceGenerator::new(spec2000().swap_remove(5), 3);
    let base = Processor::simulate(cfg, trace, 2_000, 200);
    for _ in 0..32 {
        let slowdown = rng.gen_range(1.01f64..2.0);
        let mut slow = base;
        slow.cycles = (base.cycles as f64 * slowdown) as u64;
        let rel = relative_report(&slow, &base, EnergyParams::ten_percent());
        assert!(rel.rel_ed2 > 100.0, "{}", rel.rel_ed2);
    }
}

/// The simulator commits exactly the requested window for any small window
/// size and any benchmark.
#[test]
fn exact_window_commit() {
    let mut rng = SmallRng::seed_from_u64(0xc04e_0005);
    for _ in 0..8 {
        let bench = rng.gen_range(0usize..23);
        let window = rng.gen_range(500u64..2_000);
        let profile = spec2000().swap_remove(bench);
        let cfg = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let trace = TraceGenerator::new(profile, 9);
        let r = Processor::simulate(cfg, trace, window, 100);
        assert_eq!(r.instructions, window);
        assert!(r.cycles > 0);
    }
}
