#![warn(missing_docs)]
//! # heterowire-core
//!
//! A reproduction of *"Microarchitectural Wire Management for Performance
//! and Power in Partitioned Architectures"* (Balasubramonian,
//! Muralimanohar, Ramani, Venkatachalapathy — HPCA-11, 2005): a clustered,
//! dynamically scheduled out-of-order processor whose inter-cluster
//! interconnect mixes wires with different latency / bandwidth / energy
//! trade-offs, plus the microarchitectural techniques that exploit them.
//!
//! The pieces:
//!
//! * [`config`] — Table-1 machine parameters and the ten interconnect
//!   models of Tables 3/4 ([`config::InterconnectModel`]);
//! * [`steer`] — the dynamic instruction steering heuristic;
//! * [`narrow`] — the 8K-entry narrow bit-width result predictor;
//! * [`processor`] — the cycle-driven simulator tying together the trace
//!   generator, front end, clusters, heterogeneous network, LSQ and caches;
//! * [`energy`] — the chip-level energy / ED² model the tables report;
//! * [`results`] — per-run statistics.
//!
//! ## Quick start
//!
//! ```
//! use heterowire_core::config::{InterconnectModel, ProcessorConfig};
//! use heterowire_core::processor::Processor;
//! use heterowire_interconnect::Topology;
//! use heterowire_trace::{generator::TraceGenerator, profile};
//!
//! // Model VII (144 B-Wires + 36 L-Wires) on the 4-cluster crossbar:
//! let config = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
//! let trace = TraceGenerator::new(profile::by_name("gzip").unwrap(), 42);
//! let results = Processor::simulate(config, trace, 5_000, 500);
//! assert!(results.ipc() > 0.0);
//! ```

pub mod config;
pub mod energy;
pub mod mask;
pub mod narrow;
pub mod processor;
pub mod report;
pub mod results;
pub mod steer;

pub use config::{
    Extensions, InterconnectModel, ModelSpec, ModelSpecError, Optimizations, ProcessorConfig,
};
pub use energy::{mean_report, relative_report, EnergyParams, RelativeReport};
pub use heterowire_interconnect::{
    FaultModel, FaultSpec, FaultSpecError, InjectedFaults, NullFaultModel,
};
pub use heterowire_telemetry::{
    BlockedTransfer, NullProbe, Probe, RecordingConfig, RecordingProbe, StallReport,
};
pub use mask::ClusterMask;
pub use narrow::NarrowPredictor;
pub use processor::{
    CriticalityPolicy, OraclePolicy, PaperPolicy, Processor, PwFirstPolicy, SprayPolicy,
    TransferPolicy, MAX_CLUSTERS,
};
pub use results::{mean_ipc, SimResults};
pub use steer::{ClusterView, ProducerInfo, Steering, SteeringWeights};
