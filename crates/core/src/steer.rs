//! The dynamic instruction steering heuristic (paper §4).
//!
//! While dispatching, each cluster is scored: weights for producing the
//! instruction's input operands (extra weight for the operand predicted
//! critical), weight proportional to free issue-queue entries, and — for
//! loads — weight for proximity to the centralized data cache. The
//! instruction goes to the highest-scoring cluster; if that cluster has no
//! free resources, to the nearest cluster that has them.

use heterowire_interconnect::Topology;

/// Tunable weights of the steering heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteeringWeights {
    /// Per input operand produced by the cluster.
    pub dependence: i64,
    /// Extra weight when the cluster produces the critical (last-arriving)
    /// operand.
    pub critical: i64,
    /// Per free issue-queue slot, up to [`SteeringWeights::free_cap`].
    pub free_slot: i64,
    /// Cap on the free-slot bonus.
    pub free_cap: i64,
    /// Bonus for cache-adjacent clusters when steering a load.
    pub cache_proximity: i64,
}

impl Default for SteeringWeights {
    fn default() -> Self {
        SteeringWeights {
            dependence: 4,
            critical: 3,
            free_slot: 1,
            free_cap: 8,
            cache_proximity: 2,
        }
    }
}

/// A dispatching instruction's producer, as seen by the steering logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerInfo {
    /// Cluster holding (or about to produce) the operand.
    pub cluster: usize,
    /// True if this operand is predicted to arrive last (critical path).
    pub critical: bool,
}

/// Per-cluster resource availability at dispatch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterView {
    /// Free issue-queue entries in the relevant (int/fp) queue.
    pub free_iq: usize,
    /// Free physical registers in the relevant file (usize::MAX when the
    /// op needs no destination).
    pub free_regs: usize,
}

impl ClusterView {
    /// True if the cluster can accept the instruction.
    pub fn has_resources(&self) -> bool {
        self.free_iq > 0 && self.free_regs > 0
    }
}

/// The steering engine.
#[derive(Debug, Clone)]
pub struct Steering {
    weights: SteeringWeights,
    topology: Topology,
}

impl Steering {
    /// Creates a steering engine for `topology` with the given weights.
    pub fn new(topology: Topology, weights: SteeringWeights) -> Self {
        Steering { weights, topology }
    }

    /// Scores every cluster for an instruction into `out` (cleared first).
    fn scores_into(
        &self,
        is_load: bool,
        producers: &[ProducerInfo],
        clusters: &[ClusterView],
        out: &mut Vec<i64>,
    ) {
        let w = &self.weights;
        out.clear();
        out.extend((0..clusters.len()).map(|c| {
            let mut score = 0;
            for p in producers {
                if p.cluster == c {
                    score += w.dependence;
                    if p.critical {
                        score += w.critical;
                    }
                }
            }
            score += (clusters[c].free_iq as i64).min(w.free_cap) * w.free_slot;
            if is_load && self.topology.cache_adjacent(c) {
                score += w.cache_proximity;
            }
            score
        }));
    }

    /// Chooses the cluster for an instruction, or `None` if no cluster has
    /// free resources (dispatch must stall). Allocating convenience form of
    /// [`Steering::choose_into`].
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or does not match the topology.
    pub fn choose(
        &self,
        is_load: bool,
        producers: &[ProducerInfo],
        clusters: &[ClusterView],
    ) -> Option<usize> {
        let mut scratch = Vec::with_capacity(clusters.len());
        self.choose_into(is_load, producers, clusters, &mut scratch)
    }

    /// [`Steering::choose`] with a caller-provided score buffer, so the
    /// per-instruction dispatch path performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or does not match the topology.
    pub fn choose_into(
        &self,
        is_load: bool,
        producers: &[ProducerInfo],
        clusters: &[ClusterView],
        scratch: &mut Vec<i64>,
    ) -> Option<usize> {
        assert_eq!(
            clusters.len(),
            self.topology.clusters(),
            "cluster view must cover the topology"
        );
        self.scores_into(is_load, producers, clusters, scratch);
        let scores = &*scratch;
        // Ideal cluster by score (ties -> lower index for determinism).
        let ideal = (0..clusters.len())
            .max_by_key(|&c| (scores[c], std::cmp::Reverse(c)))
            .expect("at least one cluster");
        if clusters[ideal].has_resources() {
            return Some(ideal);
        }
        // Nearest cluster with resources: same quad first, then by score.
        let ideal_quad = self.topology.quad_of(ideal);
        (0..clusters.len())
            .filter(|&c| clusters[c].has_resources())
            .max_by_key(|&c| {
                let same_quad = self.topology.quad_of(c) == ideal_quad;
                (same_quad, scores[c], std::cmp::Reverse(c))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize, free: usize) -> Vec<ClusterView> {
        vec![
            ClusterView {
                free_iq: free,
                free_regs: free,
            };
            n
        ]
    }

    fn steering4() -> Steering {
        Steering::new(Topology::crossbar4(), SteeringWeights::default())
    }

    #[test]
    fn follows_the_producer() {
        let s = steering4();
        let got = s.choose(
            false,
            &[ProducerInfo {
                cluster: 2,
                critical: false,
            }],
            &views(4, 10),
        );
        assert_eq!(got, Some(2));
    }

    #[test]
    fn critical_producer_beats_non_critical() {
        let s = steering4();
        let got = s.choose(
            false,
            &[
                ProducerInfo {
                    cluster: 1,
                    critical: false,
                },
                ProducerInfo {
                    cluster: 3,
                    critical: true,
                },
            ],
            &views(4, 10),
        );
        assert_eq!(got, Some(3));
    }

    #[test]
    fn load_balance_wins_without_dependences() {
        let s = steering4();
        let mut v = views(4, 1);
        v[2].free_iq = 10;
        let got = s.choose(false, &[], &v);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn full_ideal_cluster_falls_back() {
        let s = steering4();
        let mut v = views(4, 5);
        v[2].free_iq = 0; // producer cluster is full
        let got = s.choose(
            false,
            &[ProducerInfo {
                cluster: 2,
                critical: true,
            }],
            &v,
        );
        assert!(got.is_some());
        assert_ne!(got, Some(2));
    }

    #[test]
    fn no_resources_anywhere_stalls() {
        let s = steering4();
        let got = s.choose(false, &[], &views(4, 0));
        assert_eq!(got, None);
    }

    #[test]
    fn loads_prefer_cache_quad_in_hier16() {
        let s = Steering::new(Topology::hier16(), SteeringWeights::default());
        // All else equal, a load should land in quad 0 (cache-adjacent).
        let got = s.choose(true, &[], &views(16, 5)).unwrap();
        assert!(got < 4, "load steered to cluster {got}");
    }

    #[test]
    fn fallback_prefers_same_quad() {
        let s = Steering::new(Topology::hier16(), SteeringWeights::default());
        let mut v = views(16, 3);
        // Producer in cluster 5 (quad 1), but it is full.
        v[5].free_iq = 0;
        let got = s
            .choose(
                false,
                &[ProducerInfo {
                    cluster: 5,
                    critical: true,
                }],
                &v,
            )
            .unwrap();
        assert_eq!(got / 4, 1, "fallback should stay in quad 1, got {got}");
    }

    #[test]
    fn register_exhaustion_also_blocks() {
        let s = steering4();
        let mut v = views(4, 5);
        for c in &mut v {
            c.free_regs = 0;
        }
        assert_eq!(s.choose(false, &[], &v), None);
    }
}
