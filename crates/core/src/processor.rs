//! The clustered dynamically-scheduled out-of-order processor.
//!
//! A cycle-driven, trace-driven timing model with the paper's structure:
//! an 8-wide front end feeding a 480-entry ROB; dynamic steering of
//! instructions to clusters (15-entry int/fp issue queues, 32 int/fp
//! registers, one FU of each kind per cluster); a centralized LSQ + L1
//! D-cache reached over the heterogeneous interconnect; copy transfers for
//! cross-cluster register dependences with tag-ahead wakeup; and the three
//! wire-management optimizations (partial-address cache pipeline, narrow
//! operands + branch signals on L-Wires, non-critical traffic on PW-Wires).
//!
//! Deliberate trace-driven simplifications (documented in DESIGN.md):
//! wrong-path instructions are not fetched (mispredicts stall fetch until
//! resolution + signal transfer + 12-cycle refill); architected register
//! state predating the simulation window is available in every cluster;
//! physical registers bound in-flight destinations only.
//!
//! Two scheduling kernels drive the same per-cycle step functions:
//!
//! * the **event-driven kernel** ([`Processor::run`]) — a completion wheel
//!   pops instructions the cycle they finish executing, wakeup lists feed
//!   per-(cluster, FU) ready queues so issue never scans the ROB, store
//!   data is sent by subscription, and the loop jumps over cycles in which
//!   provably nothing can happen;
//! * the **cycle-driven reference kernel** ([`Processor::run_reference`]) —
//!   the seed's original full-ROB scans, kept so equivalence tests can
//!   assert the event-driven kernel is bit-identical.

use std::cmp::Reverse;
use std::sync::Arc;

use heterowire_frontend::FetchEngine;
use heterowire_interconnect::{AvailablePlanes, FrequentValueTable};
use heterowire_interconnect::{
    MessageKind, NetConfig, NetStats, Network, Node, Topology, Transfer, TransferHints, TransferId,
    WirePolicy,
};
use heterowire_isa::{MicroOp, OpClass, RegClass};
use heterowire_memory::{LoadStatus, LoadStoreQueue, MemConfig, MemoryHierarchy};
use heterowire_telemetry::{NullProbe, Probe};
use heterowire_trace::TraceGenerator;
use heterowire_wires::WireClass;

use crate::config::ProcessorConfig;
use crate::narrow::NarrowPredictor;
use crate::results::SimResults;
use crate::steer::{ClusterView, ProducerInfo, Steering, SteeringWeights};

/// Execution phase of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In an issue queue waiting for operands and a functional unit.
    Waiting,
    /// Executing; finishes at the contained cycle.
    Executing(u64),
    /// Load/store interacting with the LSQ, cache and network.
    MemPending,
    /// Result produced (or store fully delivered); ready to commit.
    Done,
}

#[derive(Debug, Clone)]
struct Inflight {
    op: MicroOp,
    cluster: usize,
    phase: Phase,
    /// Producer seq per source (`None` = architected state, always ready).
    src_producer: [Option<u64>; 2],
    /// Cached cycle each source becomes ready in this cluster
    /// (`u64::MAX` = not yet known).
    src_ready: [u64; 2],
    mispredict: bool,
    /// Cycle this instruction dispatched (statistics).
    dispatched_at: u64,
    /// Cycle this instruction issued (statistics).
    issued_at: u64,
    /// Loads: cycle the cache RAM index arrived (partial bits).
    ram_start: Option<u64>,
    /// Loads: registered in the at-cache active list.
    at_cache: bool,
    /// Loads/stores: cycle the full address reached the LSQ (statistics).
    addr_at_lsq: u64,
    /// Stores: address has been sent after AGEN.
    agen_done: bool,
    /// Stores: data transfer has been sent.
    store_data_sent: bool,
    /// Stores: address arrived at the LSQ.
    store_addr_arrived: bool,
    /// Stores: data arrived at the LSQ.
    store_data_arrived: bool,
    /// Issue operands not yet known ready (event-kernel wakeup counter;
    /// reaching 0 pushes the instruction onto its ready queue).
    pending_srcs: u8,
    /// Intrusive per-source link in a producer's waiter list
    /// ([`NO_WAITER`] = end of list / not linked).
    waiter_next: [u32; 2],
}

/// Most clusters any supported topology has (16 = four quads); bounds the
/// inline per-value arrival array.
const MAX_CLUSTERS: usize = 16;
/// Functional-unit kinds per cluster (`FuKind::ALL.len()`).
const FU_KINDS: usize = 4;
/// End-of-list sentinel for the intrusive waiter lists. Nodes encode
/// `seq << 1 | source_slot`, so seqs stay below 2^31.
const NO_WAITER: u32 = u32::MAX;
/// Arrival-slot sentinel: no copy was ever sent to this cluster.
const NOT_SENT: u64 = u64::MAX;
/// Arrival-slot sentinel: a copy is in flight, arrival cycle unknown.
const IN_FLIGHT: u64 = u64::MAX - 1;

#[derive(Debug, Clone)]
struct ValueInfo {
    cluster: usize,
    done_at: Option<u64>,
    narrow: bool,
    value: u64,
    pc: u64,
    /// Cycle a copy arrives per remote cluster ([`NOT_SENT`]/[`IN_FLIGHT`]
    /// sentinels; inline so the rename/dispatch path never hashes).
    arrivals: [u64; MAX_CLUSTERS],
    /// Remote clusters awaiting a copy once the value completes.
    subscribers: SubscriberList,
    /// Per-cluster heads of the intrusive waiter lists: dispatched
    /// consumers in that cluster blocked on this value becoming usable
    /// there. Woken when `done_at` is set (home cluster) or a copy arrives
    /// (remote cluster).
    waiters: [u32; MAX_CLUSTERS],
}

/// Insertion-ordered set of clusters, inline so the publish path never
/// allocates. Copies must be sent in subscription order — the network
/// assigns transfer ids (and breaks arbitration ties) in send order, so
/// iterating in any other order changes simulated timing.
#[derive(Debug, Clone, Copy, Default)]
struct SubscriberList {
    clusters: [u8; MAX_CLUSTERS],
    len: u8,
}

impl SubscriberList {
    fn push_unique(&mut self, cluster: usize) {
        let n = self.len as usize;
        if self.clusters[..n].contains(&(cluster as u8)) {
            return;
        }
        self.clusters[n] = cluster as u8;
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.clusters[..self.len as usize]
            .iter()
            .map(|&c| c as usize)
    }
}

impl ValueInfo {
    fn new(cluster: usize, narrow: bool, value: u64, pc: u64) -> Self {
        ValueInfo {
            cluster,
            done_at: None,
            narrow,
            value,
            pc,
            arrivals: [NOT_SENT; MAX_CLUSTERS],
            subscribers: SubscriberList::default(),
            waiters: [NO_WAITER; MAX_CLUSTERS],
        }
    }
}

/// What to do when a network transfer is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    ValueArrive { producer: u64, cluster: usize },
    PartialAddr { seq: u64 },
    FullAddr { seq: u64 },
    StoreData { seq: u64 },
    CacheData { seq: u64 },
    BranchSignal,
}

#[derive(Debug, Clone, Copy)]
struct ClusterState {
    iq_int_used: usize,
    iq_fp_used: usize,
    regs_int_used: usize,
    regs_fp_used: usize,
    fu_free: [u64; 4],
}

impl ClusterState {
    fn new() -> Self {
        ClusterState {
            iq_int_used: 0,
            iq_fp_used: 0,
            regs_int_used: 0,
            regs_fp_used: 0,
            fu_free: [0; 4],
        }
    }
}

/// A send scheduled for a future cycle (e.g. cache data that becomes
/// available when the RAM access finishes).
///
/// Lives in a min-heap ordered by `(at, dseq)`. `at` is clamped to
/// `push_cycle + 1` at insertion: the reference Vec scan ran before any
/// same-cycle push, so an entry nominally due at or before its push cycle
/// fired on the *next* cycle — the clamp makes the heap's firing cycles
/// identical. `dseq` is a monotone insertion counter so same-cycle entries
/// fire in push order (the network assigns transfer ids in send order, and
/// ids break arbitration ties).
#[derive(Debug, Clone, Copy)]
struct DeferredSend {
    at: u64,
    dseq: u64,
    transfer: Transfer,
    action: Action,
}

impl PartialEq for DeferredSend {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.dseq == other.dseq
    }
}

impl Eq for DeferredSend {}

impl PartialOrd for DeferredSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeferredSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.dseq).cmp(&(other.at, other.dseq))
    }
}

/// Ring size of the completion wheel; a power of two strictly greater
/// than the longest FU latency (20-cycle integer divide).
const WHEEL_BUCKETS: usize = 64;

/// Calendar queue of execution-completion events: issuing schedules
/// `(done_cycle, seq)` into the bucket `done_cycle % WHEEL_BUCKETS`, and
/// each executed cycle drains exactly its own bucket. Because every
/// completion lies within `WHEEL_BUCKETS` cycles of its issue and buckets
/// are drained before they can wrap, a bucket only ever holds entries for
/// one cycle.
#[derive(Debug)]
struct CompletionWheel {
    buckets: Vec<Vec<u32>>,
    /// Entries currently scheduled across all buckets.
    scheduled: usize,
    /// Exact earliest scheduled completion cycle (`u64::MAX` when empty).
    earliest: u64,
}

impl CompletionWheel {
    fn new() -> Self {
        CompletionWheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            scheduled: 0,
            earliest: u64::MAX,
        }
    }

    fn schedule(&mut self, now: u64, done: u64, seq: u64) {
        debug_assert!(
            done > now && done - now < WHEEL_BUCKETS as u64,
            "completion {done} outside wheel horizon at cycle {now}"
        );
        debug_assert!(seq < u64::from(u32::MAX));
        self.buckets[done as usize & (WHEEL_BUCKETS - 1)].push(seq as u32);
        self.scheduled += 1;
        self.earliest = self.earliest.min(done);
    }

    /// Drains the instructions completing exactly at `cycle` into `out`
    /// in ascending seq order (the reference scan finishes instructions in
    /// ROB = seq order).
    fn pop_due(&mut self, cycle: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.earliest > cycle {
            return;
        }
        let bucket = &mut self.buckets[cycle as usize & (WHEEL_BUCKETS - 1)];
        self.scheduled -= bucket.len();
        out.extend(bucket.drain(..).map(u64::from));
        out.sort_unstable();
        if self.scheduled == 0 {
            self.earliest = u64::MAX;
        } else {
            // The next event sits within one ring revolution of `cycle`.
            let mut c = cycle + 1;
            while self.buckets[c as usize & (WHEEL_BUCKETS - 1)].is_empty() {
                c += 1;
            }
            self.earliest = c;
        }
    }

    /// The earliest scheduled completion cycle, if any.
    fn next_due(&self) -> Option<u64> {
        (self.scheduled > 0).then_some(self.earliest)
    }
}

/// Which scheduling kernel drives the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// Completion wheel + wakeup lists + idle-cycle skipping.
    Event,
    /// The seed's cycle-driven full-ROB scans (equivalence reference).
    Reference,
}

/// Reusable buffers for the per-instruction dispatch path. Taken out of
/// the processor with `mem::take` for the duration of `dispatch()` (so the
/// borrow checker sees them as locals) and put back afterwards.
#[derive(Debug, Default)]
struct DispatchScratch {
    producers: Vec<ProducerInfo>,
    views: Vec<ClusterView>,
    scores: Vec<i64>,
}

/// The processor simulator. Create with [`Processor::new`], run with
/// [`Processor::run`].
///
/// Generic over a telemetry [`Probe`]; the default [`NullProbe`] carries
/// `ENABLED = false`, so every probe call site monomorphizes away and
/// `Processor` (no type argument) is exactly the uninstrumented simulator.
/// Use [`Processor::with_probe`] to attach a recording probe.
#[derive(Debug)]
pub struct Processor<P: Probe = NullProbe> {
    probe: P,
    config: Arc<ProcessorConfig>,
    fetch: FetchEngine<TraceGenerator>,
    network: Network,
    policy: WirePolicy,
    lsq: LoadStoreQueue,
    memory: MemoryHierarchy,
    steering: Steering,
    narrow: NarrowPredictor,
    fvc: FrequentValueTable,

    rob: std::collections::VecDeque<Inflight>,
    rob_base: u64, // seq of rob[0]
    clusters: Vec<ClusterState>,
    /// Destination-value bookkeeping, indexed directly by seq (seqs are
    /// dense from 0; `None` for ops without a destination).
    values: Vec<Option<ValueInfo>>,
    rename: [Option<u64>; 64],
    /// Delivery action per transfer, indexed by `TransferId` (ids are
    /// assigned densely in send order).
    actions: Vec<Action>,
    /// Deferred sends as a deterministic min-heap (see [`DeferredSend`]).
    deferred: std::collections::BinaryHeap<Reverse<DeferredSend>>,
    /// Insertion counter for [`DeferredSend::dseq`].
    deferred_seq: u64,
    active_loads: Vec<u64>,

    // Event-kernel scheduling state. The wakeup structures (ready queues,
    // store-data list) are maintained by the shared dispatch/delivery/
    // completion paths in both kernels; only the event kernel consumes
    // them. The wheel is fed by `issue_event` alone.
    wheel: CompletionWheel,
    /// Min-heap of known-ready waiting instructions per (cluster, FU kind),
    /// indexed `cluster * FU_KINDS + kind`.
    ready_queues: Vec<std::collections::BinaryHeap<Reverse<u64>>>,
    /// Stores whose data operand became ready (drained in seq order).
    store_data_pending: Vec<u32>,
    /// A store committed this cycle: LSQ disambiguation of waiting loads
    /// may change at the next cycle's poll, so it must not be skipped.
    retired_store: bool,

    // Reusable per-cycle buffers (steady-state hot path allocates nothing).
    scratch: DispatchScratch,
    fu_started: Vec<[bool; 4]>,
    finished_scratch: Vec<u64>,
    store_send_scratch: Vec<(u64, usize)>,
    delivered_scratch: Vec<(TransferId, Transfer)>,

    cycle: u64,
    committed: u64,
    dispatched: u64,
    /// Commit stops exactly at this count (set by `run`).
    commit_target: u64,
    misp_dispatch_wait: u64,
    misp_issue_wait: u64,
    misp_exec_wait: u64,
    misp_count: u64,
    load_lat_sum: u64,
    load_count: u64,
    lsq_wait_sum: u64,
    lsq_wait_count: u64,
    agen_to_lsq_sum: u64,
    store_addr_delay_sum: u64,
    store_addr_count: u64,
    store_issue_wait_sum: u64,
}

impl Processor {
    /// Builds a processor running `trace` under `config`.
    ///
    /// These constructors live on the concrete (probe-less) type because
    /// default type parameters do not drive inference: `Processor::new`
    /// must resolve without a probe annotation at every existing call
    /// site. Probed construction goes through [`Processor::with_probe`].
    pub fn new(config: ProcessorConfig, trace: TraceGenerator) -> Self {
        Self::with_shared_config(Arc::new(config), trace)
    }

    /// Builds a processor over a shared configuration — sweep harnesses
    /// running one config across many benchmarks share a single allocation
    /// instead of cloning the config per run.
    pub fn with_shared_config(config: Arc<ProcessorConfig>, trace: TraceGenerator) -> Self {
        Self::with_probe_shared(config, trace, NullProbe)
    }

    /// Convenience: builds and runs in one call.
    pub fn simulate(
        config: ProcessorConfig,
        trace: TraceGenerator,
        instructions: u64,
        warmup: u64,
    ) -> SimResults {
        Processor::new(config, trace).run(instructions, warmup)
    }
}

impl<P: Probe> Processor<P> {
    /// Builds an instrumented processor observing events through `probe`.
    pub fn with_probe(config: ProcessorConfig, trace: TraceGenerator, probe: P) -> Self {
        Self::with_probe_shared(Arc::new(config), trace, probe)
    }

    /// [`Processor::with_probe`] over a shared configuration.
    pub fn with_probe_shared(
        config: Arc<ProcessorConfig>,
        trace: TraceGenerator,
        probe: P,
    ) -> Self {
        let planes = AvailablePlanes::new(
            config.link.lanes(WireClass::B) > 0,
            config.link.lanes(WireClass::Pw) > 0,
            config.link.lanes(WireClass::L) > 0,
        );
        let mut policy = WirePolicy::new(planes);
        policy.use_l_wires = planes.l
            && (config.opts.cache_pipeline
                || config.opts.narrow_operands
                || config.opts.branch_signal);
        policy.use_pw_steering = config.opts.pw_steering && planes.pw && planes.b;
        policy.use_balancing = config.opts.load_balance && planes.pw && planes.b;

        let mut net_config = NetConfig::new(config.topology, config.link.clone());
        net_config.latency_scale = config.latency_scale;
        net_config.transmission_line_l = config.extensions.transmission_lines;

        let mem_config = MemConfig {
            critical_word_first: config.extensions.l2_critical_word
                && config.link.lanes(WireClass::L) > 0,
            ..MemConfig::default()
        };

        let n = config.clusters();
        assert!(
            n <= MAX_CLUSTERS,
            "at most {MAX_CLUSTERS} clusters supported, got {n}"
        );
        Processor {
            probe,
            fetch: FetchEngine::new(trace),
            network: Network::new(net_config),
            policy,
            lsq: LoadStoreQueue::new(config.ls_bits),
            memory: MemoryHierarchy::new(mem_config),
            steering: Steering::new(config.topology, SteeringWeights::default()),
            narrow: NarrowPredictor::paper(),
            fvc: FrequentValueTable::yang(),
            rob: std::collections::VecDeque::with_capacity(config.rob_size),
            rob_base: 0,
            clusters: vec![ClusterState::new(); n],
            values: Vec::new(),
            rename: [None; 64],
            actions: Vec::new(),
            deferred: std::collections::BinaryHeap::new(),
            deferred_seq: 0,
            active_loads: Vec::new(),
            wheel: CompletionWheel::new(),
            ready_queues: (0..n * FU_KINDS)
                .map(|_| std::collections::BinaryHeap::new())
                .collect(),
            store_data_pending: Vec::new(),
            retired_store: false,
            scratch: DispatchScratch::default(),
            fu_started: vec![[false; 4]; n],
            finished_scratch: Vec::new(),
            store_send_scratch: Vec::new(),
            delivered_scratch: Vec::new(),
            cycle: 0,
            committed: 0,
            dispatched: 0,
            commit_target: u64::MAX,
            misp_dispatch_wait: 0,
            misp_issue_wait: 0,
            misp_exec_wait: 0,
            misp_count: 0,
            load_lat_sum: 0,
            load_count: 0,
            lsq_wait_sum: 0,
            lsq_wait_count: 0,
            agen_to_lsq_sum: 0,
            store_addr_delay_sum: 0,
            store_addr_count: 0,
            store_issue_wait_sum: 0,
            config,
        }
    }

    fn rob_get(&self, seq: u64) -> Option<&Inflight> {
        if seq < self.rob_base {
            return None;
        }
        self.rob.get((seq - self.rob_base) as usize)
    }

    fn rob_get_mut(&mut self, seq: u64) -> Option<&mut Inflight> {
        if seq < self.rob_base {
            return None;
        }
        self.rob.get_mut((seq - self.rob_base) as usize)
    }

    /// The value record for `producer`, if one was registered.
    fn value(&self, producer: u64) -> Option<&ValueInfo> {
        self.values.get(producer as usize)?.as_ref()
    }

    fn value_mut(&mut self, producer: u64) -> Option<&mut ValueInfo> {
        self.values.get_mut(producer as usize)?.as_mut()
    }

    /// Cycle the value produced by `producer` is usable in `cluster`, if
    /// known yet.
    fn value_ready_in(&self, producer: u64, cluster: usize) -> Option<u64> {
        let v = self.value(producer)?;
        if v.cluster == cluster {
            v.done_at
        } else {
            let arrival = v.arrivals[cluster];
            (arrival < IN_FLIGHT).then_some(arrival)
        }
    }

    /// Links `seq`'s source `slot` into `producer`'s waiter list for
    /// `cluster`; [`Processor::wake_waiters`] unlinks it when the value
    /// becomes usable there.
    fn register_waiter(&mut self, producer: u64, cluster: usize, seq: u64, slot: usize) {
        debug_assert!(seq < (1 << 31), "waiter seqs must fit 31 bits");
        let node = ((seq as u32) << 1) | slot as u32;
        let head = {
            let v = self.value_mut(producer).expect("producer value present");
            std::mem::replace(&mut v.waiters[cluster], node)
        };
        self.rob_get_mut(seq).expect("waiter in rob").waiter_next[slot] = head;
    }

    /// Wakes every instruction waiting for `producer`'s value in `cluster`:
    /// issue operands decrement their pending count (reaching 0 enqueues
    /// the instruction on its ready queue), store-data operands enqueue the
    /// store for a data send. Wake order within one event is irrelevant —
    /// both queues restore seq order before use.
    fn wake_waiters(&mut self, producer: u64, cluster: usize) {
        let mut node = match self.value_mut(producer) {
            Some(v) => std::mem::replace(&mut v.waiters[cluster], NO_WAITER),
            None => return,
        };
        while node != NO_WAITER {
            let seq = u64::from(node >> 1);
            let slot = (node & 1) as usize;
            let (next, store_data, ready, rq) = {
                let inst = self.rob_get_mut(seq).expect("waiter in rob");
                let next = std::mem::replace(&mut inst.waiter_next[slot], NO_WAITER);
                if slot == 1 && inst.op.op() == OpClass::Store {
                    (next, true, false, 0)
                } else {
                    inst.pending_srcs -= 1;
                    let rq = inst.cluster * FU_KINDS + inst.op.op().unit().index();
                    (next, false, inst.pending_srcs == 0, rq)
                }
            };
            node = next;
            if store_data {
                self.store_data_pending.push(seq as u32);
            } else if ready {
                self.ready_queues[rq].push(Reverse(seq));
            }
        }
    }

    /// Schedules a send for cycle `at` (clamped to the next cycle, matching
    /// the reference scan — see [`DeferredSend`]).
    fn defer_send(&mut self, at: u64, transfer: Transfer, action: Action) {
        let at = at.max(self.cycle + 1);
        let dseq = self.deferred_seq;
        self.deferred_seq += 1;
        self.deferred.push(Reverse(DeferredSend {
            at,
            dseq,
            transfer,
            action,
        }));
    }

    /// Chooses a class and sends a register-value copy of `producer` to
    /// `cluster`, honouring the narrow-operand and PW-steering policies.
    /// `ready_at_dispatch` marks the paper's first PW criterion.
    fn send_value_copy(&mut self, producer: u64, cluster: usize, ready_at_dispatch: bool) {
        let (src_cluster, narrow, value, pc) = {
            let v = self.value(producer).expect("value exists");
            (v.cluster, v.narrow, v.value, v.pc)
        };
        let hints = TransferHints {
            ready_at_dispatch,
            store_data: false,
        };
        // Narrow transfers need advance width knowledge: the predictor (or
        // the actual width for already-completed values).
        let mut kind = MessageKind::RegisterValue;
        let mut extra_delay = 0;
        if self.config.opts.narrow_operands && self.policy.planes().l {
            if ready_at_dispatch || !self.config.opts.narrow_predictor {
                // Width already known (value completed) or oracle mode.
                if narrow {
                    kind = MessageKind::NarrowValue;
                }
            } else {
                // Prediction only: training happens once per result at
                // completion, not once per transfer.
                let predicted = self.narrow.predict(pc);
                if predicted && narrow {
                    kind = MessageKind::NarrowValue;
                } else if predicted && !narrow {
                    // False-narrow: tags went out on L-Wires; the wide value
                    // must be rescheduled on a full-width lane next cycle.
                    extra_delay = 1;
                }
            }
        }
        // Frequent-value extension: a wide value matching the FV table is
        // sent as its table index on an L-Wire lane.
        if kind == MessageKind::RegisterValue
            && self.config.extensions.frequent_value
            && self.policy.planes().l
        {
            let frequent = self.fvc.observe(value);
            if frequent && self.fvc.encode(value).is_some() {
                kind = MessageKind::NarrowValue;
            }
        }
        // Prefer PW for non-critical traffic even when narrow (energy).
        let class =
            if hints.ready_at_dispatch && self.policy.planes().pw && self.policy.use_pw_steering {
                WireClass::Pw
            } else {
                self.policy
                    .choose_probed(kind, hints, self.cycle, &mut self.probe)
            };
        let kind = if class == WireClass::L {
            kind
        } else {
            MessageKind::RegisterValue
        };
        let transfer = Transfer {
            src: Node::Cluster(src_cluster),
            dst: Node::Cluster(cluster),
            class,
            kind,
        };
        let action = Action::ValueArrive { producer, cluster };
        if extra_delay > 0 {
            self.defer_send(self.cycle + extra_delay, transfer, action);
        } else {
            let id = self
                .network
                .send_probed(transfer, self.cycle, &mut self.probe);
            self.record_action(id, action);
        }
        self.value_mut(producer).expect("value exists").arrivals[cluster] = IN_FLIGHT;
    }

    /// Records the delivery action of a freshly sent transfer. Transfer
    /// ids are dense in send order, so actions live in a plain vector.
    fn record_action(&mut self, id: TransferId, action: Action) {
        debug_assert_eq!(id.0 as usize, self.actions.len());
        self.actions.push(action);
    }

    /// Processes everything the network delivered this cycle.
    fn process_deliveries(&mut self) {
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        self.network
            .take_delivered_into_probed(self.cycle, &mut delivered, &mut self.probe);
        for &(id, _t) in &delivered {
            let action = self.actions[id.0 as usize];
            match action {
                Action::ValueArrive { producer, cluster } => {
                    let cycle = self.cycle;
                    if let Some(v) = self.value_mut(producer) {
                        v.arrivals[cluster] = cycle;
                    }
                    self.wake_waiters(producer, cluster);
                }
                Action::PartialAddr { seq } => {
                    if let Some(addr) = self.rob_get(seq).and_then(|i| i.op.addr()) {
                        self.lsq.arrive_partial(seq, addr, self.cycle);
                        if let Some(i) = self.rob_get_mut(seq) {
                            if !i.op.op().is_mem() {
                                continue;
                            }
                            if i.op.op() == OpClass::Load && !i.at_cache {
                                i.at_cache = true;
                            } else {
                                continue;
                            }
                        }
                        if !self.active_loads.contains(&seq) {
                            self.active_loads.push(seq);
                        }
                    }
                }
                Action::FullAddr { seq } => {
                    let (addr, is_store) = match self.rob_get(seq) {
                        Some(i) => (i.op.addr(), i.op.op() == OpClass::Store),
                        None => (None, false),
                    };
                    if let Some(addr) = addr {
                        let now = self.cycle;
                        self.lsq.arrive_full(seq, addr, now);
                        if let Some(i) = self.rob_get_mut(seq) {
                            i.addr_at_lsq = now;
                        }
                        if is_store {
                            let mut delay = 0;
                            let mut iss = 0;
                            if let Some(i) = self.rob_get_mut(seq) {
                                i.store_addr_arrived = true;
                                delay = now.saturating_sub(i.dispatched_at);
                                iss = i.issued_at.saturating_sub(i.dispatched_at);
                                // Both halves at the LSQ: committable. (The
                                // address is only ever sent after AGEN, so
                                // the phase is already MemPending here.)
                                if i.store_data_arrived && i.phase == Phase::MemPending {
                                    i.phase = Phase::Done;
                                }
                            }
                            self.store_addr_delay_sum += delay;
                            self.store_issue_wait_sum += iss;
                            self.store_addr_count += 1;
                        } else {
                            let newly = match self.rob_get_mut(seq) {
                                Some(i) if !i.at_cache => {
                                    i.at_cache = true;
                                    true
                                }
                                _ => false,
                            };
                            if newly && !self.active_loads.contains(&seq) {
                                self.active_loads.push(seq);
                            }
                        }
                    }
                }
                Action::StoreData { seq } => {
                    if let Some(i) = self.rob_get_mut(seq) {
                        i.store_data_arrived = true;
                        // Data may arrive before AGEN finishes; the store
                        // then completes when its address arrives instead.
                        if i.store_addr_arrived && i.phase == Phase::MemPending {
                            i.phase = Phase::Done;
                        }
                    }
                }
                Action::CacheData { seq } => {
                    let cycle = self.cycle;
                    let (cluster, narrow, pc, has) = match self.rob_get(seq) {
                        Some(i) => (i.cluster, i.op.is_narrow_result(), i.op.pc(), true),
                        None => (0, false, 0, false),
                    };
                    if let Some(i) = self.rob_get(seq) {
                        self.load_lat_sum += cycle.saturating_sub(i.issued_at);
                        self.load_count += 1;
                    }
                    if has {
                        if let Some(i) = self.rob_get_mut(seq) {
                            i.phase = Phase::Done;
                        }
                        let slot = &mut self.values[seq as usize];
                        let v = slot.get_or_insert_with(|| ValueInfo::new(cluster, narrow, 0, pc));
                        v.done_at = Some(cycle);
                        let subs = std::mem::take(&mut v.subscribers);
                        for c in subs.iter() {
                            self.send_value_copy(seq, c, false);
                        }
                        self.wake_waiters(seq, cluster);
                    }
                }
                Action::BranchSignal => {
                    self.fetch
                        .redirect(self.cycle + self.config.mispredict_refill);
                    if P::ENABLED {
                        self.probe.fetch_resume(self.cycle);
                    }
                }
            }
        }
        self.delivered_scratch = delivered;
    }

    /// Flushes deferred sends whose time has come, in `(at, dseq)` order.
    fn process_deferred(&mut self) {
        while let Some(&Reverse(d)) = self.deferred.peek() {
            if d.at > self.cycle {
                break;
            }
            self.deferred.pop();
            let id = self
                .network
                .send_probed(d.transfer, self.cycle, &mut self.probe);
            self.record_action(id, d.action);
        }
    }

    /// Reference kernel: finds results produced this cycle by scanning the
    /// whole ROB for matured [`Phase::Executing`] entries.
    fn complete_execution_scan(&mut self) {
        let cycle = self.cycle;
        let mut finished = std::mem::take(&mut self.finished_scratch);
        finished.clear();
        for (i, inst) in self.rob.iter().enumerate() {
            if let Phase::Executing(done) = inst.phase {
                if done <= cycle {
                    finished.push(self.rob_base + i as u64);
                }
            }
        }
        for &seq in &finished {
            self.finish_one(seq);
        }
        self.finished_scratch = finished;
    }

    /// Event kernel: pops exactly the instructions completing this cycle
    /// from the wheel (already in seq order — the order the scan finds
    /// them in).
    fn complete_execution_event(&mut self) {
        let mut finished = std::mem::take(&mut self.finished_scratch);
        self.wheel.pop_due(self.cycle, &mut finished);
        for &seq in &finished {
            self.finish_one(seq);
        }
        self.finished_scratch = finished;
    }

    /// Completes one instruction whose execution finished this cycle:
    /// publishes the result and sends copies to subscribers, launches
    /// memory-op address transfers and branch signals.
    fn finish_one(&mut self, seq: u64) {
        let cycle = self.cycle;
        if P::ENABLED {
            self.probe.complete(cycle, seq);
        }
        {
            let (op, cluster, mispredict) = {
                let i = self.rob_get(seq).expect("in rob");
                (i.op, i.cluster, i.mispredict)
            };
            match op.op() {
                OpClass::Load => {
                    // AGEN finished: ship the address to the LSQ.
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::MemPending;
                    self.send_address(seq, cluster, op.op());
                }
                OpClass::Store => {
                    let inst = self.rob_get_mut(seq).expect("in rob");
                    inst.phase = Phase::MemPending;
                    inst.agen_done = true;
                    self.send_address(seq, cluster, op.op());
                }
                OpClass::Branch => {
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::Done;
                    if mispredict {
                        let (d, i) = {
                            let inst = self.rob_get(seq).expect("in rob");
                            (inst.dispatched_at, inst.issued_at)
                        };
                        let start = self.fetch.stall_started();
                        self.misp_dispatch_wait += d.saturating_sub(start);
                        self.misp_issue_wait += i.saturating_sub(d);
                        self.misp_exec_wait += cycle.saturating_sub(i);
                        self.misp_count += 1;
                        let class = if self.config.opts.branch_signal && self.policy.planes().l {
                            WireClass::L
                        } else {
                            self.policy.choose_probed(
                                MessageKind::RegisterValue,
                                TransferHints::default(),
                                cycle,
                                &mut self.probe,
                            )
                        };
                        let kind = if class == WireClass::L {
                            MessageKind::BranchMispredict
                        } else {
                            MessageKind::RegisterValue
                        };
                        let id = self.network.send_probed(
                            Transfer {
                                src: Node::Cluster(cluster),
                                dst: Node::Cache,
                                class,
                                kind,
                            },
                            cycle,
                            &mut self.probe,
                        );
                        self.record_action(id, Action::BranchSignal);
                    }
                }
                _ => {
                    // ALU result: publish and notify subscribers.
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::Done;
                    if let Some(d) = op.dest() {
                        let subs = {
                            let v = self.value_mut(seq).expect("value registered");
                            v.done_at = Some(cycle);
                            std::mem::take(&mut v.subscribers)
                        };
                        for c in subs.iter() {
                            self.send_value_copy(seq, c, false);
                        }
                        self.wake_waiters(seq, cluster);
                        // Train the narrow predictor on every integer
                        // result (the width detector sits next to the ALU).
                        if self.config.opts.narrow_operands
                            && self.config.opts.narrow_predictor
                            && d.class() == RegClass::Int
                        {
                            self.narrow.update(op.pc(), op.is_narrow_result());
                        }
                    }
                }
            }
        }
    }

    /// Sends the (partial +) full address of a load/store to the LSQ.
    fn send_address(&mut self, seq: u64, cluster: usize, _op: OpClass) {
        let cycle = self.cycle;
        if self.config.opts.cache_pipeline && self.policy.planes().l {
            let id = self.network.send_probed(
                Transfer {
                    src: Node::Cluster(cluster),
                    dst: Node::Cache,
                    class: WireClass::L,
                    kind: MessageKind::PartialAddress,
                },
                cycle,
                &mut self.probe,
            );
            self.record_action(id, Action::PartialAddr { seq });
        }
        let class = self.policy.choose_probed(
            MessageKind::FullAddress,
            TransferHints::default(),
            cycle,
            &mut self.probe,
        );
        let id = self.network.send_probed(
            Transfer {
                src: Node::Cluster(cluster),
                dst: Node::Cache,
                class,
                kind: MessageKind::FullAddress,
            },
            cycle,
            &mut self.probe,
        );
        self.record_action(id, Action::FullAddr { seq });
    }

    /// Advances loads at the cache through disambiguation and RAM access
    /// (shared by both kernels — the active-load list is already sparse).
    fn progress_memory_loads(&mut self) {
        let cycle = self.cycle;
        let use_partial = self.config.opts.cache_pipeline;

        // Loads at the LSQ/cache.
        let mut i = 0;
        while i < self.active_loads.len() {
            let seq = self.active_loads[i];
            let Some(inst) = self.rob_get(seq) else {
                self.active_loads.swap_remove(i);
                continue;
            };
            if inst.phase != Phase::MemPending {
                i += 1;
                continue;
            }
            let addr = inst.op.addr().expect("loads have addresses");
            let cluster = inst.cluster;
            let narrow = inst.op.is_narrow_result();
            let pc = inst.op.pc();
            let ram_start = inst.ram_start;
            match self
                .lsq
                .load_status_probed(seq, cycle, use_partial, &mut self.probe)
            {
                LoadStatus::PartialReady => {
                    if ram_start.is_none() {
                        self.rob_get_mut(seq).expect("in rob").ram_start = Some(cycle);
                        if P::ENABLED {
                            self.probe.lsq_partial_ready(cycle, seq);
                        }
                    }
                    i += 1;
                }
                LoadStatus::FullReady { forward } => {
                    {
                        let (at_lsq, issued) = {
                            let i = self.rob_get(seq).expect("in rob");
                            (i.addr_at_lsq, i.issued_at)
                        };
                        self.lsq_wait_sum += cycle.saturating_sub(at_lsq);
                        self.agen_to_lsq_sum += at_lsq.saturating_sub(issued);
                        self.lsq_wait_count += 1;
                    }
                    let data_ready = if forward {
                        cycle + 1
                    } else {
                        let accelerated =
                            use_partial && ram_start.map(|r| r < cycle).unwrap_or(false);
                        let rs = if accelerated {
                            ram_start.unwrap()
                        } else {
                            cycle
                        };
                        self.memory.load(addr, rs, cycle, accelerated)
                    };
                    // Return the data to the cluster over the network. The
                    // narrow predictor is only consulted for integer loads
                    // (FP loads are distinct opcodes and never narrow).
                    let int_dest = self
                        .rob_get(seq)
                        .and_then(|i| i.op.dest())
                        .map(|d| d.class() == RegClass::Int)
                        .unwrap_or(false);
                    let mut kind = MessageKind::CacheData;
                    if self.config.opts.narrow_operands && self.policy.planes().l && int_dest {
                        let predicted = if self.config.opts.narrow_predictor {
                            let p = self.narrow.predict(pc);
                            self.narrow.update(pc, narrow);
                            p
                        } else {
                            narrow
                        };
                        if predicted && narrow {
                            kind = MessageKind::NarrowValue;
                        }
                    }
                    let class = self.policy.choose_probed(
                        kind,
                        TransferHints::default(),
                        cycle,
                        &mut self.probe,
                    );
                    let kind = if class == WireClass::L {
                        kind
                    } else {
                        MessageKind::CacheData
                    };
                    self.defer_send(
                        data_ready,
                        Transfer {
                            src: Node::Cache,
                            dst: Node::Cluster(cluster),
                            class,
                            kind,
                        },
                        Action::CacheData { seq },
                    );
                    self.active_loads.swap_remove(i);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// Reference kernel: scans the whole ROB for stores whose data operand
    /// became ready and launches their data transfers.
    fn progress_memory_stores_scan(&mut self) {
        let cycle = self.cycle;
        // Store data: send once the data operand is ready in the cluster.
        let mut to_send = std::mem::take(&mut self.store_send_scratch);
        to_send.clear();
        for (off, inst) in self.rob.iter().enumerate() {
            if inst.op.op() != OpClass::Store || inst.store_data_sent {
                continue;
            }
            // Data operand is the second source when present.
            let ready = match inst.src_producer[1] {
                None => true,
                Some(p) => self
                    .value_ready_in(p, inst.cluster)
                    .map(|c| c <= cycle)
                    .unwrap_or(false),
            };
            if ready {
                to_send.push((self.rob_base + off as u64, inst.cluster));
            }
        }
        for &(seq, cluster) in &to_send {
            self.send_store_data(seq, cluster);
        }
        self.store_send_scratch = to_send;
    }

    /// Event kernel: drains the stores whose data operand became ready
    /// (registered at dispatch or woken by a value event), in seq order —
    /// the order the reference scan finds them in.
    fn progress_memory_stores_event(&mut self) {
        if self.store_data_pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.store_data_pending);
        pending.sort_unstable();
        for &s in &pending {
            let seq = u64::from(s);
            let cluster = match self.rob_get(seq) {
                Some(inst) if !inst.store_data_sent => inst.cluster,
                _ => continue, // already sent or squashed
            };
            self.send_store_data(seq, cluster);
        }
        pending.clear();
        self.store_data_pending = pending;
    }

    /// Launches one store's data transfer to the LSQ.
    fn send_store_data(&mut self, seq: u64, cluster: usize) {
        let cycle = self.cycle;
        let hints = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        let class =
            self.policy
                .choose_probed(MessageKind::StoreData, hints, cycle, &mut self.probe);
        let id = self.network.send_probed(
            Transfer {
                src: Node::Cluster(cluster),
                dst: Node::Cache,
                class,
                kind: MessageKind::StoreData,
            },
            cycle,
            &mut self.probe,
        );
        self.record_action(id, Action::StoreData { seq });
        self.rob_get_mut(seq).expect("in rob").store_data_sent = true;
    }

    /// Reference kernel: issues ready instructions to functional units by
    /// scanning the whole ROB (oldest first, one new op per FU kind per
    /// cluster per cycle).
    fn issue_scan(&mut self) {
        let cycle = self.cycle;
        for f in self.fu_started.iter_mut() {
            *f = [false; 4];
        }

        // Resolve cached source readiness lazily.
        let len = self.rob.len();
        for off in 0..len {
            let (cluster, phase, op) = {
                let i = &self.rob[off];
                (i.cluster, i.phase, i.op)
            };
            if phase != Phase::Waiting {
                continue;
            }
            let kind = op.op().unit();
            if self.fu_started[cluster][kind.index()] {
                continue;
            }
            if self.clusters[cluster].fu_free[kind.index()] > cycle {
                continue;
            }
            // Operand readiness: stores only need their address operand
            // (source 0) to begin AGEN.
            let needed = if op.op() == OpClass::Store { 1 } else { 2 };
            let mut ready = true;
            for s in 0..needed {
                let cached = self.rob[off].src_ready[s];
                if cached != u64::MAX {
                    if cached > cycle {
                        ready = false;
                        break;
                    }
                    continue;
                }
                match self.rob[off].src_producer[s] {
                    None => {
                        self.rob[off].src_ready[s] = 0;
                    }
                    Some(p) => match self.value_ready_in(p, cluster) {
                        Some(c) => {
                            self.rob[off].src_ready[s] = c;
                            if c > cycle {
                                ready = false;
                                break;
                            }
                        }
                        None => {
                            ready = false;
                            break;
                        }
                    },
                }
            }
            if !ready {
                continue;
            }

            // Issue.
            self.fu_started[cluster][kind.index()] = true;
            let latency = op.op().latency() as u64;
            let cs = &mut self.clusters[cluster];
            cs.fu_free[kind.index()] = if op.op().pipelined() {
                cycle + 1
            } else {
                cycle + latency
            };
            if op.op().is_fp() {
                cs.iq_fp_used = cs.iq_fp_used.saturating_sub(1);
            } else {
                cs.iq_int_used = cs.iq_int_used.saturating_sub(1);
            }
            self.rob[off].phase = Phase::Executing(cycle + latency);
            self.rob[off].issued_at = cycle;
            if P::ENABLED {
                self.probe.issue(cycle, self.rob_base + off as u64, cluster);
            }
        }
    }

    /// Event kernel: pops the oldest known-ready instruction per (cluster,
    /// FU kind) ready queue — exactly the instruction the reference scan
    /// would pick — and schedules its completion on the wheel.
    fn issue_event(&mut self) {
        let cycle = self.cycle;
        for cluster in 0..self.clusters.len() {
            for kind in 0..FU_KINDS {
                if self.clusters[cluster].fu_free[kind] > cycle {
                    continue;
                }
                let Some(Reverse(seq)) = self.ready_queues[cluster * FU_KINDS + kind].pop() else {
                    continue;
                };
                let op = self.rob_get(seq).expect("ready instr in rob").op;
                debug_assert_eq!(op.op().unit().index(), kind);
                let latency = op.op().latency() as u64;
                let cs = &mut self.clusters[cluster];
                cs.fu_free[kind] = if op.op().pipelined() {
                    cycle + 1
                } else {
                    cycle + latency
                };
                if op.op().is_fp() {
                    cs.iq_fp_used = cs.iq_fp_used.saturating_sub(1);
                } else {
                    cs.iq_int_used = cs.iq_int_used.saturating_sub(1);
                }
                let inst = self.rob_get_mut(seq).expect("ready instr in rob");
                inst.phase = Phase::Executing(cycle + latency);
                inst.issued_at = cycle;
                if P::ENABLED {
                    self.probe.issue(cycle, seq, cluster);
                }
                self.wheel.schedule(cycle, cycle + latency, seq);
            }
        }
    }

    /// Commits completed instructions from the ROB head.
    fn commit(&mut self) {
        let cycle = self.cycle;
        let mut budget = (self.config.dispatch_width as u64)
            .min(self.commit_target.saturating_sub(self.committed));
        while budget > 0 {
            let Some(head) = self.rob.front() else { break };
            if head.phase != Phase::Done {
                break;
            }
            let inst = self.rob.pop_front().expect("nonempty");
            let seq = self.rob_base;
            self.rob_base += 1;
            budget -= 1;
            self.committed += 1;
            if P::ENABLED {
                self.probe.commit(cycle, seq);
            }
            let cs = &mut self.clusters[inst.cluster];
            if let Some(d) = inst.op.dest() {
                if d.class() == RegClass::Fp {
                    cs.regs_fp_used = cs.regs_fp_used.saturating_sub(1);
                } else {
                    cs.regs_int_used = cs.regs_int_used.saturating_sub(1);
                }
            }
            if inst.op.op().is_mem() {
                self.lsq.retire_through(seq);
            }
            if inst.op.op() == OpClass::Store {
                let addr = inst.op.addr().expect("stores have addresses");
                self.memory.store(addr, cycle);
                // Retiring a store can unblock a waiting load's
                // disambiguation without any network event; the skipper
                // must poll the LSQ next cycle.
                self.retired_store = true;
            }
        }
    }

    /// Dispatches from the fetch queue into the ROB and issue queues.
    fn dispatch(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut budget = self.config.dispatch_width;
        while budget > 0 {
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            let Some(fetched) = self.fetch.peek().copied() else {
                break;
            };
            let op = fetched.op;

            // Gather producer info for steering.
            scratch.producers.clear();
            let mut src_producer = [None; 2];
            let mut youngest_pending: Option<u64> = None;
            for (s, slot) in op.src_slots().into_iter().enumerate() {
                let Some(reg) = slot else { continue };
                let p = self.rename[reg.flat_index()];
                src_producer[s] = p;
                if let Some(p) = p {
                    if let Some(v) = self.value(p) {
                        if v.done_at.is_none() && youngest_pending.map(|y| p > y).unwrap_or(true) {
                            youngest_pending = Some(p);
                        }
                        scratch.producers.push(ProducerInfo {
                            cluster: v.cluster,
                            critical: false,
                        });
                    }
                }
            }
            // Mark the youngest still-pending producer as critical.
            if let Some(y) = youngest_pending {
                let yc = self.value(y).expect("pending producer").cluster;
                if let Some(pi) = scratch.producers.iter_mut().find(|pi| pi.cluster == yc) {
                    pi.critical = true;
                }
            }

            // Resource views.
            let is_fp_q = op.op().is_fp();
            scratch.views.clear();
            scratch.views.extend(self.clusters.iter().map(|c| {
                let free_iq = if is_fp_q {
                    self.config.iq_per_cluster - c.iq_fp_used
                } else {
                    self.config.iq_per_cluster - c.iq_int_used
                };
                let free_regs = match op.dest() {
                    None => usize::MAX,
                    Some(d) if d.class() == RegClass::Fp => {
                        self.config.regs_per_cluster - c.regs_fp_used
                    }
                    Some(_) => self.config.regs_per_cluster - c.regs_int_used,
                };
                ClusterView { free_iq, free_regs }
            }));

            let chosen = self.steering.choose_into(
                op.op() == OpClass::Load,
                &scratch.producers,
                &scratch.views,
                &mut scratch.scores,
            );
            if P::ENABLED {
                self.probe.steer_decision(self.cycle, chosen);
            }
            let Some(cluster) = chosen else {
                break; // structural stall
            };

            // Consume the fetch-queue entry.
            let fetched = self.fetch.pop().expect("peeked");
            budget -= 1;
            self.dispatched += 1;

            // Allocate resources.
            {
                let cs = &mut self.clusters[cluster];
                if is_fp_q {
                    cs.iq_fp_used += 1;
                } else {
                    cs.iq_int_used += 1;
                }
                if let Some(d) = op.dest() {
                    if d.class() == RegClass::Fp {
                        cs.regs_fp_used += 1;
                    } else {
                        cs.regs_int_used += 1;
                    }
                }
            }
            let seq = op.seq();
            debug_assert_eq!(seq, self.rob_base + self.rob.len() as u64);
            debug_assert_eq!(seq as usize, self.values.len(), "seqs are dense");

            // Register the destination value (a slot exists for every
            // dispatched op, `None` when there is no destination) and
            // rename.
            self.values.push(
                op.dest()
                    .map(|_| ValueInfo::new(cluster, op.is_narrow_result(), op.result(), op.pc())),
            );
            if let Some(d) = op.dest() {
                self.rename[d.flat_index()] = Some(seq);
            }

            // Cross-cluster operand copies / subscriptions.
            for &p in src_producer.iter().flatten() {
                let (v_cluster, v_done, already) = {
                    let v = self.value(p).expect("present");
                    (
                        v.cluster,
                        v.done_at.is_some(),
                        v.arrivals[cluster] != NOT_SENT,
                    )
                };
                if v_cluster == cluster || already {
                    continue;
                }
                if v_done {
                    self.send_value_copy(p, cluster, true);
                } else {
                    let v = self.value_mut(p).expect("present");
                    v.subscribers.push_unique(cluster);
                }
            }

            // LSQ entry for memory ops.
            if op.op().is_mem() {
                self.lsq.insert(seq, op.op() == OpClass::Store);
            }

            self.rob.push_back(Inflight {
                op,
                cluster,
                phase: Phase::Waiting,
                src_producer,
                src_ready: [u64::MAX; 2],
                mispredict: fetched.mispredicted,
                dispatched_at: self.cycle,
                issued_at: 0,
                ram_start: None,
                at_cache: false,
                addr_at_lsq: 0,
                agen_done: false,
                store_data_sent: false,
                store_addr_arrived: false,
                store_data_arrived: false,
                pending_srcs: 0,
                waiter_next: [NO_WAITER; 2],
            });
            if P::ENABLED {
                self.probe.dispatch(self.cycle, seq, cluster, op.op());
            }

            // Event-kernel readiness registration. Value stamps are always
            // in the past, so `Some` here means usable now; `None` sources
            // link into the producer's waiter list and wake on the value's
            // publish/arrival event. Harmless (never drained) under the
            // reference kernel.
            let needed = if op.op() == OpClass::Store { 1 } else { 2 };
            let mut pending = 0u8;
            for (s, &producer) in src_producer.iter().enumerate().take(needed) {
                if let Some(p) = producer {
                    if self.value_ready_in(p, cluster).is_none() {
                        pending += 1;
                        self.register_waiter(p, cluster, seq, s);
                    }
                }
            }
            self.rob_get_mut(seq).expect("just pushed").pending_srcs = pending;
            if pending == 0 {
                self.ready_queues[cluster * FU_KINDS + op.op().unit().index()].push(Reverse(seq));
            }
            // Store data operand (slot 1) feeds the data-send queue, not
            // the issue queue.
            if op.op() == OpClass::Store {
                match src_producer[1] {
                    Some(p) if self.value_ready_in(p, cluster).is_none() => {
                        self.register_waiter(p, cluster, seq, 1);
                    }
                    _ => self.store_data_pending.push(seq as u32),
                }
            }
        }
        self.scratch = scratch;
    }

    /// Runs the simulation with the event-driven kernel until
    /// `instructions` have committed (with the first `warmup` committed
    /// instructions excluded from the returned statistics), and returns
    /// the results.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (no commit for 100 000 cycles) —
    /// this indicates a simulator bug, not a workload property.
    pub fn run(&mut self, instructions: u64, warmup: u64) -> SimResults {
        self.run_kernel(instructions, warmup, Kernel::Event)
    }

    /// Runs the seed's cycle-driven reference loop — full-ROB scans every
    /// cycle, no idle-cycle skipping. Kept so the equivalence tests can
    /// assert the event-driven kernel is bit-identical to it.
    pub fn run_reference(&mut self, instructions: u64, warmup: u64) -> SimResults {
        self.run_kernel(instructions, warmup, Kernel::Reference)
    }

    /// The earliest future cycle at which anything can happen, bounded by
    /// `cap` (the cycle where the deadlock detector must fire). Every term
    /// mirrors one way the reference loop's cycle body can act: a
    /// committable ROB head, dispatchable fetch-queue entries, a fetch /
    /// network / LSQ event, a deferred send, a wheel completion, a ready
    /// instruction waiting on its FU, pending store-data sends, or a store
    /// retirement that may re-disambiguate a waiting load.
    fn next_event_cycle(&self, cap: u64) -> u64 {
        let now = self.cycle;
        let soon = now + 1;
        if self.retired_store
            || !self.store_data_pending.is_empty()
            || self.rob.front().map(|i| i.phase == Phase::Done) == Some(true)
            || (self.fetch.queue_len() > 0 && self.rob.len() < self.config.rob_size)
        {
            return soon;
        }
        let mut next = cap;
        if let Some(c) = self.fetch.next_event_cycle(now) {
            next = next.min(c);
        }
        if let Some(c) = self.network.next_event_cycle(now) {
            next = next.min(c);
        }
        if let Some(Reverse(d)) = self.deferred.peek() {
            next = next.min(d.at);
        }
        if let Some(c) = self.wheel.next_due() {
            next = next.min(c.max(soon));
        }
        for (idx, q) in self.ready_queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let fu_free = self.clusters[idx / FU_KINDS].fu_free[idx % FU_KINDS];
            next = next.min(fu_free.max(soon));
        }
        if let Some(c) = self.lsq.next_event_cycle(now) {
            next = next.min(c);
        }
        next.max(soon)
    }

    fn run_kernel(&mut self, instructions: u64, warmup: u64, kernel: Kernel) -> SimResults {
        assert!(instructions > 0, "must simulate at least one instruction");
        let target = instructions + warmup;
        self.commit_target = target;
        let mut warm_cycle = 0u64;
        let mut warm_net = NetStats::default();
        let mut warm_narrow = (0u64, 0u64, 0u64, 0u64);
        let mut warm_done = warmup == 0;
        let mut last_commit_cycle = 0u64;
        let mut last_committed = 0u64;

        while self.committed < target {
            self.cycle += 1;
            self.retired_store = false;
            self.network.tick_probed(self.cycle, &mut self.probe);
            self.process_deliveries();
            self.process_deferred();
            match kernel {
                Kernel::Event => self.complete_execution_event(),
                Kernel::Reference => self.complete_execution_scan(),
            }
            self.progress_memory_loads();
            match kernel {
                Kernel::Event => self.progress_memory_stores_event(),
                Kernel::Reference => self.progress_memory_stores_scan(),
            }
            self.commit();
            match kernel {
                Kernel::Event => self.issue_event(),
                Kernel::Reference => self.issue_scan(),
            }
            self.dispatch();
            self.fetch.tick_probed(self.cycle, &mut self.probe);
            if P::ENABLED {
                // Once per *executed* cycle — skipped idle cycles are not
                // sampled, so histograms weight active cycles only.
                let ready: usize = self.ready_queues.iter().map(|q| q.len()).sum();
                self.probe
                    .occupancy(self.cycle, self.rob.len(), self.lsq.len(), ready);
            }

            if !warm_done && self.committed >= warmup {
                warm_done = true;
                warm_cycle = self.cycle;
                warm_net = self.network.stats();
                warm_narrow = (
                    self.narrow.hits,
                    self.narrow.missed,
                    self.narrow.false_narrow,
                    self.narrow.true_wide,
                );
            }
            if self.committed > last_committed {
                last_committed = self.committed;
                last_commit_cycle = self.cycle;
            } else if self.cycle - last_commit_cycle > 100_000 {
                panic!(
                    "pipeline deadlock at cycle {}: committed {}, rob {}, \
                     head {:?}",
                    self.cycle,
                    self.committed,
                    self.rob.len(),
                    self.rob.front().map(|i| (i.op, i.phase)),
                );
            }
            if self.fetch.is_done() && self.rob.is_empty() {
                break;
            }
            if matches!(kernel, Kernel::Event) {
                // Idle-cycle skipping: jump to the cycle before the next
                // event (capped so the deadlock panic above still fires at
                // the reference loop's exact cycle). Skipped cycles are
                // no-ops in the reference loop except for fetch's stall
                // counter, which is credited in bulk.
                let next = self.next_event_cycle(last_commit_cycle + 100_001);
                if next > self.cycle + 1 {
                    self.fetch.note_skipped_stall_cycles(next - 1 - self.cycle);
                    self.cycle = next - 1;
                }
            }
        }

        let cycles = self.cycle - warm_cycle;
        let insts = self.committed - warmup.min(self.committed);
        let net = self.network.stats();
        let mut measured = net;
        for i in 0..4 {
            measured.transfers[i] -= warm_net.transfers[i];
            measured.bit_hops[i] -= warm_net.bit_hops[i];
        }
        measured.dynamic_energy -= warm_net.dynamic_energy;
        measured.queue_cycles -= warm_net.queue_cycles;
        measured.delivered -= warm_net.delivered;

        // Warmup-excluded narrow-predictor rates.
        let hits = self.narrow.hits - warm_narrow.0;
        let missed = self.narrow.missed - warm_narrow.1;
        let false_narrow = self.narrow.false_narrow - warm_narrow.2;
        let narrow_coverage = if hits + missed == 0 {
            0.0
        } else {
            hits as f64 / (hits + missed) as f64
        };
        let narrow_false_rate = if hits + false_narrow == 0 {
            0.0
        } else {
            false_narrow as f64 / (hits + false_narrow) as f64
        };

        SimResults {
            instructions: insts,
            cycles,
            net: measured,
            leakage_weight: self.network.leakage_weight(),
            fetch: self.fetch.stats(),
            lsq: self.lsq.stats(),
            mem: self.memory.stats(),
            narrow_coverage,
            narrow_false_rate,
            metal_area: self.network.metal_area(),
        }
    }

    /// The attached probe (e.g. to read recordings after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the attached probe (e.g. to flush final samples).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// The interconnect (telemetry needs link labels and queue depths).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Overrides the steering weights (must be called before `run`).
    pub fn set_steering_weights(&mut self, weights: SteeringWeights) {
        self.steering = Steering::new(self.config.topology, weights);
    }

    /// Mean load latency from address generation to data arrival at the
    /// consuming cluster.
    pub fn mean_load_latency(&self) -> f64 {
        self.load_lat_sum as f64 / self.load_count.max(1) as f64
    }

    /// Mean `(AGEN issue -> address at LSQ, address at LSQ -> disambiguated)`
    /// cycles for loads.
    pub fn load_lsq_breakdown(&self) -> (f64, f64) {
        let n = self.lsq_wait_count.max(1) as f64;
        (
            self.agen_to_lsq_sum as f64 / n,
            self.lsq_wait_sum as f64 / n,
        )
    }

    /// Mean cycles from a store's dispatch to its address reaching the LSQ.
    pub fn mean_store_addr_delay(&self) -> f64 {
        self.store_addr_delay_sum as f64 / self.store_addr_count.max(1) as f64
    }

    /// Mean cycles from a store's dispatch to its AGEN issuing.
    pub fn mean_store_issue_wait(&self) -> f64 {
        self.store_issue_wait_sum as f64 / self.store_addr_count.max(1) as f64
    }

    /// Mean mispredict-resolution breakdown:
    /// `(stall->dispatch, dispatch->issue, issue->resolve)` cycles.
    pub fn mispredict_breakdown(&self) -> (f64, f64, f64) {
        let n = self.misp_count.max(1) as f64;
        (
            self.misp_dispatch_wait as f64 / n,
            self.misp_issue_wait as f64 / n,
            self.misp_exec_wait as f64 / n,
        )
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The topology in effect.
    pub fn topology(&self) -> Topology {
        self.config.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterconnectModel;
    use heterowire_trace::profile;

    fn run_model(model: InterconnectModel, bench: &str, n: u64) -> SimResults {
        let config = ProcessorConfig::for_model(model, Topology::crossbar4());
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 99);
        Processor::simulate(config, trace, n, n / 10)
    }

    #[test]
    fn baseline_ipc_is_plausible() {
        let r = run_model(InterconnectModel::I, "gzip", 20_000);
        let ipc = r.ipc();
        assert!((0.3..=6.0).contains(&ipc), "gzip IPC {ipc}");
        assert!(r.instructions == 20_000);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = run_model(InterconnectModel::VII, "vpr", 10_000);
        let b = run_model(InterconnectModel::VII, "vpr", 10_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.net.transfers, b.net.transfers);
    }

    #[test]
    fn l_wires_do_not_hurt_performance() {
        // Model VII = Model I's B-wires + an L plane with all three L
        // optimizations; across a few benchmarks the mean IPC must not drop.
        let mut base = 0.0;
        let mut lwire = 0.0;
        for b in ["gzip", "mcf", "swim"] {
            base += run_model(InterconnectModel::I, b, 10_000).ipc();
            lwire += run_model(InterconnectModel::VII, b, 10_000).ipc();
        }
        assert!(
            lwire >= base * 0.99,
            "L-wires should help: base {base}, with L {lwire}"
        );
    }

    #[test]
    fn pw_only_interconnect_is_slower() {
        let base = run_model(InterconnectModel::I, "gcc", 10_000).ipc();
        let pw = run_model(InterconnectModel::II, "gcc", 10_000).ipc();
        assert!(pw <= base, "PW-only must not beat B-wires: {pw} vs {base}");
    }

    #[test]
    fn doubled_latency_degrades_performance() {
        let mut fast = ProcessorConfig::baseline4();
        let mut slow = ProcessorConfig::baseline4();
        slow.latency_scale = 2.0;
        let trace = || TraceGenerator::new(profile::by_name("vortex").unwrap(), 7);
        let f = Processor::simulate(fast.clone(), trace(), 10_000, 1_000);
        let s = Processor::simulate(slow.clone(), trace(), 10_000, 1_000);
        assert!(
            s.ipc() < f.ipc(),
            "doubling wire latency must cost IPC: {} vs {}",
            s.ipc(),
            f.ipc()
        );
        // keep clippy quiet about mut
        fast.latency_scale = 1.0;
    }

    #[test]
    fn traffic_flows_on_the_network() {
        let r = run_model(InterconnectModel::I, "gzip", 10_000);
        assert!(r.net.total_transfers() > 1_000, "{:?}", r.net.transfers);
        let tpi = r.transfers_per_inst();
        assert!((0.1..=3.0).contains(&tpi), "transfers/inst {tpi}");
    }

    #[test]
    fn model_x_uses_all_three_planes() {
        let r = run_model(InterconnectModel::X, "gcc", 10_000);
        for (i, class) in WireClass::ALL.iter().enumerate() {
            if *class == WireClass::W {
                continue;
            }
            assert!(
                r.net.transfers[i] > 0,
                "{class} plane unused: {:?}",
                r.net.transfers
            );
        }
    }

    #[test]
    fn hier16_runs_and_exceeds_4cluster_ilp_on_fp() {
        let c4 = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let c16 = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
        let t = || TraceGenerator::new(profile::by_name("swim").unwrap(), 5);
        let r4 = Processor::simulate(c4, t(), 10_000, 1_000);
        let r16 = Processor::simulate(c16, t(), 10_000, 1_000);
        assert!(r16.ipc() > 0.0);
        // 16 clusters offer more FUs/registers; high-ILP FP codes gain.
        assert!(
            r16.ipc() > r4.ipc() * 0.9,
            "16-cluster should be competitive: {} vs {}",
            r16.ipc(),
            r4.ipc()
        );
    }

    #[test]
    fn false_dependence_rate_is_low_with_8_ls_bits() {
        let r = run_model(InterconnectModel::VII, "gcc", 20_000);
        let rate = r.lsq.false_dependence_rate();
        assert!(rate < 0.09, "paper: <9% false deps, got {rate}");
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::config::{Extensions, InterconnectModel};
    use heterowire_trace::profile;

    fn run_ext(ext: Extensions, latency_scale: f64, bench: &str) -> SimResults {
        let mut config = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        config.extensions = ext;
        config.latency_scale = latency_scale;
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 31);
        Processor::simulate(config, trace, 10_000, 3_000)
    }

    #[test]
    fn critical_word_first_helps_memory_bound_code() {
        let base = run_ext(Extensions::default(), 1.0, "mcf");
        let cwf = run_ext(
            Extensions {
                l2_critical_word: true,
                ..Extensions::default()
            },
            1.0,
            "mcf",
        );
        assert!(
            cwf.ipc() >= base.ipc(),
            "CWF should not hurt: {} vs {}",
            cwf.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn frequent_value_compaction_moves_traffic_to_l_wires() {
        let base = run_ext(Extensions::default(), 1.0, "gcc");
        let fvc = run_ext(
            Extensions {
                frequent_value: true,
                ..Extensions::default()
            },
            1.0,
            "gcc",
        );
        let l = WireClass::ALL
            .iter()
            .position(|&c| c == WireClass::L)
            .unwrap();
        assert!(
            fvc.net.transfers[l] >= base.net.transfers[l],
            "FVC should add L traffic: {:?} vs {:?}",
            fvc.net.transfers,
            base.net.transfers
        );
        assert!(fvc.ipc() >= base.ipc() * 0.99);
    }

    #[test]
    fn transmission_lines_resist_latency_scaling() {
        // At 2x wire-constrained latency, TL L-wires keep their 1-cycle
        // crossbar latency, so the TL machine must be at least as fast.
        let rc = run_ext(Extensions::default(), 2.0, "gzip");
        let tl = run_ext(
            Extensions {
                transmission_lines: true,
                ..Extensions::default()
            },
            2.0,
            "gzip",
        );
        assert!(
            tl.ipc() >= rc.ipc(),
            "TL L-wires should not be slower: {} vs {}",
            tl.ipc(),
            rc.ipc()
        );
        // ... and their dynamic energy must be lower (1/3 per L bit-hop).
        assert!(tl.net.dynamic_energy < rc.net.dynamic_energy);
    }
}

#[cfg(test)]
mod mechanism_tests {
    //! Tests pinning individual wire-management mechanisms inside the full
    //! pipeline (beyond the aggregate behaviour covered above).

    use super::*;
    use crate::config::InterconnectModel;
    use heterowire_trace::profile;

    fn run(model: InterconnectModel, bench: &str, n: u64) -> (Processor, SimResults) {
        let config = ProcessorConfig::for_model(model, Topology::crossbar4());
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 77);
        let mut p = Processor::new(config, trace);
        let r = p.run(n, n / 4);
        (p, r)
    }

    #[test]
    fn store_data_rides_pw_wires_in_model_v() {
        // Model V has B + PW: the PW plane must carry the store-data and
        // ready-at-dispatch traffic (paper: 36% of transfers).
        let (_, r) = run(InterconnectModel::V, "vortex", 10_000);
        let pw_share = r.net.class_share(WireClass::Pw);
        assert!(
            (0.10..=0.70).contains(&pw_share),
            "PW share {pw_share} out of plausible range"
        );
    }

    #[test]
    fn model_i_has_no_l_or_pw_traffic() {
        let (_, r) = run(InterconnectModel::I, "gap", 5_000);
        assert_eq!(r.net.transfers[0], 0, "W plane never used");
        assert_eq!(r.net.transfers[1], 0, "no PW plane in Model I");
        assert_eq!(r.net.transfers[3], 0, "no L plane in Model I");
        assert!(r.net.transfers[2] > 0);
    }

    #[test]
    fn partial_addresses_reach_the_lsq_only_with_l_wires() {
        let (_, base) = run(InterconnectModel::I, "parser", 8_000);
        let (_, l) = run(InterconnectModel::VII, "parser", 8_000);
        assert_eq!(base.lsq.partial_matches, 0, "baseline sends no partials");
        assert!(
            l.lsq.partial_matches > 0,
            "the L-Wire pipeline must exercise partial comparisons"
        );
    }

    #[test]
    fn forwards_happen_through_the_lsq() {
        // Store-to-load forwarding must occur on workloads with memory
        // reuse.
        let mut total = 0;
        for b in ["gcc", "vortex", "crafty"] {
            let (_, r) = run(InterconnectModel::I, b, 10_000);
            total += r.lsq.forwards;
        }
        assert!(total > 0, "no store-to-load forwarding observed");
    }

    #[test]
    fn mispredict_penalty_includes_refill() {
        let (_, r) = run(InterconnectModel::I, "twolf", 10_000);
        // The floor is resolution + signal + 12-cycle refill.
        assert!(
            r.fetch.mean_mispredict_penalty() >= 12.0,
            "penalty {}",
            r.fetch.mean_mispredict_penalty()
        );
    }

    #[test]
    fn load_latency_breakdown_is_consistent() {
        let (p, _) = run(InterconnectModel::I, "gzip", 10_000);
        let (agen_to_lsq, lsq_block) = p.load_lsq_breakdown();
        let total = p.mean_load_latency();
        assert!(agen_to_lsq >= 1.0, "addresses take at least a cycle");
        assert!(lsq_block >= 0.0);
        assert!(
            total >= agen_to_lsq,
            "total {total} < addr transfer {agen_to_lsq}"
        );
    }

    #[test]
    fn sixteen_cluster_ring_traffic_exists() {
        let config = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
        let trace = TraceGenerator::new(profile::by_name("swim").unwrap(), 77);
        let r = Processor::simulate(config, trace, 8_000, 2_000);
        assert!(r.net.total_transfers() > 0);
        // Leakage weight of the 16-cluster net exceeds the 4-cluster one
        // (more links).
        let c4 = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let r4 = Processor::simulate(
            c4,
            TraceGenerator::new(profile::by_name("swim").unwrap(), 77),
            2_000,
            500,
        );
        assert!(r.leakage_weight > r4.leakage_weight);
    }

    #[test]
    fn rob_never_exceeds_capacity() {
        // Indirectly: a tiny ROB must slow the machine down, proving the
        // cap binds.
        let mut small = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        small.rob_size = 16;
        let big = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let t = || TraceGenerator::new(profile::by_name("swim").unwrap(), 5);
        let rs = Processor::simulate(small, t(), 5_000, 1_000);
        let rb = Processor::simulate(big, t(), 5_000, 1_000);
        assert!(
            rs.ipc() < rb.ipc(),
            "16-entry ROB ({}) should lose to 480 ({})",
            rs.ipc(),
            rb.ipc()
        );
    }

    #[test]
    fn narrower_dispatch_hurts() {
        let mut narrow_cfg =
            ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        narrow_cfg.dispatch_width = 2;
        let t = || TraceGenerator::new(profile::by_name("apsi").unwrap(), 5);
        let narrow = Processor::simulate(narrow_cfg, t(), 5_000, 1_000);
        let wide = Processor::simulate(
            ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4()),
            t(),
            5_000,
            1_000,
        );
        assert!(narrow.ipc() <= wide.ipc());
    }

    #[test]
    fn oracle_narrow_mode_never_sends_false_narrow() {
        let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        cfg.opts.narrow_predictor = false; // oracle width knowledge
        let trace = TraceGenerator::new(profile::by_name("bzip2").unwrap(), 8);
        let r = Processor::simulate(cfg, trace, 8_000, 2_000);
        assert_eq!(r.narrow_false_rate, 0.0, "oracle mode mispredicted width");
        assert!(r.net.transfers[3] > 0, "oracle mode still uses L wires");
    }
}
