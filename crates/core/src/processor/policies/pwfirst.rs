//! PW-first steering: the bandwidth-aware inversion of the paper's rule —
//! slow wires by default, fast wires only where slack analysis says the
//! latency would be exposed.

use heterowire_interconnect::{AvailablePlanes, LoadBalancer, MessageKind};
use heterowire_telemetry::Probe;
use heterowire_wires::WireClass;

use super::super::policy::{CacheReturn, NarrowStats, SendDecision, TransferPolicy, ValueCopy};
use super::{full_width, planes_for};
use crate::config::ProcessorConfig;
use crate::narrow::NarrowPredictor;

/// Defaults every non-wakeup transfer to PW-Wires and promotes to B/L only
/// when the latency is *not* hidden. Decision table:
///
/// | transfer                               | decision |
/// |----------------------------------------|----------|
/// | value copy, latency hidden (see below) | PW, overflow-diverted to B when the balancer says the PW plane is saturated |
/// | value copy, exposed, predicted narrow  | L `NarrowValue` (false-narrow pays the 1-cycle replay) |
/// | value copy, exposed, wide              | B |
/// | cache data return (wakes a consumer)   | narrow int loads on L, rest on B |
/// | full address / store data              | PW with overflow diversion |
/// | partial address / branch signal        | L fast paths |
///
/// The slack analysis considers a copy's latency hidden when the consumer
/// had already seen the value at dispatch (`ready_at_dispatch` — nobody is
/// waiting yet), or when the destination cluster's issue queues sit at or
/// above a watermark (the consumer will queue behind a backlog that
/// overlaps the slower wire anyway). The watermark is one full queue's
/// worth of the combined int+fp occupancy.
///
/// "Bandwidth-aware" is the [`LoadBalancer`] running in reverse: instead
/// of spilling B overflow onto PW like the paper, it watches the PW-heavy
/// injection mix and diverts to B once the imbalance exceeds the paper's
/// threshold, so the inversion does not serialize on the PW lanes it
/// favours. Every full-width pick is clamped to a plane the link has.
#[derive(Debug)]
pub struct PwFirstPolicy {
    planes: AvailablePlanes,
    narrow: NarrowPredictor,
    balancer: LoadBalancer,
    /// Combined int+fp issue-queue occupancy at which a consumer cluster
    /// counts as backlogged (latency hidden by queueing).
    iq_watermark: usize,
}

impl PwFirstPolicy {
    /// Builds the policy for a configuration's link, with the watermark
    /// derived from the configured issue-queue size.
    pub fn new(config: &ProcessorConfig) -> Self {
        PwFirstPolicy {
            planes: planes_for(&config.link),
            narrow: NarrowPredictor::paper(),
            balancer: LoadBalancer::paper(),
            iq_watermark: config.iq_per_cluster,
        }
    }

    /// A PW-preferred full-width pick with bandwidth overflow: diverts to
    /// B when the recent injection mix is PW-heavy past the threshold.
    fn pw_with_overflow(&mut self, cycle: u64) -> WireClass {
        let mut class = full_width(self.planes, WireClass::Pw);
        if class == WireClass::Pw
            && self.planes.b
            && self.balancer.overflow_target(cycle) == Some(WireClass::B)
        {
            class = WireClass::B;
        }
        self.balancer.record(cycle, class == WireClass::Pw);
        class
    }

    /// A B-preferred full-width pick (promoted traffic), recorded so the
    /// balancer sees the whole injection mix.
    fn promoted(&mut self, cycle: u64) -> WireClass {
        let class = full_width(self.planes, WireClass::B);
        self.balancer.record(cycle, class == WireClass::Pw);
        class
    }
}

impl TransferPolicy for PwFirstPolicy {
    fn value_copy<P: Probe>(&mut self, req: ValueCopy, cycle: u64, _probe: &mut P) -> SendDecision {
        let hidden = req.ready_at_dispatch || req.dest_iq_used >= self.iq_watermark;
        if hidden {
            return SendDecision {
                class: self.pw_with_overflow(cycle),
                kind: MessageKind::RegisterValue,
                delay: 0,
            };
        }
        // Exposed latency: promote. Narrow predicted values take L, the
        // rest the baseline plane.
        let mut delay = 0;
        if self.planes.l {
            let predicted = self.narrow.predict(req.pc);
            if predicted && req.narrow {
                return SendDecision {
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                    delay: 0,
                };
            }
            if predicted && !req.narrow {
                delay = 1;
            }
        }
        SendDecision {
            class: self.promoted(cycle),
            kind: MessageKind::RegisterValue,
            delay,
        }
    }

    fn cache_data<P: Probe>(
        &mut self,
        req: CacheReturn,
        cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        // Load returns are wakeup traffic: promoted, never PW-defaulted.
        if self.planes.l && req.int_dest {
            let predicted = self.narrow.predict(req.pc);
            self.narrow.update(req.pc, req.narrow);
            if predicted && req.narrow {
                return SendDecision {
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                    delay: 0,
                };
            }
        }
        SendDecision {
            class: self.promoted(cycle),
            kind: MessageKind::CacheData,
            delay: 0,
        }
    }

    fn dispatches_partial_address(&self) -> bool {
        self.planes.l
    }

    fn full_address<P: Probe>(&mut self, cycle: u64, _probe: &mut P) -> WireClass {
        self.pw_with_overflow(cycle)
    }

    fn store_data<P: Probe>(&mut self, cycle: u64, _probe: &mut P) -> WireClass {
        self.pw_with_overflow(cycle)
    }

    fn branch_signal<P: Probe>(&mut self, cycle: u64, _probe: &mut P) -> SendDecision {
        if self.planes.l {
            SendDecision {
                class: WireClass::L,
                kind: MessageKind::BranchMispredict,
                delay: 0,
            }
        } else {
            SendDecision {
                class: self.promoted(cycle),
                kind: MessageKind::RegisterValue,
                delay: 0,
            }
        }
    }

    fn observe_result(&mut self, pc: u64, narrow: bool) {
        self.narrow.update(pc, narrow);
    }

    fn narrow_stats(&self) -> NarrowStats {
        NarrowStats {
            hits: self.narrow.hits,
            missed: self.narrow.missed,
            false_narrow: self.narrow.false_narrow,
            true_wide: self.narrow.true_wide,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterconnectModel, ModelSpec};
    use heterowire_interconnect::Topology;
    use heterowire_telemetry::NullProbe;

    fn policy() -> PwFirstPolicy {
        PwFirstPolicy::new(&ProcessorConfig::for_model(
            InterconnectModel::X,
            Topology::crossbar4(),
        ))
    }

    fn copy(ready: bool, iq_used: usize) -> ValueCopy {
        ValueCopy {
            narrow: false,
            value: u64::MAX,
            pc: 0x40,
            ready_at_dispatch: ready,
            critical: false,
            src_cluster: 0,
            dst_cluster: 1,
            dest_iq_used: iq_used,
        }
    }

    #[test]
    fn hidden_latency_defaults_to_pw() {
        let mut p = policy();
        // Ready at dispatch: hidden regardless of occupancy.
        assert_eq!(
            p.value_copy(copy(true, 0), 0, &mut NullProbe).class,
            WireClass::Pw
        );
        // Backlogged destination queue: hidden.
        assert_eq!(
            p.value_copy(copy(false, 15), 0, &mut NullProbe).class,
            WireClass::Pw
        );
        // Non-wakeup traffic too.
        assert_eq!(p.full_address(0, &mut NullProbe), WireClass::Pw);
        assert_eq!(p.store_data(0, &mut NullProbe), WireClass::Pw);
    }

    #[test]
    fn exposed_latency_promotes_to_b() {
        let mut p = policy();
        let d = p.value_copy(copy(false, 0), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        assert_eq!(d.kind, MessageKind::RegisterValue);
    }

    #[test]
    fn pw_saturation_diverts_overflow_to_b() {
        let mut p = policy();
        // 11 PW injections in one window: imbalance 11 - 0 > 10.
        for _ in 0..11 {
            assert_eq!(p.store_data(10, &mut NullProbe), WireClass::Pw);
        }
        assert_eq!(p.store_data(10, &mut NullProbe), WireClass::B);
    }

    #[test]
    fn exposed_narrow_values_take_l() {
        let mut p = policy();
        for _ in 0..3 {
            p.observe_result(0x40, true);
        }
        let d = p.value_copy(
            ValueCopy {
                narrow: true,
                value: 3,
                ..copy(false, 0)
            },
            0,
            &mut NullProbe,
        );
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::NarrowValue);
        // False-narrow still replays.
        let d = p.value_copy(copy(false, 0), 0, &mut NullProbe);
        assert_eq!(d.delay, 1);
    }

    #[test]
    fn degrades_gracefully_on_b_only_links() {
        let spec = ModelSpec::parse("custom:b144").unwrap();
        let cfg = ProcessorConfig::for_model_spec(&spec, Topology::crossbar4());
        let mut p = PwFirstPolicy::new(&cfg);
        // The PW default clamps to B instead of queueing on a missing plane.
        assert_eq!(p.store_data(0, &mut NullProbe), WireClass::B);
        assert_eq!(
            p.value_copy(copy(true, 0), 0, &mut NullProbe).class,
            WireClass::B
        );
        assert_eq!(p.branch_signal(0, &mut NullProbe).class, WireClass::B);
        assert!(!p.dispatches_partial_address());
    }
}
