//! Criticality-first steering: L-Wires for whatever a consumer is
//! actually waiting on, even when wide.

use heterowire_interconnect::{AvailablePlanes, MessageKind, Node, Topology};
use heterowire_telemetry::Probe;
use heterowire_wires::WireClass;

use super::super::policy::{CacheReturn, NarrowStats, SendDecision, TransferPolicy, ValueCopy};
use super::{full_width, planes_for};
use crate::config::ProcessorConfig;
use crate::narrow::NarrowPredictor;

/// Drives L-Wire use off the criticality predictor instead of the paper's
/// width-first rule. Decision table for register-value copies:
///
/// | copy                                  | decision |
/// |---------------------------------------|----------|
/// | value was ready at consumer dispatch  | PW full-width (slack existed) |
/// | waiting consumer, predicted narrow    | L, compacted `NarrowValue` (false-narrow pays the usual 1-cycle replay) |
/// | waiting + marked last-arriving, wide  | L, chunked `SplitValue` — when the serialized L route still beats the full-width route |
/// | any other waiting consumer            | B full-width |
///
/// Partial addresses and branch signals keep their L fast paths; store
/// data rides PW, full addresses ride B. Every full-width pick is clamped
/// to a plane the link actually has.
///
/// The split-vs-full comparison uses the unscaled per-class route
/// latencies: on a flat crossbar a split transfer (1 + 3 chunk cycles)
/// loses to B (2) and is never chosen, while a cross-ring hop on the
/// 16-cluster topology (L 5 + 3 vs B 10) is exactly where the paper's
/// §4.2 value splitting pays off.
#[derive(Debug)]
pub struct CriticalityPolicy {
    planes: AvailablePlanes,
    topology: Topology,
    narrow: NarrowPredictor,
}

impl CriticalityPolicy {
    /// Builds the policy for a configuration's link and topology.
    pub fn new(config: &ProcessorConfig) -> Self {
        CriticalityPolicy {
            planes: planes_for(&config.link),
            topology: config.topology,
            narrow: NarrowPredictor::paper(),
        }
    }

    /// True when splitting a wide value across L-Wire chunks from
    /// `src` to `dst` beats the available full-width plane.
    fn split_wins(&self, src: usize, dst: usize, full: WireClass) -> bool {
        let (src, dst) = (Node::Cluster(src), Node::Cluster(dst));
        let split = self.topology.route_inline(src, dst, WireClass::L).latency
            + MessageKind::SplitValue.serialization_cycles(WireClass::L);
        split < self.topology.route_inline(src, dst, full).latency
    }
}

impl TransferPolicy for CriticalityPolicy {
    fn value_copy<P: Probe>(
        &mut self,
        req: ValueCopy,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        if req.ready_at_dispatch {
            // The consumer dispatched after the value completed: the
            // dispatch-to-issue gap hides a slow wire.
            return SendDecision {
                class: full_width(self.planes, WireClass::Pw),
                kind: MessageKind::RegisterValue,
                delay: 0,
            };
        }
        let mut delay = 0;
        if self.planes.l {
            let predicted = self.narrow.predict(req.pc);
            if predicted && req.narrow {
                return SendDecision {
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                    delay: 0,
                };
            }
            if predicted && !req.narrow {
                // False-narrow: tags went ahead on L-Wires; reschedule the
                // wide value next cycle, same as the paper policy.
                delay = 1;
            }
            let full = full_width(self.planes, WireClass::B);
            if req.critical && self.split_wins(req.src_cluster, req.dst_cluster, full) {
                return SendDecision {
                    class: WireClass::L,
                    kind: MessageKind::SplitValue,
                    delay,
                };
            }
        }
        SendDecision {
            class: full_width(self.planes, WireClass::B),
            kind: MessageKind::RegisterValue,
            delay,
        }
    }

    fn cache_data<P: Probe>(
        &mut self,
        req: CacheReturn,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        // Load returns wake waiting consumers: narrow ones take the L fast
        // path (predicted, trained at return like the paper), wide ones B.
        if self.planes.l && req.int_dest {
            let predicted = self.narrow.predict(req.pc);
            self.narrow.update(req.pc, req.narrow);
            if predicted && req.narrow {
                return SendDecision {
                    class: WireClass::L,
                    kind: MessageKind::NarrowValue,
                    delay: 0,
                };
            }
        }
        SendDecision {
            class: full_width(self.planes, WireClass::B),
            kind: MessageKind::CacheData,
            delay: 0,
        }
    }

    fn dispatches_partial_address(&self) -> bool {
        self.planes.l
    }

    fn full_address<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        full_width(self.planes, WireClass::B)
    }

    fn store_data<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        full_width(self.planes, WireClass::Pw)
    }

    fn branch_signal<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> SendDecision {
        if self.planes.l {
            SendDecision {
                class: WireClass::L,
                kind: MessageKind::BranchMispredict,
                delay: 0,
            }
        } else {
            SendDecision {
                class: full_width(self.planes, WireClass::B),
                kind: MessageKind::RegisterValue,
                delay: 0,
            }
        }
    }

    fn observe_result(&mut self, pc: u64, narrow: bool) {
        self.narrow.update(pc, narrow);
    }

    fn narrow_stats(&self) -> NarrowStats {
        NarrowStats {
            hits: self.narrow.hits,
            missed: self.narrow.missed,
            false_narrow: self.narrow.false_narrow,
            true_wide: self.narrow.true_wide,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterconnectModel, ModelSpec};
    use heterowire_telemetry::NullProbe;

    fn copy(narrow: bool, ready: bool, critical: bool, src: usize, dst: usize) -> ValueCopy {
        ValueCopy {
            narrow,
            value: if narrow { 3 } else { u64::MAX },
            pc: 0x40,
            ready_at_dispatch: ready,
            critical,
            src_cluster: src,
            dst_cluster: dst,
            dest_iq_used: 0,
        }
    }

    fn policy(topology: Topology) -> CriticalityPolicy {
        CriticalityPolicy::new(&ProcessorConfig::for_model(InterconnectModel::X, topology))
    }

    #[test]
    fn slackful_copies_ride_pw() {
        let mut p = policy(Topology::crossbar4());
        let d = p.value_copy(copy(false, true, false, 0, 1), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::Pw);
        assert_eq!(d.kind, MessageKind::RegisterValue);
    }

    #[test]
    fn critical_wide_copies_split_on_long_routes_only() {
        // Crossbar: split (1+3) loses to B (2) — stay on B.
        let mut p = policy(Topology::crossbar4());
        let d = p.value_copy(copy(false, false, true, 0, 1), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        // Cross-ring on hier16: split (1+2*2+3=8) beats B (2+2*4=10).
        let mut p = policy(Topology::hier16());
        let d = p.value_copy(copy(false, false, true, 0, 8), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::SplitValue);
        // Same quad: split (1+3) loses to B (2) again.
        let d = p.value_copy(copy(false, false, true, 4, 7), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        assert_eq!(d.kind, MessageKind::RegisterValue);
    }

    #[test]
    fn predicted_narrow_waiting_copies_take_l() {
        let mut p = policy(Topology::crossbar4());
        for _ in 0..3 {
            p.observe_result(0x40, true);
        }
        let d = p.value_copy(copy(true, false, false, 0, 1), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::NarrowValue);
        // False-narrow pays the 1-cycle replay even on the split path.
        let d = p.value_copy(copy(false, false, true, 0, 1), 0, &mut NullProbe);
        assert_eq!(d.delay, 1);
        assert_eq!(d.kind, MessageKind::RegisterValue);
    }

    #[test]
    fn degrades_gracefully_without_l_or_pw_planes() {
        // B-only custom link: every decision must clamp to B.
        let spec = ModelSpec::parse("custom:b144").unwrap();
        let cfg = ProcessorConfig::for_model_spec(&spec, Topology::hier16());
        let mut p = CriticalityPolicy::new(&cfg);
        assert!(!p.dispatches_partial_address());
        let d = p.value_copy(copy(false, false, true, 0, 8), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        let d = p.value_copy(copy(true, true, false, 0, 8), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        assert_eq!(p.store_data(0, &mut NullProbe), WireClass::B);
        assert_eq!(p.branch_signal(0, &mut NullProbe).class, WireClass::B);
        let d = p.cache_data(
            CacheReturn {
                narrow: true,
                pc: 0x40,
                int_dest: true,
            },
            0,
            &mut NullProbe,
        );
        assert_eq!(d.class, WireClass::B);
    }
}
