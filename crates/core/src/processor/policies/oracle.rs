//! Oracle steering: the unreachable upper bound that knows the actual
//! value width and the consumer distance at send time.

use heterowire_interconnect::{AvailablePlanes, MessageKind, Node, Topology};
use heterowire_telemetry::Probe;
use heterowire_wires::WireClass;

use super::super::policy::{CacheReturn, NarrowStats, SendDecision, TransferPolicy, ValueCopy};
use super::{full_width, planes_for};
use crate::config::ProcessorConfig;

/// Cheats twice: it sees the produced value's *actual* width (no
/// predictor, so no missed-narrow transfers and no false-narrow replays),
/// and it knows the consumer's distance, so a wide copy to a waiting
/// consumer takes whichever of {full-width plane, chunked L split} has the
/// lower actual route latency. Copies whose latency is hidden
/// (`ready_at_dispatch`) ride PW for energy. This is the Table-3-style
/// upper bound the realizable policies are measured against.
#[derive(Debug)]
pub struct OraclePolicy {
    planes: AvailablePlanes,
    topology: Topology,
    /// Narrow values sent compacted on L (reported as predictor hits).
    hits: u64,
    /// Narrow values the link had no L plane for.
    missed: u64,
    /// Wide values (all correctly "predicted" wide).
    true_wide: u64,
}

impl OraclePolicy {
    /// Builds the policy for a configuration's link and topology.
    pub fn new(config: &ProcessorConfig) -> Self {
        OraclePolicy {
            planes: planes_for(&config.link),
            topology: config.topology,
            hits: 0,
            missed: 0,
            true_wide: 0,
        }
    }

    fn count_width(&mut self, narrow: bool, sent_on_l: bool) {
        if narrow {
            if sent_on_l {
                self.hits += 1;
            } else {
                self.missed += 1;
            }
        } else {
            self.true_wide += 1;
        }
    }

    /// Fastest way to move a full-width value from `src` to `dst`: the
    /// available full-width plane, or a chunked L split when its serialized
    /// route latency is strictly lower.
    fn fastest_wide(&self, src: usize, dst: usize) -> (WireClass, MessageKind) {
        let full = full_width(self.planes, WireClass::B);
        if self.planes.l {
            let (src, dst) = (Node::Cluster(src), Node::Cluster(dst));
            let split = self.topology.route_inline(src, dst, WireClass::L).latency
                + MessageKind::SplitValue.serialization_cycles(WireClass::L);
            if split < self.topology.route_inline(src, dst, full).latency {
                return (WireClass::L, MessageKind::SplitValue);
            }
        }
        (full, MessageKind::RegisterValue)
    }
}

impl TransferPolicy for OraclePolicy {
    fn value_copy<P: Probe>(
        &mut self,
        req: ValueCopy,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        if req.narrow && self.planes.l {
            self.count_width(true, true);
            return SendDecision {
                class: WireClass::L,
                kind: MessageKind::NarrowValue,
                delay: 0,
            };
        }
        self.count_width(req.narrow, false);
        if req.ready_at_dispatch {
            return SendDecision {
                class: full_width(self.planes, WireClass::Pw),
                kind: MessageKind::RegisterValue,
                delay: 0,
            };
        }
        let (class, kind) = self.fastest_wide(req.src_cluster, req.dst_cluster);
        SendDecision {
            class,
            kind,
            delay: 0,
        }
    }

    fn cache_data<P: Probe>(
        &mut self,
        req: CacheReturn,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        if req.narrow && self.planes.l {
            self.count_width(true, true);
            return SendDecision {
                class: WireClass::L,
                kind: MessageKind::NarrowValue,
                delay: 0,
            };
        }
        self.count_width(req.narrow, false);
        SendDecision {
            class: full_width(self.planes, WireClass::B),
            kind: MessageKind::CacheData,
            delay: 0,
        }
    }

    fn dispatches_partial_address(&self) -> bool {
        self.planes.l
    }

    fn full_address<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        full_width(self.planes, WireClass::B)
    }

    fn store_data<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        full_width(self.planes, WireClass::Pw)
    }

    fn branch_signal<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> SendDecision {
        if self.planes.l {
            SendDecision {
                class: WireClass::L,
                kind: MessageKind::BranchMispredict,
                delay: 0,
            }
        } else {
            SendDecision {
                class: full_width(self.planes, WireClass::B),
                kind: MessageKind::RegisterValue,
                delay: 0,
            }
        }
    }

    fn observe_result(&mut self, _pc: u64, _narrow: bool) {}

    fn narrow_stats(&self) -> NarrowStats {
        NarrowStats {
            hits: self.hits,
            missed: self.missed,
            false_narrow: 0,
            true_wide: self.true_wide,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterconnectModel, ModelSpec};
    use heterowire_telemetry::NullProbe;

    fn policy(topology: Topology) -> OraclePolicy {
        OraclePolicy::new(&ProcessorConfig::for_model(InterconnectModel::X, topology))
    }

    fn copy(narrow: bool, ready: bool) -> ValueCopy {
        ValueCopy {
            narrow,
            value: if narrow { 3 } else { u64::MAX },
            pc: 0x40,
            ready_at_dispatch: ready,
            critical: false,
            src_cluster: 0,
            dst_cluster: 1,
            dest_iq_used: 0,
        }
    }

    #[test]
    fn actual_narrow_values_always_take_l() {
        let mut p = policy(Topology::crossbar4());
        // No training required: the oracle sees the width.
        let d = p.value_copy(copy(true, false), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::NarrowValue);
        assert_eq!(d.delay, 0, "an oracle never replays");
        assert_eq!(p.narrow_stats().hits, 1);
        assert_eq!(p.narrow_stats().false_narrow, 0);
    }

    #[test]
    fn hidden_wide_copies_ride_pw_exposed_ones_the_fastest_route() {
        let mut p = policy(Topology::crossbar4());
        assert_eq!(
            p.value_copy(copy(false, true), 0, &mut NullProbe).class,
            WireClass::Pw
        );
        // Crossbar: B (2) beats split L (4).
        let d = p.value_copy(copy(false, false), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        // Cross-ring: split L (8) beats B (10).
        let mut p = policy(Topology::hier16());
        let d = p.value_copy(
            ValueCopy {
                dst_cluster: 8,
                ..copy(false, false)
            },
            0,
            &mut NullProbe,
        );
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::SplitValue);
    }

    #[test]
    fn narrow_cache_returns_take_l_without_training() {
        let mut p = policy(Topology::crossbar4());
        let d = p.cache_data(
            CacheReturn {
                narrow: true,
                pc: 0x99,
                int_dest: true,
            },
            0,
            &mut NullProbe,
        );
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::NarrowValue);
    }

    #[test]
    fn degrades_gracefully_without_optional_planes() {
        let spec = ModelSpec::parse("custom:pw288").unwrap();
        let cfg = ProcessorConfig::for_model_spec(&spec, Topology::crossbar4());
        let mut p = OraclePolicy::new(&cfg);
        // PW-only link: everything clamps to PW, narrow counted as missed.
        assert_eq!(
            p.value_copy(copy(true, false), 0, &mut NullProbe).class,
            WireClass::Pw
        );
        assert_eq!(p.narrow_stats().missed, 1);
        assert_eq!(p.full_address(0, &mut NullProbe), WireClass::Pw);
        assert_eq!(p.branch_signal(0, &mut NullProbe).class, WireClass::Pw);
        assert!(!p.dispatches_partial_address());
    }
}
