//! Contender transfer policies for A/B studies against [`PaperPolicy`].
//!
//! Three real alternatives to the paper's steering live here, all behind
//! the same [`TransferPolicy`] trait the kernel drives:
//!
//! * [`CriticalityPolicy`] — criticality-first: copies to a waiting
//!   consumer whose subscription was marked last-arriving get L-Wires even
//!   when wide, via chunked value splitting
//!   ([`MessageKind::SplitValue`](heterowire_interconnect::MessageKind));
//! * [`PwFirstPolicy`] — bandwidth-aware inversion: everything defaults to
//!   the power-optimized PW plane and is promoted to B/L only when slack
//!   analysis says the extra latency would be exposed;
//! * [`OraclePolicy`] — an upper bound that cheats with the actual value
//!   width and the consumer distance at send time.
//!
//! All three degrade gracefully on lane-starved `custom:` link specs: a
//! decision is always clamped to a plane the link actually has (the
//! crate-private `full_width` helper), so e.g. PW-first on a `custom:b144` link
//! quietly becomes an all-B policy. Harnesses that consider a policy
//! *meaningless* without its signature plane should refuse up front
//! (`heterowire-bench` exits 2) rather than rely on the clamping.
//!
//! [`PaperPolicy`]: super::policy::PaperPolicy
//! [`TransferPolicy`]: super::policy::TransferPolicy

mod criticality;
mod oracle;
mod pwfirst;

pub use criticality::CriticalityPolicy;
pub use oracle::OraclePolicy;
pub use pwfirst::PwFirstPolicy;

use heterowire_interconnect::AvailablePlanes;
use heterowire_wires::{LinkComposition, WireClass};

/// The planes a link composition offers.
///
/// # Panics
///
/// Panics if the link has no full-width (B or PW) plane — such links are
/// rejected at [`ModelSpec`](crate::config::ModelSpec) parse time.
pub(crate) fn planes_for(link: &LinkComposition) -> AvailablePlanes {
    AvailablePlanes::new(
        link.lanes(WireClass::B) > 0,
        link.lanes(WireClass::Pw) > 0,
        link.lanes(WireClass::L) > 0,
    )
}

/// Clamps a preferred full-width class to a plane the link has: a policy
/// wanting PW on a B-only link (or vice versa) falls back to the other
/// plane instead of queueing on a nonexistent one.
pub(crate) fn full_width(planes: AvailablePlanes, preferred: WireClass) -> WireClass {
    match preferred {
        WireClass::Pw if planes.pw => WireClass::Pw,
        WireClass::B if planes.b => WireClass::B,
        _ if planes.b => WireClass::B,
        _ => WireClass::Pw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_clamps_to_available_planes() {
        let both = AvailablePlanes::new(true, true, false);
        assert_eq!(full_width(both, WireClass::Pw), WireClass::Pw);
        assert_eq!(full_width(both, WireClass::B), WireClass::B);
        let b_only = AvailablePlanes::new(true, false, false);
        assert_eq!(full_width(b_only, WireClass::Pw), WireClass::B);
        let pw_only = AvailablePlanes::new(false, true, true);
        assert_eq!(full_width(pw_only, WireClass::B), WireClass::Pw);
    }
}
