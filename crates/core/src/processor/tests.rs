//! Processor-level tests: aggregate behaviour, the paper-discussed
//! extensions, individual wire-management mechanisms, and transfer-policy
//! A/B swaps.

use super::*;
use crate::config::{Extensions, InterconnectModel};
use heterowire_trace::profile;

fn run_model(model: InterconnectModel, bench: &str, n: u64) -> SimResults {
    let config = ProcessorConfig::for_model(model, Topology::crossbar4());
    let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 99);
    Processor::simulate(config, trace, n, n / 10)
}

#[test]
fn baseline_ipc_is_plausible() {
    let r = run_model(InterconnectModel::I, "gzip", 20_000);
    let ipc = r.ipc();
    assert!((0.3..=6.0).contains(&ipc), "gzip IPC {ipc}");
    assert!(r.instructions == 20_000);
}

#[test]
fn simulation_is_deterministic() {
    let a = run_model(InterconnectModel::VII, "vpr", 10_000);
    let b = run_model(InterconnectModel::VII, "vpr", 10_000);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.net.transfers, b.net.transfers);
}

#[test]
fn l_wires_do_not_hurt_performance() {
    // Model VII = Model I's B-wires + an L plane with all three L
    // optimizations; across a few benchmarks the mean IPC must not drop.
    let mut base = 0.0;
    let mut lwire = 0.0;
    for b in ["gzip", "mcf", "swim"] {
        base += run_model(InterconnectModel::I, b, 10_000).ipc();
        lwire += run_model(InterconnectModel::VII, b, 10_000).ipc();
    }
    assert!(
        lwire >= base * 0.99,
        "L-wires should help: base {base}, with L {lwire}"
    );
}

#[test]
fn pw_only_interconnect_is_slower() {
    let base = run_model(InterconnectModel::I, "gcc", 10_000).ipc();
    let pw = run_model(InterconnectModel::II, "gcc", 10_000).ipc();
    assert!(pw <= base, "PW-only must not beat B-wires: {pw} vs {base}");
}

#[test]
fn doubled_latency_degrades_performance() {
    let mut fast = ProcessorConfig::baseline4();
    let mut slow = ProcessorConfig::baseline4();
    slow.latency_scale = 2.0;
    let trace = || TraceGenerator::new(profile::by_name("vortex").unwrap(), 7);
    let f = Processor::simulate(fast.clone(), trace(), 10_000, 1_000);
    let s = Processor::simulate(slow.clone(), trace(), 10_000, 1_000);
    assert!(
        s.ipc() < f.ipc(),
        "doubling wire latency must cost IPC: {} vs {}",
        s.ipc(),
        f.ipc()
    );
    // keep clippy quiet about mut
    fast.latency_scale = 1.0;
}

#[test]
fn traffic_flows_on_the_network() {
    let r = run_model(InterconnectModel::I, "gzip", 10_000);
    assert!(r.net.total_transfers() > 1_000, "{:?}", r.net.transfers);
    let tpi = r.transfers_per_inst();
    assert!((0.1..=3.0).contains(&tpi), "transfers/inst {tpi}");
}

#[test]
fn model_x_uses_all_three_planes() {
    let r = run_model(InterconnectModel::X, "gcc", 10_000);
    for (i, class) in WireClass::ALL.iter().enumerate() {
        if *class == WireClass::W {
            continue;
        }
        assert!(
            r.net.transfers[i] > 0,
            "{class} plane unused: {:?}",
            r.net.transfers
        );
    }
}

#[test]
fn hier16_runs_and_exceeds_4cluster_ilp_on_fp() {
    let c4 = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
    let c16 = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
    let t = || TraceGenerator::new(profile::by_name("swim").unwrap(), 5);
    let r4 = Processor::simulate(c4, t(), 10_000, 1_000);
    let r16 = Processor::simulate(c16, t(), 10_000, 1_000);
    assert!(r16.ipc() > 0.0);
    // 16 clusters offer more FUs/registers; high-ILP FP codes gain.
    assert!(
        r16.ipc() > r4.ipc() * 0.9,
        "16-cluster should be competitive: {} vs {}",
        r16.ipc(),
        r4.ipc()
    );
}

#[test]
fn false_dependence_rate_is_low_with_8_ls_bits() {
    let r = run_model(InterconnectModel::VII, "gcc", 20_000);
    let rate = r.lsq.false_dependence_rate();
    assert!(rate < 0.09, "paper: <9% false deps, got {rate}");
}

mod extension_tests {
    use super::*;

    fn run_ext(ext: Extensions, latency_scale: f64, bench: &str) -> SimResults {
        let mut config = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        config.extensions = ext;
        config.latency_scale = latency_scale;
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 31);
        Processor::simulate(config, trace, 10_000, 3_000)
    }

    #[test]
    fn critical_word_first_helps_memory_bound_code() {
        let base = run_ext(Extensions::default(), 1.0, "mcf");
        let cwf = run_ext(
            Extensions {
                l2_critical_word: true,
                ..Extensions::default()
            },
            1.0,
            "mcf",
        );
        assert!(
            cwf.ipc() >= base.ipc(),
            "CWF should not hurt: {} vs {}",
            cwf.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn frequent_value_compaction_moves_traffic_to_l_wires() {
        let base = run_ext(Extensions::default(), 1.0, "gcc");
        let fvc = run_ext(
            Extensions {
                frequent_value: true,
                ..Extensions::default()
            },
            1.0,
            "gcc",
        );
        let l = WireClass::ALL
            .iter()
            .position(|&c| c == WireClass::L)
            .unwrap();
        assert!(
            fvc.net.transfers[l] >= base.net.transfers[l],
            "FVC should add L traffic: {:?} vs {:?}",
            fvc.net.transfers,
            base.net.transfers
        );
        assert!(fvc.ipc() >= base.ipc() * 0.99);
    }

    #[test]
    fn transmission_lines_resist_latency_scaling() {
        // At 2x wire-constrained latency, TL L-wires keep their 1-cycle
        // crossbar latency, so the TL machine must be at least as fast.
        let rc = run_ext(Extensions::default(), 2.0, "gzip");
        let tl = run_ext(
            Extensions {
                transmission_lines: true,
                ..Extensions::default()
            },
            2.0,
            "gzip",
        );
        assert!(
            tl.ipc() >= rc.ipc(),
            "TL L-wires should not be slower: {} vs {}",
            tl.ipc(),
            rc.ipc()
        );
        // ... and their dynamic energy must be lower (1/3 per L bit-hop).
        assert!(tl.net.dynamic_energy < rc.net.dynamic_energy);
    }
}

mod mechanism_tests {
    //! Tests pinning individual wire-management mechanisms inside the full
    //! pipeline (beyond the aggregate behaviour covered above).

    use super::*;

    fn run(model: InterconnectModel, bench: &str, n: u64) -> (Processor, SimResults) {
        let config = ProcessorConfig::for_model(model, Topology::crossbar4());
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), 77);
        let mut p = Processor::new(config, trace);
        let r = p.run(n, n / 4);
        (p, r)
    }

    #[test]
    fn store_data_rides_pw_wires_in_model_v() {
        // Model V has B + PW: the PW plane must carry the store-data and
        // ready-at-dispatch traffic (paper: 36% of transfers).
        let (_, r) = run(InterconnectModel::V, "vortex", 10_000);
        let pw_share = r.net.class_share(WireClass::Pw);
        assert!(
            (0.10..=0.70).contains(&pw_share),
            "PW share {pw_share} out of plausible range"
        );
    }

    #[test]
    fn model_i_has_no_l_or_pw_traffic() {
        let (_, r) = run(InterconnectModel::I, "gap", 5_000);
        assert_eq!(r.net.transfers[0], 0, "W plane never used");
        assert_eq!(r.net.transfers[1], 0, "no PW plane in Model I");
        assert_eq!(r.net.transfers[3], 0, "no L plane in Model I");
        assert!(r.net.transfers[2] > 0);
    }

    #[test]
    fn partial_addresses_reach_the_lsq_only_with_l_wires() {
        let (_, base) = run(InterconnectModel::I, "parser", 8_000);
        let (_, l) = run(InterconnectModel::VII, "parser", 8_000);
        assert_eq!(base.lsq.partial_matches, 0, "baseline sends no partials");
        assert!(
            l.lsq.partial_matches > 0,
            "the L-Wire pipeline must exercise partial comparisons"
        );
    }

    #[test]
    fn forwards_happen_through_the_lsq() {
        // Store-to-load forwarding must occur on workloads with memory
        // reuse.
        let mut total = 0;
        for b in ["gcc", "vortex", "crafty"] {
            let (_, r) = run(InterconnectModel::I, b, 10_000);
            total += r.lsq.forwards;
        }
        assert!(total > 0, "no store-to-load forwarding observed");
    }

    #[test]
    fn mispredict_penalty_includes_refill() {
        let (_, r) = run(InterconnectModel::I, "twolf", 10_000);
        // The floor is resolution + signal + 12-cycle refill.
        assert!(
            r.fetch.mean_mispredict_penalty() >= 12.0,
            "penalty {}",
            r.fetch.mean_mispredict_penalty()
        );
    }

    #[test]
    fn load_latency_breakdown_is_consistent() {
        let (p, _) = run(InterconnectModel::I, "gzip", 10_000);
        let (agen_to_lsq, lsq_block) = p.load_lsq_breakdown();
        let total = p.mean_load_latency();
        assert!(agen_to_lsq >= 1.0, "addresses take at least a cycle");
        assert!(lsq_block >= 0.0);
        assert!(
            total >= agen_to_lsq,
            "total {total} < addr transfer {agen_to_lsq}"
        );
    }

    #[test]
    fn sixteen_cluster_ring_traffic_exists() {
        let config = ProcessorConfig::for_model(InterconnectModel::I, Topology::hier16());
        let trace = TraceGenerator::new(profile::by_name("swim").unwrap(), 77);
        let r = Processor::simulate(config, trace, 8_000, 2_000);
        assert!(r.net.total_transfers() > 0);
        // Leakage weight of the 16-cluster net exceeds the 4-cluster one
        // (more links).
        let c4 = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let r4 = Processor::simulate(
            c4,
            TraceGenerator::new(profile::by_name("swim").unwrap(), 77),
            2_000,
            500,
        );
        assert!(r.leakage_weight > r4.leakage_weight);
    }

    #[test]
    fn rob_never_exceeds_capacity() {
        // Indirectly: a tiny ROB must slow the machine down, proving the
        // cap binds.
        let mut small = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        small.rob_size = 16;
        let big = ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        let t = || TraceGenerator::new(profile::by_name("swim").unwrap(), 5);
        let rs = Processor::simulate(small, t(), 5_000, 1_000);
        let rb = Processor::simulate(big, t(), 5_000, 1_000);
        assert!(
            rs.ipc() < rb.ipc(),
            "16-entry ROB ({}) should lose to 480 ({})",
            rs.ipc(),
            rb.ipc()
        );
    }

    #[test]
    fn narrower_dispatch_hurts() {
        let mut narrow_cfg =
            ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4());
        narrow_cfg.dispatch_width = 2;
        let t = || TraceGenerator::new(profile::by_name("apsi").unwrap(), 5);
        let narrow = Processor::simulate(narrow_cfg, t(), 5_000, 1_000);
        let wide = Processor::simulate(
            ProcessorConfig::for_model(InterconnectModel::I, Topology::crossbar4()),
            t(),
            5_000,
            1_000,
        );
        assert!(narrow.ipc() <= wide.ipc());
    }

    #[test]
    fn oracle_narrow_mode_never_sends_false_narrow() {
        let mut cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
        cfg.opts.narrow_predictor = false; // oracle width knowledge
        let trace = TraceGenerator::new(profile::by_name("bzip2").unwrap(), 8);
        let r = Processor::simulate(cfg, trace, 8_000, 2_000);
        assert_eq!(r.narrow_false_rate, 0.0, "oracle mode mispredicted width");
        assert!(r.net.transfers[3] > 0, "oracle mode still uses L wires");
    }
}

mod policy_ab_tests {
    //! The policy layer must be swappable without touching the kernel:
    //! the same pipeline runs an alternative [`SprayPolicy`] end to end.

    use super::*;

    fn spray_processor(
        model: InterconnectModel,
        bench: &str,
        seed: u64,
    ) -> Processor<NullProbe, SprayPolicy> {
        let config = ProcessorConfig::for_model(model, Topology::crossbar4());
        let trace = TraceGenerator::new(profile::by_name(bench).unwrap(), seed);
        let spray = SprayPolicy::new(&config.link);
        Processor::with_policy(config, trace, NullProbe, spray)
    }

    #[test]
    fn spray_policy_runs_the_full_pipeline_without_l_traffic() {
        let spray = spray_processor(InterconnectModel::X, "gzip", 42).run(5_000, 500);
        assert!(spray.ipc() > 0.0);
        assert_eq!(spray.net.transfers[3], 0, "spray never uses L-Wires");
        assert!(
            spray.net.transfers[1] > 0 && spray.net.transfers[2] > 0,
            "spray round-robins both full-width planes: {:?}",
            spray.net.transfers
        );
        // The paper policy on the same machine does exploit the L plane.
        let config = ProcessorConfig::for_model(InterconnectModel::X, Topology::crossbar4());
        let trace = TraceGenerator::new(profile::by_name("gzip").unwrap(), 42);
        let paper = Processor::new(config, trace).run(5_000, 500);
        assert!(paper.net.transfers[3] > 0);
    }

    #[test]
    fn spray_policy_is_kernel_identical() {
        // A custom policy must be bit-identical across both scheduling
        // kernels, exactly like the paper policy.
        let a = spray_processor(InterconnectModel::V, "gcc", 11).run(5_000, 500);
        let b = spray_processor(InterconnectModel::V, "gcc", 11).run_reference(5_000, 500);
        assert_eq!(a, b);
    }
}
