//! Capacity-parameterized per-value slot tables (DESIGN.md §13).
//!
//! Every in-flight value carries per-cluster state: arrival cycles,
//! intrusive waiter-list heads, and the ordered subscriber list. Before
//! the widening these lived as fixed `[_; 16]` arrays inside `ValueInfo`,
//! hard-coding the 16-cluster wall. They now live in one seq-indexed
//! struct-of-arrays table whose row width (**stride**) is the machine's
//! cluster count, read off the `Topology` once at `Processor`
//! construction: `slot(seq, cluster) = row[seq * stride + cluster]`.
//!
//! This is deliberately *not* an inline-vs-spill enum per value (an
//! earlier cut of this change was, and the per-access tag dispatch plus
//! the fatter `ValueInfo` cost ~5% wall-clock on the ≤16-cluster fast
//! path). A flat table is branch-free on every access, keeps `ValueInfo`
//! small, and on narrow machines shrinks the per-value footprint below
//! the old fixed arrays (stride 4 vs 16 on the paper's crossbar). Growth
//! is amortized `Vec` doubling — the steady-state hot path allocates
//! nothing at *any* width (`tests/alloc_count.rs` pins both narrow and
//! wide budgets).

use super::{MAX_CLUSTERS, NOT_SENT, NO_WAITER};

/// Seq-indexed per-value, per-cluster slot tables; one row of `stride`
/// slots per dispatched instruction (dest-carrying or not, so row offsets
/// never need a side index).
#[derive(Debug, Clone)]
pub(super) struct ValueSlots {
    /// Row width: the machine's cluster count.
    stride: usize,
    /// Rows in use (one per dispatched seq); the tables below are grown
    /// in chunks ahead of this so [`ValueSlots::push_value`] is a
    /// compare-and-increment on the dispatch hot path, not a `Vec` grow.
    rows: usize,
    /// Cycle a copy arrives per remote cluster ([`NOT_SENT`] /
    /// [`super::IN_FLIGHT`] sentinels).
    arrivals: Vec<u64>,
    /// Per-cluster heads of the intrusive waiter lists ([`NO_WAITER`] =
    /// empty; see `rob.rs` for the node encoding).
    waiters: Vec<u32>,
    /// Remote clusters awaiting a copy once the value completes,
    /// insertion-ordered — copies must be sent in subscription order
    /// because the network assigns transfer ids (and breaks arbitration
    /// ties) in send order.
    subscribers: Vec<u8>,
    /// Live prefix length of each subscriber row.
    subs_len: Vec<u8>,
}

impl ValueSlots {
    /// Empty tables for a `clusters`-wide machine.
    pub(super) fn new(clusters: usize) -> Self {
        debug_assert!(clusters <= MAX_CLUSTERS);
        ValueSlots {
            stride: clusters,
            rows: 0,
            arrivals: Vec::new(),
            waiters: Vec::new(),
            subscribers: Vec::new(),
            subs_len: Vec::new(),
        }
    }

    /// Appends one value's row to every table (called once per dispatched
    /// seq, in lockstep with the `values` vector). Rows ahead of the
    /// current one are pre-filled with sentinels and untouched until their
    /// seq dispatches, so chunk growth is invisible to the accessors.
    #[inline]
    pub(super) fn push_value(&mut self) {
        self.rows += 1;
        if self.rows * self.stride > self.arrivals.len() {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let rows = (self.rows * 2).max(1024);
        self.arrivals.resize(rows * self.stride, NOT_SENT);
        self.waiters.resize(rows * self.stride, NO_WAITER);
        self.subscribers.resize(rows * self.stride, 0);
        self.subs_len.resize(rows, 0);
    }

    #[inline]
    fn idx(&self, seq: u64, cluster: usize) -> usize {
        debug_assert!((seq as usize) < self.rows);
        debug_assert!(cluster < self.stride);
        seq as usize * self.stride + cluster
    }

    /// The arrival slot for `seq`'s value in `cluster`.
    #[inline]
    pub(super) fn arrival(&self, seq: u64, cluster: usize) -> u64 {
        self.arrivals[self.idx(seq, cluster)]
    }

    /// Sets the arrival slot for `seq`'s value in `cluster`.
    #[inline]
    pub(super) fn set_arrival(&mut self, seq: u64, cluster: usize, cycle: u64) {
        let i = self.idx(seq, cluster);
        self.arrivals[i] = cycle;
    }

    /// Swaps `node` into the waiter-list head for (`seq`, `cluster`) and
    /// returns the previous head.
    #[inline]
    pub(super) fn replace_waiter(&mut self, seq: u64, cluster: usize, node: u32) -> u32 {
        let i = self.idx(seq, cluster);
        std::mem::replace(&mut self.waiters[i], node)
    }

    /// Appends `cluster` to `seq`'s subscriber list unless already
    /// subscribed.
    pub(super) fn push_subscriber_unique(&mut self, seq: u64, cluster: usize) {
        let base = self.idx(seq, 0);
        let row = &mut self.subscribers[base..base + self.stride];
        let n = self.subs_len[seq as usize] as usize;
        if row[..n].contains(&(cluster as u8)) {
            return;
        }
        row[n] = cluster as u8;
        self.subs_len[seq as usize] = n as u8 + 1;
    }

    /// Empties `seq`'s subscriber list, returning the subscribed clusters
    /// in subscription order (the publish path iterates them while
    /// sending, which needs `&mut self`).
    pub(super) fn take_subscribers(&mut self, seq: u64) -> TakenSubscribers {
        let len = std::mem::take(&mut self.subs_len[seq as usize]);
        let base = self.idx(seq, 0);
        let mut clusters = [0u8; MAX_CLUSTERS];
        clusters[..len as usize].copy_from_slice(&self.subscribers[base..base + len as usize]);
        TakenSubscribers { clusters, len }
    }
}

/// An owned, drained subscriber list (at most one slot per cluster, so an
/// inline [`MAX_CLUSTERS`]-wide buffer always suffices — no allocation).
pub(super) struct TakenSubscribers {
    clusters: [u8; MAX_CLUSTERS],
    len: u8,
}

impl TakenSubscribers {
    /// The drained clusters, in subscription order.
    pub(super) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.clusters[..self.len as usize]
            .iter()
            .map(|&c| c as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stride_wide_and_sentinel_filled() {
        for stride in [4, 16, 64] {
            let mut slots = ValueSlots::new(stride);
            slots.push_value();
            slots.push_value();
            for c in 0..stride {
                assert_eq!(slots.arrival(1, c), NOT_SENT);
                assert_eq!(slots.replace_waiter(1, c, 7), NO_WAITER);
            }
            slots.set_arrival(1, stride - 1, 42);
            assert_eq!(slots.arrival(1, stride - 1), 42);
            // Row 0 is untouched by row 1's writes.
            assert_eq!(slots.arrival(0, stride - 1), NOT_SENT);
        }
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn slots_are_bounded_by_the_cluster_count() {
        let mut slots = ValueSlots::new(4);
        slots.push_value();
        let _ = slots.arrival(0, 4);
    }

    #[test]
    fn subscribers_keep_insertion_order_at_any_width() {
        for stride in [4, 16, 64] {
            let mut slots = ValueSlots::new(stride);
            slots.push_value();
            for c in [3, 1, 3, 0, 1] {
                slots.push_subscriber_unique(0, c);
            }
            let taken = slots.take_subscribers(0);
            assert_eq!(taken.iter().collect::<Vec<_>>(), vec![3, 1, 0]);
            // Taking drains the list.
            assert_eq!(slots.take_subscribers(0).iter().count(), 0);
        }
        let mut wide = ValueSlots::new(64);
        wide.push_value();
        wide.push_subscriber_unique(0, 63);
        wide.push_subscriber_unique(0, 17);
        let taken = wide.take_subscribers(0);
        assert_eq!(taken.iter().collect::<Vec<_>>(), vec![63, 17]);
    }
}
