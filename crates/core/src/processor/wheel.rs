//! Event-time data structures: the completion wheel and deferred sends.

use heterowire_interconnect::Transfer;

use super::Action;

/// A send scheduled for a future cycle (e.g. cache data that becomes
/// available when the RAM access finishes).
///
/// Lives in a min-heap ordered by `(at, dseq)`. `at` is clamped to
/// `push_cycle + 1` at insertion: the reference Vec scan ran before any
/// same-cycle push, so an entry nominally due at or before its push cycle
/// fired on the *next* cycle — the clamp makes the heap's firing cycles
/// identical. `dseq` is a monotone insertion counter so same-cycle entries
/// fire in push order (the network assigns transfer ids in send order, and
/// ids break arbitration ties).
#[derive(Debug, Clone, Copy)]
pub(super) struct DeferredSend {
    pub(super) at: u64,
    pub(super) dseq: u64,
    pub(super) transfer: Transfer,
    pub(super) action: Action,
}

impl PartialEq for DeferredSend {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.dseq == other.dseq
    }
}

impl Eq for DeferredSend {}

impl PartialOrd for DeferredSend {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DeferredSend {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.dseq).cmp(&(other.at, other.dseq))
    }
}

/// Ring size of the completion wheel; a power of two strictly greater
/// than the longest FU latency (20-cycle integer divide).
const WHEEL_BUCKETS: usize = 64;

/// Calendar queue of execution-completion events: issuing schedules
/// `(done_cycle, seq)` into the bucket `done_cycle % WHEEL_BUCKETS`, and
/// each executed cycle drains exactly its own bucket. Because every
/// completion lies within `WHEEL_BUCKETS` cycles of its issue and buckets
/// are drained before they can wrap, a bucket only ever holds entries for
/// one cycle.
#[derive(Debug)]
pub(super) struct CompletionWheel {
    buckets: Vec<Vec<u32>>,
    /// Entries currently scheduled across all buckets.
    scheduled: usize,
    /// Exact earliest scheduled completion cycle (`u64::MAX` when empty).
    earliest: u64,
}

impl CompletionWheel {
    pub(super) fn new() -> Self {
        CompletionWheel {
            buckets: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            scheduled: 0,
            earliest: u64::MAX,
        }
    }

    pub(super) fn schedule(&mut self, now: u64, done: u64, seq: u64) {
        debug_assert!(
            done > now && done - now < WHEEL_BUCKETS as u64,
            "completion {done} outside wheel horizon at cycle {now}"
        );
        debug_assert!(seq < u64::from(u32::MAX));
        self.buckets[done as usize & (WHEEL_BUCKETS - 1)].push(seq as u32);
        self.scheduled += 1;
        self.earliest = self.earliest.min(done);
    }

    /// Drains the instructions completing exactly at `cycle` into `out`
    /// in ascending seq order (the reference scan finishes instructions in
    /// ROB = seq order).
    pub(super) fn pop_due(&mut self, cycle: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.earliest > cycle {
            return;
        }
        let bucket = &mut self.buckets[cycle as usize & (WHEEL_BUCKETS - 1)];
        self.scheduled -= bucket.len();
        out.extend(bucket.drain(..).map(u64::from));
        out.sort_unstable();
        if self.scheduled == 0 {
            self.earliest = u64::MAX;
        } else {
            // The next event sits within one ring revolution of `cycle`.
            let mut c = cycle + 1;
            while self.buckets[c as usize & (WHEEL_BUCKETS - 1)].is_empty() {
                c += 1;
            }
            self.earliest = c;
        }
    }

    /// The earliest scheduled completion cycle, if any.
    pub(super) fn next_due(&self) -> Option<u64> {
        (self.scheduled > 0).then_some(self.earliest)
    }
}
