//! The transfer-policy layer: per-message wire-class decisions.
//!
//! Every outbound transfer of the pipeline — register-value copies, cache
//! data returns, load/store addresses, store data, branch mispredict
//! signals — asks a [`TransferPolicy`] which wire class to ride and in
//! what message form. The kernel knows *when* and *where* to send;
//! the policy alone decides *how*. This is what makes the paper's three
//! wire-management techniques swappable: [`PaperPolicy`] implements the
//! narrow-operand prediction (with false-narrow replay), PW steering of
//! non-critical traffic and the L-Wire fast paths exactly as evaluated in
//! the paper, while alternatives such as [`SprayPolicy`] can be A/B-swept
//! through [`super::Processor::with_policy`] without touching the kernel.
//!
//! Probe-carrying methods are generic over the [`Probe`] so that the
//! uninstrumented simulator monomorphizes the telemetry away, exactly as
//! the kernel itself does.

use heterowire_interconnect::{
    AvailablePlanes, FrequentValueTable, MessageKind, TransferHints, WirePolicy,
};
use heterowire_telemetry::Probe;
use heterowire_wires::{LinkComposition, WireClass};

use crate::config::{Extensions, Optimizations, ProcessorConfig};
use crate::narrow::NarrowPredictor;

/// How one outbound transfer should be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendDecision {
    /// Wire class to ride.
    pub class: WireClass,
    /// Message form (e.g. a compacted [`MessageKind::NarrowValue`] instead
    /// of a full [`MessageKind::RegisterValue`]).
    pub kind: MessageKind,
    /// Extra cycles before the send is scheduled (false-narrow replay).
    pub delay: u64,
}

/// A register-value copy about to be sent to a consuming cluster.
#[derive(Debug, Clone, Copy)]
pub struct ValueCopy {
    /// The produced value fits the narrow (L-Wire) payload.
    pub narrow: bool,
    /// The produced value (frequent-value compaction inspects it).
    pub value: u64,
    /// Producer PC (indexes width predictors).
    pub pc: u64,
    /// The operand was already ready when the consumer dispatched (the
    /// paper's first PW non-criticality criterion).
    pub ready_at_dispatch: bool,
    /// The criticality predictor marked this producer as a waiting
    /// consumer's last-arriving (youngest still-pending) operand when it
    /// subscribed. Always false for dispatch-time copies.
    pub critical: bool,
    /// Producer cluster (consumer-distance for route-aware policies).
    pub src_cluster: usize,
    /// Consuming cluster the copy is headed to.
    pub dst_cluster: usize,
    /// Occupied issue-queue slots (int + fp) in the consuming cluster at
    /// send time — the slack watermark bandwidth-aware policies consult.
    pub dest_iq_used: usize,
}

/// A cache data return about to be sent back to a cluster.
#[derive(Debug, Clone, Copy)]
pub struct CacheReturn {
    /// The loaded value fits the narrow payload.
    pub narrow: bool,
    /// Load PC (indexes width predictors).
    pub pc: u64,
    /// The load writes an integer register (FP loads are never narrow).
    pub int_dest: bool,
}

/// Narrow-predictor counters a policy may expose for reporting.
/// Policies without a width predictor return the default (all zeros).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NarrowStats {
    /// Narrow results correctly predicted narrow.
    pub hits: u64,
    /// Narrow results predicted wide (missed compaction opportunity).
    pub missed: u64,
    /// Wide results predicted narrow (costing a replay).
    pub false_narrow: u64,
    /// Wide results correctly predicted wide.
    pub true_wide: u64,
}

/// Per-message wire-management decisions, extracted from the pipeline.
///
/// Contract: implementations must only return wire classes that exist in
/// the link composition they were built for, and must only return an
/// L-compatible [`MessageKind`] (narrow value, partial address, branch
/// signal) together with [`WireClass::L`]. Decision methods are invoked in
/// the exact order the kernel sends messages, so stateful policies (load
/// balancers, predictors) observe the same sequence either kernel
/// produces.
pub trait TransferPolicy {
    /// Decides class/kind/delay for a register-value copy.
    fn value_copy<P: Probe>(&mut self, req: ValueCopy, cycle: u64, probe: &mut P) -> SendDecision;

    /// Decides class/kind for a cache data return. `delay` must be 0 (the
    /// kernel schedules the send for when the RAM access finishes).
    fn cache_data<P: Probe>(&mut self, req: CacheReturn, cycle: u64, probe: &mut P)
        -> SendDecision;

    /// Whether loads/stores dispatch an early partial address on L-Wires
    /// (the accelerated cache pipeline).
    fn dispatches_partial_address(&self) -> bool;

    /// Wire class for the full address of a load/store.
    fn full_address<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> WireClass;

    /// Wire class for a store's data half.
    fn store_data<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> WireClass;

    /// Class/kind for a branch mispredict signal back to the front end.
    fn branch_signal<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> SendDecision;

    /// Observes a completed integer ALU result (trains width predictors).
    fn observe_result(&mut self, pc: u64, narrow: bool);

    /// Width-predictor counters for reporting (zeros if none).
    fn narrow_stats(&self) -> NarrowStats {
        NarrowStats::default()
    }
}

/// The paper's wire-management policy (§4): narrow-operand transfers with
/// an 8K-entry width predictor and false-narrow replay, frequent-value
/// compaction (extension), PW steering of ready-at-dispatch operands and
/// store data, B/PW load balancing, partial addresses and branch signals
/// on L-Wires. Owns the width predictor, the frequent-value table and the
/// [`WirePolicy`] steering state the decisions share.
#[derive(Debug)]
pub struct PaperPolicy {
    opts: Optimizations,
    extensions: Extensions,
    wires: WirePolicy,
    narrow: NarrowPredictor,
    fvc: FrequentValueTable,
}

impl PaperPolicy {
    /// Builds the policy for a configuration: steering criteria are
    /// enabled only where the link's planes and the optimization toggles
    /// both allow them.
    pub fn new(config: &ProcessorConfig) -> Self {
        let planes = AvailablePlanes::new(
            config.link.lanes(WireClass::B) > 0,
            config.link.lanes(WireClass::Pw) > 0,
            config.link.lanes(WireClass::L) > 0,
        );
        let mut wires = WirePolicy::new(planes);
        wires.use_l_wires = planes.l
            && (config.opts.cache_pipeline
                || config.opts.narrow_operands
                || config.opts.branch_signal);
        wires.use_pw_steering = config.opts.pw_steering && planes.pw && planes.b;
        wires.use_balancing = config.opts.load_balance && planes.pw && planes.b;
        PaperPolicy {
            opts: config.opts,
            extensions: config.extensions,
            wires,
            narrow: NarrowPredictor::paper(),
            fvc: FrequentValueTable::yang(),
        }
    }
}

impl TransferPolicy for PaperPolicy {
    fn value_copy<P: Probe>(&mut self, req: ValueCopy, cycle: u64, probe: &mut P) -> SendDecision {
        let hints = TransferHints {
            ready_at_dispatch: req.ready_at_dispatch,
            store_data: false,
        };
        // Narrow transfers need advance width knowledge: the predictor (or
        // the actual width for already-completed values).
        let mut kind = MessageKind::RegisterValue;
        let mut delay = 0;
        if self.opts.narrow_operands && self.wires.planes().l {
            if req.ready_at_dispatch || !self.opts.narrow_predictor {
                // Width already known (value completed) or oracle mode.
                if req.narrow {
                    kind = MessageKind::NarrowValue;
                }
            } else {
                // Prediction only: training happens once per result at
                // completion, not once per transfer.
                let predicted = self.narrow.predict(req.pc);
                if predicted && req.narrow {
                    kind = MessageKind::NarrowValue;
                } else if predicted && !req.narrow {
                    // False-narrow: tags went out on L-Wires; the wide value
                    // must be rescheduled on a full-width lane next cycle.
                    delay = 1;
                }
            }
        }
        // Frequent-value extension: a wide value matching the FV table is
        // sent as its table index on an L-Wire lane.
        if kind == MessageKind::RegisterValue
            && self.extensions.frequent_value
            && self.wires.planes().l
        {
            let frequent = self.fvc.observe(req.value);
            if frequent && self.fvc.encode(req.value).is_some() {
                kind = MessageKind::NarrowValue;
            }
        }
        // Prefer PW for non-critical traffic even when narrow (energy).
        let class =
            if hints.ready_at_dispatch && self.wires.planes().pw && self.wires.use_pw_steering {
                WireClass::Pw
            } else {
                self.wires.choose_probed(kind, hints, cycle, probe)
            };
        let kind = if class == WireClass::L {
            kind
        } else {
            MessageKind::RegisterValue
        };
        SendDecision { class, kind, delay }
    }

    fn cache_data<P: Probe>(
        &mut self,
        req: CacheReturn,
        cycle: u64,
        probe: &mut P,
    ) -> SendDecision {
        // The narrow predictor is only consulted for integer loads (FP
        // loads are distinct opcodes and never narrow).
        let mut kind = MessageKind::CacheData;
        if self.opts.narrow_operands && self.wires.planes().l && req.int_dest {
            let predicted = if self.opts.narrow_predictor {
                let p = self.narrow.predict(req.pc);
                self.narrow.update(req.pc, req.narrow);
                p
            } else {
                req.narrow
            };
            if predicted && req.narrow {
                kind = MessageKind::NarrowValue;
            }
        }
        let class = self
            .wires
            .choose_probed(kind, TransferHints::default(), cycle, probe);
        let kind = if class == WireClass::L {
            kind
        } else {
            MessageKind::CacheData
        };
        SendDecision {
            class,
            kind,
            delay: 0,
        }
    }

    fn dispatches_partial_address(&self) -> bool {
        self.opts.cache_pipeline && self.wires.planes().l
    }

    fn full_address<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> WireClass {
        self.wires.choose_probed(
            MessageKind::FullAddress,
            TransferHints::default(),
            cycle,
            probe,
        )
    }

    fn store_data<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> WireClass {
        let hints = TransferHints {
            ready_at_dispatch: false,
            store_data: true,
        };
        self.wires
            .choose_probed(MessageKind::StoreData, hints, cycle, probe)
    }

    fn branch_signal<P: Probe>(&mut self, cycle: u64, probe: &mut P) -> SendDecision {
        let class = if self.opts.branch_signal && self.wires.planes().l {
            WireClass::L
        } else {
            self.wires.choose_probed(
                MessageKind::RegisterValue,
                TransferHints::default(),
                cycle,
                probe,
            )
        };
        let kind = if class == WireClass::L {
            MessageKind::BranchMispredict
        } else {
            MessageKind::RegisterValue
        };
        SendDecision {
            class,
            kind,
            delay: 0,
        }
    }

    fn observe_result(&mut self, pc: u64, narrow: bool) {
        // Train the narrow predictor on every integer result (the width
        // detector sits next to the ALU).
        if self.opts.narrow_operands && self.opts.narrow_predictor {
            self.narrow.update(pc, narrow);
        }
    }

    fn narrow_stats(&self) -> NarrowStats {
        NarrowStats {
            hits: self.narrow.hits,
            missed: self.narrow.missed,
            false_narrow: self.narrow.false_narrow,
            true_wide: self.narrow.true_wide,
        }
    }
}

/// A deliberately naive baseline policy for A/B studies: every message is
/// sent full-width, round-robined across the link's full-width planes.
/// No L-Wire fast paths, no criticality steering, no width prediction —
/// what the paper's techniques are measured against when the question is
/// "does managing wires beat spraying them?".
#[derive(Debug, Clone)]
pub struct SprayPolicy {
    has_b: bool,
    has_pw: bool,
    next_pw: bool,
}

impl SprayPolicy {
    /// Builds the policy for a link composition.
    ///
    /// # Panics
    ///
    /// Panics if the link has no full-width (B or PW) plane.
    pub fn new(link: &LinkComposition) -> Self {
        let has_b = link.lanes(WireClass::B) > 0;
        let has_pw = link.lanes(WireClass::Pw) > 0;
        assert!(
            has_b || has_pw,
            "a link needs at least one full-width plane"
        );
        SprayPolicy {
            has_b,
            has_pw,
            next_pw: false,
        }
    }

    fn pick(&mut self) -> WireClass {
        match (self.has_b, self.has_pw) {
            (true, false) => WireClass::B,
            (false, true) => WireClass::Pw,
            _ => {
                self.next_pw = !self.next_pw;
                if self.next_pw {
                    WireClass::Pw
                } else {
                    WireClass::B
                }
            }
        }
    }
}

impl TransferPolicy for SprayPolicy {
    fn value_copy<P: Probe>(
        &mut self,
        _req: ValueCopy,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        SendDecision {
            class: self.pick(),
            kind: MessageKind::RegisterValue,
            delay: 0,
        }
    }

    fn cache_data<P: Probe>(
        &mut self,
        _req: CacheReturn,
        _cycle: u64,
        _probe: &mut P,
    ) -> SendDecision {
        SendDecision {
            class: self.pick(),
            kind: MessageKind::CacheData,
            delay: 0,
        }
    }

    fn dispatches_partial_address(&self) -> bool {
        false
    }

    fn full_address<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        self.pick()
    }

    fn store_data<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> WireClass {
        self.pick()
    }

    fn branch_signal<P: Probe>(&mut self, _cycle: u64, _probe: &mut P) -> SendDecision {
        SendDecision {
            class: self.pick(),
            kind: MessageKind::RegisterValue,
            delay: 0,
        }
    }

    fn observe_result(&mut self, _pc: u64, _narrow: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InterconnectModel;
    use heterowire_interconnect::Topology;
    use heterowire_telemetry::NullProbe;

    fn paper_for(model: InterconnectModel) -> PaperPolicy {
        PaperPolicy::new(&ProcessorConfig::for_model(model, Topology::crossbar4()))
    }

    fn copy(narrow: bool, value: u64, pc: u64, ready_at_dispatch: bool) -> ValueCopy {
        ValueCopy {
            narrow,
            value,
            pc,
            ready_at_dispatch,
            critical: !ready_at_dispatch,
            src_cluster: 0,
            dst_cluster: 1,
            dest_iq_used: 0,
        }
    }

    #[test]
    fn paper_policy_sends_known_narrow_values_on_l_wires() {
        let mut p = paper_for(InterconnectModel::VII);
        let d = p.value_copy(copy(true, 3, 0x40, true), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::L);
        assert_eq!(d.kind, MessageKind::NarrowValue);
        assert_eq!(d.delay, 0);
    }

    #[test]
    fn paper_policy_without_l_plane_sends_full_width() {
        let mut p = paper_for(InterconnectModel::I);
        let d = p.value_copy(copy(true, 3, 0x40, false), 0, &mut NullProbe);
        assert_eq!(d.class, WireClass::B);
        assert_eq!(d.kind, MessageKind::RegisterValue);
        assert!(!p.dispatches_partial_address());
    }

    #[test]
    fn paper_policy_false_narrow_costs_a_replay_cycle() {
        let mut p = paper_for(InterconnectModel::VII);
        // Train the predictor to say "narrow" for this PC...
        for _ in 0..8 {
            p.observe_result(0x80, true);
        }
        // ...then ship a wide value from it: predicted narrow, is wide.
        let d = p.value_copy(copy(false, u64::MAX, 0x80, false), 0, &mut NullProbe);
        assert_eq!(d.kind, MessageKind::RegisterValue);
        assert_eq!(d.delay, 1, "false-narrow must replay next cycle");
    }

    #[test]
    fn paper_policy_steers_store_data_to_pw() {
        let mut p = paper_for(InterconnectModel::X);
        assert_eq!(p.store_data(0, &mut NullProbe), WireClass::Pw);
        assert!(p.dispatches_partial_address());
        let b = p.branch_signal(0, &mut NullProbe);
        assert_eq!(b.class, WireClass::L);
        assert_eq!(b.kind, MessageKind::BranchMispredict);
    }

    #[test]
    fn spray_policy_round_robins_full_width_planes() {
        let mut s = SprayPolicy::new(&InterconnectModel::V.link());
        let a = s.full_address(0, &mut NullProbe);
        let b = s.full_address(0, &mut NullProbe);
        assert_ne!(a, b, "B+PW link must alternate");
        assert!(!s.dispatches_partial_address());
        assert_eq!(s.narrow_stats(), NarrowStats::default());
        // Single-plane links always use that plane.
        let mut only_b = SprayPolicy::new(&InterconnectModel::I.link());
        assert_eq!(only_b.full_address(0, &mut NullProbe), WireClass::B);
        assert_eq!(only_b.store_data(0, &mut NullProbe), WireClass::B);
    }
}
