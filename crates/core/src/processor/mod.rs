//! The clustered dynamically-scheduled out-of-order processor.
//!
//! A cycle-driven, trace-driven timing model with the paper's structure:
//! an 8-wide front end feeding a 480-entry ROB; dynamic steering of
//! instructions to clusters (15-entry int/fp issue queues, 32 int/fp
//! registers, one FU of each kind per cluster); a centralized LSQ + L1
//! D-cache reached over the heterogeneous interconnect; copy transfers for
//! cross-cluster register dependences with tag-ahead wakeup; and the three
//! wire-management optimizations (partial-address cache pipeline, narrow
//! operands + branch signals on L-Wires, non-critical traffic on PW-Wires).
//!
//! Deliberate trace-driven simplifications (documented in DESIGN.md):
//! wrong-path instructions are not fetched (mispredicts stall fetch until
//! resolution + signal transfer + 12-cycle refill); architected register
//! state predating the simulation window is available in every cluster;
//! physical registers bound in-flight destinations only.
//!
//! The processor is layered (DESIGN.md §8):
//!
//! * the **policy layer** ([`policy`]) — every per-message wire-class
//!   decision (narrow-operand prediction with false-narrow replay, PW
//!   steering, L-Wire partial-address dispatch) lives behind the
//!   [`TransferPolicy`] trait; [`PaperPolicy`] is the paper's policy and
//!   the default, alternatives plug in via [`Processor::with_policy`];
//! * the **structure layer** — the pipeline machinery is split into
//!   focused submodules: [`mod@self`] (state), `rob` (ROB/value/waiter
//!   bookkeeping and commit), `wheel` (completion wheel + deferred sends),
//!   `dispatch`, `complete` (execution completion and all network sends),
//!   `kernel` (the run loops).
//!
//! Two scheduling kernels drive the same per-cycle step functions:
//!
//! * the **event-driven kernel** ([`Processor::run`]) — a completion wheel
//!   pops instructions the cycle they finish executing, wakeup lists feed
//!   per-(cluster, FU) ready queues so issue never scans the ROB, store
//!   data is sent by subscription, and the loop jumps over cycles in which
//!   provably nothing can happen;
//! * the **cycle-driven reference kernel** ([`Processor::run_reference`]) —
//!   the seed's original full-ROB scans, kept so equivalence tests can
//!   assert the event-driven kernel is bit-identical.

mod complete;
mod dispatch;
mod kernel;
pub mod policies;
pub mod policy;
mod rob;
mod slots;
#[cfg(test)]
mod tests;
mod wheel;

pub use policies::{CriticalityPolicy, OraclePolicy, PwFirstPolicy};
pub use policy::{PaperPolicy, SprayPolicy, TransferPolicy};

use crate::mask::ClusterMask;
use slots::ValueSlots;

use std::cmp::Reverse;
use std::sync::Arc;

use heterowire_frontend::FetchEngine;
use heterowire_interconnect::{FaultModel, NullFaultModel};
use heterowire_interconnect::{NetConfig, Topology, Transfer};
use heterowire_interconnect::{Network, TransferId};
use heterowire_isa::MicroOp;
use heterowire_memory::{LoadStoreQueue, LsqRef, MemConfig, MemoryHierarchy};
use heterowire_telemetry::{NullProbe, Probe};
use heterowire_trace::TraceGenerator;
use heterowire_wires::WireClass;

use crate::config::ProcessorConfig;
use crate::results::SimResults;
use crate::steer::{ClusterView, ProducerInfo, Steering, SteeringWeights};

use wheel::{CompletionWheel, DeferredSend};

/// Execution phase of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In an issue queue waiting for operands and a functional unit.
    Waiting,
    /// Executing; finishes at the contained cycle.
    Executing(u64),
    /// Load/store interacting with the LSQ, cache and network.
    MemPending,
    /// Result produced (or store fully delivered); ready to commit.
    Done,
}

#[derive(Debug, Clone)]
struct Inflight {
    op: MicroOp,
    cluster: usize,
    phase: Phase,
    /// Producer seq per source (`None` = architected state, always ready).
    src_producer: [Option<u64>; 2],
    /// Cached cycle each source becomes ready in this cluster
    /// (`u64::MAX` = not yet known).
    src_ready: [u64; 2],
    mispredict: bool,
    /// Cycle this instruction dispatched (statistics).
    dispatched_at: u64,
    /// Cycle this instruction issued (statistics).
    issued_at: u64,
    /// Loads: cycle the cache RAM index arrived (partial bits).
    ram_start: Option<u64>,
    /// Loads: registered in the at-cache active list.
    at_cache: bool,
    /// Loads/stores: cycle the full address reached the LSQ (statistics).
    addr_at_lsq: u64,
    /// Loads/stores: O(1) handle to this op's LSQ entry.
    lsq_ref: Option<LsqRef>,
    /// Stores: address has been sent after AGEN.
    agen_done: bool,
    /// Stores: data transfer has been sent.
    store_data_sent: bool,
    /// Stores: address arrived at the LSQ.
    store_addr_arrived: bool,
    /// Stores: data arrived at the LSQ.
    store_data_arrived: bool,
    /// Issue operands not yet known ready (event-kernel wakeup counter;
    /// reaching 0 pushes the instruction onto its ready queue).
    pending_srcs: u8,
    /// Intrusive per-source link in a producer's waiter list
    /// ([`NO_WAITER`] = end of list / not linked).
    waiter_next: [u32; 2],
}

/// Most clusters any supported topology has — re-exported from the
/// interconnect's simulator-wide cap so there is exactly one bound (and
/// one refusal message, from the shared capacity checker) across parse,
/// construction and `Network::new`. Capacity is otherwise data-driven:
/// per-value slot rows are sized from the topology's cluster count at
/// construction (the `processor::slots` table), so this cap only
/// reflects the [`crate::ClusterMask`] width.
pub const MAX_CLUSTERS: usize = heterowire_interconnect::MAX_SIM_CLUSTERS;
// The criticality mask is one bit per cluster; widening past it means
// widening `ClusterMask` first.
const _: () = assert!(MAX_CLUSTERS <= crate::ClusterMask::CAPACITY);
/// Functional-unit kinds per cluster (`FuKind::ALL.len()`).
const FU_KINDS: usize = 4;
/// End-of-list sentinel for the intrusive waiter lists. Nodes encode
/// `seq << 1 | source_slot`, so seqs stay below 2^31.
const NO_WAITER: u32 = u32::MAX;
/// Arrival-slot sentinel: no copy was ever sent to this cluster.
const NOT_SENT: u64 = u64::MAX;
/// Arrival-slot sentinel: a copy is in flight, arrival cycle unknown.
const IN_FLIGHT: u64 = u64::MAX - 1;

#[derive(Debug, Clone)]
struct ValueInfo {
    cluster: usize,
    done_at: Option<u64>,
    narrow: bool,
    value: u64,
    pc: u64,
    /// Subscribed clusters whose consumer marked this producer as its
    /// last-arriving (youngest still-pending) operand at dispatch — the
    /// criticality signal completion-time copies hand to the policy.
    /// Per-cluster arrival cycles, waiter-list heads and the ordered
    /// subscriber list live in the processor-owned [`ValueSlots`] table,
    /// whose row width is the machine's cluster count.
    critical_subs: ClusterMask,
}

impl ValueInfo {
    fn new(cluster: usize, narrow: bool, value: u64, pc: u64) -> Self {
        ValueInfo {
            cluster,
            done_at: None,
            narrow,
            value,
            pc,
            critical_subs: ClusterMask::EMPTY,
        }
    }
}

/// What to do when a network transfer is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    ValueArrive { producer: u64, cluster: usize },
    PartialAddr { seq: u64 },
    FullAddr { seq: u64 },
    StoreData { seq: u64 },
    CacheData { seq: u64 },
    BranchSignal,
}

#[derive(Debug, Clone, Copy)]
struct ClusterState {
    iq_int_used: usize,
    iq_fp_used: usize,
    regs_int_used: usize,
    regs_fp_used: usize,
    fu_free: [u64; 4],
}

impl ClusterState {
    fn new() -> Self {
        ClusterState {
            iq_int_used: 0,
            iq_fp_used: 0,
            regs_int_used: 0,
            regs_fp_used: 0,
            fu_free: [0; 4],
        }
    }
}

/// Reusable buffers for the per-instruction dispatch path. Taken out of
/// the processor with `mem::take` for the duration of `dispatch()` (so the
/// borrow checker sees them as locals) and put back afterwards.
#[derive(Debug, Default)]
struct DispatchScratch {
    producers: Vec<ProducerInfo>,
    views: Vec<ClusterView>,
    scores: Vec<i64>,
}

/// The processor simulator. Create with [`Processor::new`], run with
/// [`Processor::run`].
///
/// Generic over a telemetry [`Probe`], a [`TransferPolicy`] and a
/// [`FaultModel`]; the default [`NullProbe`] carries `ENABLED = false`,
/// so every probe call site monomorphizes away and `Processor` (no type
/// arguments) is exactly the uninstrumented simulator running the paper's
/// wire-management policy over a fault-free fabric (the default
/// [`NullFaultModel`] likewise compiles the corruption checks out). Use
/// [`Processor::with_probe`] to attach a recording probe,
/// [`Processor::with_policy`] to swap in an alternative transfer policy
/// and [`Processor::with_faults`] to inject wire faults.
#[derive(Debug)]
pub struct Processor<
    P: Probe = NullProbe,
    T: TransferPolicy = PaperPolicy,
    F: FaultModel = NullFaultModel,
> {
    probe: P,
    policy: T,
    config: Arc<ProcessorConfig>,
    fetch: FetchEngine<TraceGenerator>,
    network: Network<F>,
    lsq: LoadStoreQueue,
    memory: MemoryHierarchy,
    steering: Steering,

    rob: std::collections::VecDeque<Inflight>,
    rob_base: u64, // seq of rob[0]
    clusters: Vec<ClusterState>,
    /// Destination-value bookkeeping, indexed directly by seq (seqs are
    /// dense from 0; `None` for ops without a destination).
    values: Vec<Option<ValueInfo>>,
    /// Per-value, per-cluster slot tables (arrivals / waiters /
    /// subscribers), rows sized to the machine's cluster count and pushed
    /// in lockstep with `values`.
    slots: ValueSlots,
    rename: [Option<u64>; 64],
    /// Delivery action per transfer, indexed by `TransferId` (ids are
    /// assigned densely in send order).
    actions: Vec<Action>,
    /// Deferred sends as a deterministic min-heap (see [`DeferredSend`]).
    deferred: std::collections::BinaryHeap<Reverse<DeferredSend>>,
    /// Insertion counter for [`DeferredSend::dseq`].
    deferred_seq: u64,
    active_loads: Vec<u64>,

    // Event-kernel scheduling state. The wakeup structures (ready queues,
    // store-data list) are maintained by the shared dispatch/delivery/
    // completion paths in both kernels; only the event kernel consumes
    // them. The wheel is fed by `issue_event` alone.
    wheel: CompletionWheel,
    /// Min-heap of known-ready waiting instructions per (cluster, FU kind),
    /// indexed `cluster * FU_KINDS + kind`.
    ready_queues: Vec<std::collections::BinaryHeap<Reverse<u64>>>,
    /// Stores whose data operand became ready (drained in seq order).
    store_data_pending: Vec<u32>,
    /// A store committed this cycle: LSQ disambiguation of waiting loads
    /// may change at the next cycle's poll, so it must not be skipped.
    retired_store: bool,

    // Reusable per-cycle buffers (steady-state hot path allocates nothing).
    scratch: DispatchScratch,
    fu_started: Vec<[bool; 4]>,
    finished_scratch: Vec<u64>,
    store_send_scratch: Vec<(u64, usize)>,
    delivered_scratch: Vec<(TransferId, Transfer)>,

    cycle: u64,
    committed: u64,
    dispatched: u64,
    /// Commit stops exactly at this count (set by `run`).
    commit_target: u64,
    misp_dispatch_wait: u64,
    misp_issue_wait: u64,
    misp_exec_wait: u64,
    misp_count: u64,
    load_lat_sum: u64,
    load_count: u64,
    lsq_wait_sum: u64,
    lsq_wait_count: u64,
    agen_to_lsq_sum: u64,
    store_addr_delay_sum: u64,
    store_addr_count: u64,
    store_issue_wait_sum: u64,
}

impl Processor {
    /// Builds a processor running `trace` under `config`.
    ///
    /// These constructors live on the concrete (probe-less, paper-policy)
    /// type because default type parameters do not drive inference:
    /// `Processor::new` must resolve without annotations at every existing
    /// call site. Probed construction goes through
    /// [`Processor::with_probe`], alternative policies through
    /// [`Processor::with_policy`].
    pub fn new(config: ProcessorConfig, trace: TraceGenerator) -> Self {
        Self::with_shared_config(Arc::new(config), trace)
    }

    /// Builds a processor over a shared configuration — sweep harnesses
    /// running one config across many benchmarks share a single allocation
    /// instead of cloning the config per run.
    pub fn with_shared_config(config: Arc<ProcessorConfig>, trace: TraceGenerator) -> Self {
        Self::with_probe_shared(config, trace, NullProbe)
    }

    /// Convenience: builds and runs in one call.
    pub fn simulate(
        config: ProcessorConfig,
        trace: TraceGenerator,
        instructions: u64,
        warmup: u64,
    ) -> SimResults {
        Processor::new(config, trace).run(instructions, warmup)
    }
}

impl<P: Probe> Processor<P, PaperPolicy> {
    /// Builds an instrumented processor observing events through `probe`.
    pub fn with_probe(config: ProcessorConfig, trace: TraceGenerator, probe: P) -> Self {
        Self::with_probe_shared(Arc::new(config), trace, probe)
    }

    /// [`Processor::with_probe`] over a shared configuration.
    pub fn with_probe_shared(
        config: Arc<ProcessorConfig>,
        trace: TraceGenerator,
        probe: P,
    ) -> Self {
        let policy = PaperPolicy::new(&config);
        Self::with_policy_shared(config, trace, probe, policy)
    }
}

impl<P: Probe, T: TransferPolicy> Processor<P, T> {
    /// Builds a processor driving its transfers through an arbitrary
    /// [`TransferPolicy`] — the A/B entry point for policy studies.
    pub fn with_policy(
        config: ProcessorConfig,
        trace: TraceGenerator,
        probe: P,
        policy: T,
    ) -> Self {
        Self::with_policy_shared(Arc::new(config), trace, probe, policy)
    }

    /// [`Processor::with_policy`] over a shared configuration.
    pub fn with_policy_shared(
        config: Arc<ProcessorConfig>,
        trace: TraceGenerator,
        probe: P,
        policy: T,
    ) -> Self {
        Processor::with_faults_shared(config, trace, probe, policy, NullFaultModel)
    }
}

impl<P: Probe, T: TransferPolicy, F: FaultModel> Processor<P, T, F> {
    /// Builds a processor whose interconnect injects wire faults through
    /// `faults` — transfers may arrive corrupted, be NACKed and retried
    /// (see the interconnect's fault module / DESIGN.md §14). With
    /// [`NullFaultModel`] this is exactly [`Processor::with_policy`].
    pub fn with_faults(
        config: ProcessorConfig,
        trace: TraceGenerator,
        probe: P,
        policy: T,
        faults: F,
    ) -> Self {
        Self::with_faults_shared(Arc::new(config), trace, probe, policy, faults)
    }

    /// [`Processor::with_faults`] over a shared configuration.
    pub fn with_faults_shared(
        config: Arc<ProcessorConfig>,
        trace: TraceGenerator,
        probe: P,
        policy: T,
        faults: F,
    ) -> Self {
        let mut net_config = NetConfig::new(config.topology, config.link.clone());
        net_config.latency_scale = config.latency_scale;
        net_config.transmission_line_l = config.extensions.transmission_lines;

        let mem_config = MemConfig {
            critical_word_first: config.extensions.l2_critical_word
                && config.link.lanes(WireClass::L) > 0,
            ..MemConfig::default()
        };

        // Capacity is validated by the shared checker inside
        // `Network::new` below (one bound, one message); `MAX_CLUSTERS`
        // mirrors it, so `n <= ClusterMask::CAPACITY` holds here.
        let n = config.clusters();
        Processor {
            probe,
            policy,
            fetch: FetchEngine::new(trace),
            network: Network::with_faults(net_config, faults),
            lsq: LoadStoreQueue::new(config.ls_bits),
            memory: MemoryHierarchy::new(mem_config),
            steering: Steering::new(config.topology, SteeringWeights::default()),
            rob: std::collections::VecDeque::with_capacity(config.rob_size),
            rob_base: 0,
            clusters: vec![ClusterState::new(); n],
            values: Vec::new(),
            slots: ValueSlots::new(n),
            rename: [None; 64],
            actions: Vec::new(),
            deferred: std::collections::BinaryHeap::new(),
            deferred_seq: 0,
            active_loads: Vec::new(),
            wheel: CompletionWheel::new(),
            ready_queues: (0..n * FU_KINDS)
                .map(|_| std::collections::BinaryHeap::new())
                .collect(),
            store_data_pending: Vec::new(),
            retired_store: false,
            scratch: DispatchScratch::default(),
            fu_started: vec![[false; 4]; n],
            finished_scratch: Vec::new(),
            store_send_scratch: Vec::new(),
            delivered_scratch: Vec::new(),
            cycle: 0,
            committed: 0,
            dispatched: 0,
            commit_target: u64::MAX,
            misp_dispatch_wait: 0,
            misp_issue_wait: 0,
            misp_exec_wait: 0,
            misp_count: 0,
            load_lat_sum: 0,
            load_count: 0,
            lsq_wait_sum: 0,
            lsq_wait_count: 0,
            agen_to_lsq_sum: 0,
            store_addr_delay_sum: 0,
            store_addr_count: 0,
            store_issue_wait_sum: 0,
            config,
        }
    }

    /// The attached probe (e.g. to read recordings after a run).
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the attached probe (e.g. to flush final samples).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// The interconnect (telemetry needs link labels and queue depths).
    pub fn network(&self) -> &Network<F> {
        &self.network
    }

    /// Overrides the steering weights (must be called before `run`).
    pub fn set_steering_weights(&mut self, weights: SteeringWeights) {
        self.steering = Steering::new(self.config.topology, weights);
    }

    /// Mean load latency from address generation to data arrival at the
    /// consuming cluster.
    pub fn mean_load_latency(&self) -> f64 {
        self.load_lat_sum as f64 / self.load_count.max(1) as f64
    }

    /// Mean `(AGEN issue -> address at LSQ, address at LSQ -> disambiguated)`
    /// cycles for loads.
    pub fn load_lsq_breakdown(&self) -> (f64, f64) {
        let n = self.lsq_wait_count.max(1) as f64;
        (
            self.agen_to_lsq_sum as f64 / n,
            self.lsq_wait_sum as f64 / n,
        )
    }

    /// Mean cycles from a store's dispatch to its address reaching the LSQ.
    pub fn mean_store_addr_delay(&self) -> f64 {
        self.store_addr_delay_sum as f64 / self.store_addr_count.max(1) as f64
    }

    /// Mean cycles from a store's dispatch to its AGEN issuing.
    pub fn mean_store_issue_wait(&self) -> f64 {
        self.store_issue_wait_sum as f64 / self.store_addr_count.max(1) as f64
    }

    /// Mean mispredict-resolution breakdown:
    /// `(stall->dispatch, dispatch->issue, issue->resolve)` cycles.
    pub fn mispredict_breakdown(&self) -> (f64, f64, f64) {
        let n = self.misp_count.max(1) as f64;
        (
            self.misp_dispatch_wait as f64 / n,
            self.misp_issue_wait as f64 / n,
            self.misp_exec_wait as f64 / n,
        )
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The topology in effect.
    pub fn topology(&self) -> Topology {
        self.config.topology
    }
}
