//! Execution completion, network deliveries and every outbound send.
//!
//! All per-message wire-class decisions are delegated to the attached
//! [`TransferPolicy`]; this module owns the *when* and *where* (what gets
//! sent, to whom, with which delivery [`Action`]) while the policy owns
//! the *how* (class, message form, replay delay). Decision calls happen in
//! the exact order messages are sent so stateful policies observe the
//! same sequence under either kernel.

use std::cmp::Reverse;

use heterowire_interconnect::{FaultModel, MessageKind, Node, Transfer, TransferId};
use heterowire_isa::{OpClass, RegClass};
use heterowire_memory::LoadStatus;
use heterowire_telemetry::Probe;
use heterowire_wires::WireClass;

use super::policy::{CacheReturn, TransferPolicy, ValueCopy};
use super::wheel::DeferredSend;
use super::{Action, Phase, Processor, ValueInfo, IN_FLIGHT};

impl<P: Probe, T: TransferPolicy, F: FaultModel> Processor<P, T, F> {
    /// Schedules a send for cycle `at` (clamped to the next cycle, matching
    /// the reference scan — see [`DeferredSend`]).
    pub(super) fn defer_send(&mut self, at: u64, transfer: Transfer, action: Action) {
        let at = at.max(self.cycle + 1);
        let dseq = self.deferred_seq;
        self.deferred_seq += 1;
        self.deferred.push(Reverse(DeferredSend {
            at,
            dseq,
            transfer,
            action,
        }));
    }

    /// Sends a register-value copy of `producer` to `cluster`; the policy
    /// picks the class and message form. `ready_at_dispatch` marks the
    /// paper's first PW criterion.
    pub(super) fn send_value_copy(
        &mut self,
        producer: u64,
        cluster: usize,
        ready_at_dispatch: bool,
    ) {
        let (src_cluster, narrow, value, pc, critical) = {
            let v = self.value(producer).expect("value exists");
            // Completion-time copies carry the criticality mark recorded
            // when the consumer subscribed; dispatch-time copies had slack
            // by definition.
            let critical = !ready_at_dispatch && v.critical_subs.contains(cluster);
            (v.cluster, v.narrow, v.value, v.pc, critical)
        };
        let dest_iq_used = {
            let c = &self.clusters[cluster];
            c.iq_int_used + c.iq_fp_used
        };
        let decision = self.policy.value_copy(
            ValueCopy {
                narrow,
                value,
                pc,
                ready_at_dispatch,
                critical,
                src_cluster,
                dst_cluster: cluster,
                dest_iq_used,
            },
            self.cycle,
            &mut self.probe,
        );
        let transfer = Transfer {
            src: Node::Cluster(src_cluster),
            dst: Node::Cluster(cluster),
            class: decision.class,
            kind: decision.kind,
        };
        let action = Action::ValueArrive { producer, cluster };
        if decision.delay > 0 {
            self.defer_send(self.cycle + decision.delay, transfer, action);
        } else {
            let id = self
                .network
                .send_probed(transfer, self.cycle, &mut self.probe);
            self.record_action(id, action);
        }
        debug_assert!(self.value(producer).is_some(), "value exists");
        self.slots.set_arrival(producer, cluster, IN_FLIGHT);
    }

    /// Records the delivery action of a freshly sent transfer. Transfer
    /// ids are dense in send order, so actions live in a plain vector.
    pub(super) fn record_action(&mut self, id: TransferId, action: Action) {
        debug_assert_eq!(id.0 as usize, self.actions.len());
        self.actions.push(action);
    }

    /// Processes everything the network delivered this cycle.
    pub(super) fn process_deliveries(&mut self) {
        let mut delivered = std::mem::take(&mut self.delivered_scratch);
        self.network
            .take_delivered_into_probed(self.cycle, &mut delivered, &mut self.probe);
        for &(id, _t) in &delivered {
            let action = self.actions[id.0 as usize];
            match action {
                Action::ValueArrive { producer, cluster } => {
                    let cycle = self.cycle;
                    if self.value(producer).is_some() {
                        self.slots.set_arrival(producer, cluster, cycle);
                    }
                    self.wake_waiters(producer, cluster);
                }
                Action::PartialAddr { seq } => {
                    let info = self
                        .rob_get(seq)
                        .and_then(|i| i.op.addr().map(|a| (a, i.lsq_ref)));
                    if let Some((addr, lref)) = info {
                        match lref {
                            Some(r) => self.lsq.arrive_partial_ref(r, addr, self.cycle),
                            None => self.lsq.arrive_partial(seq, addr, self.cycle),
                        }
                        if let Some(i) = self.rob_get_mut(seq) {
                            if !i.op.op().is_mem() {
                                continue;
                            }
                            if i.op.op() == OpClass::Load && !i.at_cache {
                                i.at_cache = true;
                            } else {
                                continue;
                            }
                        }
                        if !self.active_loads.contains(&seq) {
                            self.active_loads.push(seq);
                        }
                    }
                }
                Action::FullAddr { seq } => {
                    let (addr, is_store, lref) = match self.rob_get(seq) {
                        Some(i) => (i.op.addr(), i.op.op() == OpClass::Store, i.lsq_ref),
                        None => (None, false, None),
                    };
                    if let Some(addr) = addr {
                        let now = self.cycle;
                        match lref {
                            Some(r) => self.lsq.arrive_full_ref(r, addr, now),
                            None => self.lsq.arrive_full(seq, addr, now),
                        }
                        if let Some(i) = self.rob_get_mut(seq) {
                            i.addr_at_lsq = now;
                        }
                        if is_store {
                            let mut delay = 0;
                            let mut iss = 0;
                            if let Some(i) = self.rob_get_mut(seq) {
                                i.store_addr_arrived = true;
                                delay = now.saturating_sub(i.dispatched_at);
                                iss = i.issued_at.saturating_sub(i.dispatched_at);
                                // Both halves at the LSQ: committable. (The
                                // address is only ever sent after AGEN, so
                                // the phase is already MemPending here.)
                                if i.store_data_arrived && i.phase == Phase::MemPending {
                                    i.phase = Phase::Done;
                                }
                            }
                            self.store_addr_delay_sum += delay;
                            self.store_issue_wait_sum += iss;
                            self.store_addr_count += 1;
                        } else {
                            let newly = match self.rob_get_mut(seq) {
                                Some(i) if !i.at_cache => {
                                    i.at_cache = true;
                                    true
                                }
                                _ => false,
                            };
                            if newly && !self.active_loads.contains(&seq) {
                                self.active_loads.push(seq);
                            }
                        }
                    }
                }
                Action::StoreData { seq } => {
                    if let Some(i) = self.rob_get_mut(seq) {
                        i.store_data_arrived = true;
                        // Data may arrive before AGEN finishes; the store
                        // then completes when its address arrives instead.
                        if i.store_addr_arrived && i.phase == Phase::MemPending {
                            i.phase = Phase::Done;
                        }
                    }
                }
                Action::CacheData { seq } => {
                    let cycle = self.cycle;
                    let (cluster, narrow, pc, has) = match self.rob_get(seq) {
                        Some(i) => (i.cluster, i.op.is_narrow_result(), i.op.pc(), true),
                        None => (0, false, 0, false),
                    };
                    if let Some(i) = self.rob_get(seq) {
                        self.load_lat_sum += cycle.saturating_sub(i.issued_at);
                        self.load_count += 1;
                    }
                    if has {
                        if let Some(i) = self.rob_get_mut(seq) {
                            i.phase = Phase::Done;
                        }
                        let v = self.values[seq as usize]
                            .get_or_insert_with(|| ValueInfo::new(cluster, narrow, 0, pc));
                        v.done_at = Some(cycle);
                        let subs = self.slots.take_subscribers(seq);
                        for c in subs.iter() {
                            self.send_value_copy(seq, c, false);
                        }
                        self.wake_waiters(seq, cluster);
                    }
                }
                Action::BranchSignal => {
                    self.fetch
                        .redirect(self.cycle + self.config.mispredict_refill);
                    if P::ENABLED {
                        self.probe.fetch_resume(self.cycle);
                    }
                }
            }
        }
        self.delivered_scratch = delivered;
    }

    /// Flushes deferred sends whose time has come, in `(at, dseq)` order.
    pub(super) fn process_deferred(&mut self) {
        while let Some(&Reverse(d)) = self.deferred.peek() {
            if d.at > self.cycle {
                break;
            }
            self.deferred.pop();
            let id = self
                .network
                .send_probed(d.transfer, self.cycle, &mut self.probe);
            self.record_action(id, d.action);
        }
    }

    /// Reference kernel: finds results produced this cycle by scanning the
    /// whole ROB for matured [`Phase::Executing`] entries.
    pub(super) fn complete_execution_scan(&mut self) {
        let cycle = self.cycle;
        let mut finished = std::mem::take(&mut self.finished_scratch);
        finished.clear();
        for (i, inst) in self.rob.iter().enumerate() {
            if let Phase::Executing(done) = inst.phase {
                if done <= cycle {
                    finished.push(self.rob_base + i as u64);
                }
            }
        }
        for &seq in &finished {
            self.finish_one(seq);
        }
        self.finished_scratch = finished;
    }

    /// Event kernel: pops exactly the instructions completing this cycle
    /// from the wheel (already in seq order — the order the scan finds
    /// them in).
    pub(super) fn complete_execution_event(&mut self) {
        let mut finished = std::mem::take(&mut self.finished_scratch);
        self.wheel.pop_due(self.cycle, &mut finished);
        for &seq in &finished {
            self.finish_one(seq);
        }
        self.finished_scratch = finished;
    }

    /// Completes one instruction whose execution finished this cycle:
    /// publishes the result and sends copies to subscribers, launches
    /// memory-op address transfers and branch signals.
    pub(super) fn finish_one(&mut self, seq: u64) {
        let cycle = self.cycle;
        if P::ENABLED {
            self.probe.complete(cycle, seq);
        }
        {
            let (op, cluster, mispredict) = {
                let i = self.rob_get(seq).expect("in rob");
                (i.op, i.cluster, i.mispredict)
            };
            match op.op() {
                OpClass::Load => {
                    // AGEN finished: ship the address to the LSQ.
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::MemPending;
                    self.send_address(seq, cluster);
                }
                OpClass::Store => {
                    let inst = self.rob_get_mut(seq).expect("in rob");
                    inst.phase = Phase::MemPending;
                    inst.agen_done = true;
                    self.send_address(seq, cluster);
                }
                OpClass::Branch => {
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::Done;
                    if mispredict {
                        let (d, i) = {
                            let inst = self.rob_get(seq).expect("in rob");
                            (inst.dispatched_at, inst.issued_at)
                        };
                        let start = self.fetch.stall_started();
                        self.misp_dispatch_wait += d.saturating_sub(start);
                        self.misp_issue_wait += i.saturating_sub(d);
                        self.misp_exec_wait += cycle.saturating_sub(i);
                        self.misp_count += 1;
                        let decision = self.policy.branch_signal(cycle, &mut self.probe);
                        let id = self.network.send_probed(
                            Transfer {
                                src: Node::Cluster(cluster),
                                dst: Node::Cache,
                                class: decision.class,
                                kind: decision.kind,
                            },
                            cycle,
                            &mut self.probe,
                        );
                        self.record_action(id, Action::BranchSignal);
                    }
                }
                _ => {
                    // ALU result: publish and notify subscribers.
                    self.rob_get_mut(seq).expect("in rob").phase = Phase::Done;
                    if let Some(d) = op.dest() {
                        self.value_mut(seq).expect("value registered").done_at = Some(cycle);
                        let subs = self.slots.take_subscribers(seq);
                        for c in subs.iter() {
                            self.send_value_copy(seq, c, false);
                        }
                        self.wake_waiters(seq, cluster);
                        // Integer results train the policy's width
                        // predictor (the detector sits next to the ALU).
                        if d.class() == RegClass::Int {
                            self.policy.observe_result(op.pc(), op.is_narrow_result());
                        }
                    }
                }
            }
        }
    }

    /// Sends the (partial +) full address of a load/store to the LSQ.
    pub(super) fn send_address(&mut self, seq: u64, cluster: usize) {
        let cycle = self.cycle;
        if self.policy.dispatches_partial_address() {
            let id = self.network.send_probed(
                Transfer {
                    src: Node::Cluster(cluster),
                    dst: Node::Cache,
                    class: WireClass::L,
                    kind: MessageKind::PartialAddress,
                },
                cycle,
                &mut self.probe,
            );
            self.record_action(id, Action::PartialAddr { seq });
        }
        let class = self.policy.full_address(cycle, &mut self.probe);
        let id = self.network.send_probed(
            Transfer {
                src: Node::Cluster(cluster),
                dst: Node::Cache,
                class,
                kind: MessageKind::FullAddress,
            },
            cycle,
            &mut self.probe,
        );
        self.record_action(id, Action::FullAddr { seq });
    }

    /// Advances loads at the cache through disambiguation and RAM access
    /// (shared by both kernels — the active-load list is already sparse).
    pub(super) fn progress_memory_loads(&mut self) {
        let cycle = self.cycle;
        let use_partial = self.config.opts.cache_pipeline;

        // Loads at the LSQ/cache.
        let mut i = 0;
        while i < self.active_loads.len() {
            let seq = self.active_loads[i];
            let Some(inst) = self.rob_get(seq) else {
                self.active_loads.swap_remove(i);
                continue;
            };
            if inst.phase != Phase::MemPending {
                i += 1;
                continue;
            }
            let addr = inst.op.addr().expect("loads have addresses");
            let cluster = inst.cluster;
            let narrow = inst.op.is_narrow_result();
            let pc = inst.op.pc();
            let ram_start = inst.ram_start;
            let lref = inst.lsq_ref.expect("memory op has an LSQ handle");
            match self
                .lsq
                .load_status_ref_probed(lref, cycle, use_partial, &mut self.probe)
            {
                LoadStatus::PartialReady => {
                    if ram_start.is_none() {
                        self.rob_get_mut(seq).expect("in rob").ram_start = Some(cycle);
                        if P::ENABLED {
                            self.probe.lsq_partial_ready(cycle, seq);
                        }
                    }
                    i += 1;
                }
                LoadStatus::FullReady { forward } => {
                    {
                        let (at_lsq, issued) = {
                            let i = self.rob_get(seq).expect("in rob");
                            (i.addr_at_lsq, i.issued_at)
                        };
                        self.lsq_wait_sum += cycle.saturating_sub(at_lsq);
                        self.agen_to_lsq_sum += at_lsq.saturating_sub(issued);
                        self.lsq_wait_count += 1;
                    }
                    let data_ready = if forward {
                        cycle + 1
                    } else {
                        let accelerated =
                            use_partial && ram_start.map(|r| r < cycle).unwrap_or(false);
                        let rs = if accelerated {
                            ram_start.unwrap()
                        } else {
                            cycle
                        };
                        self.memory.load(addr, rs, cycle, accelerated)
                    };
                    // Return the data to the cluster over the network.
                    let int_dest = self
                        .rob_get(seq)
                        .and_then(|i| i.op.dest())
                        .map(|d| d.class() == RegClass::Int)
                        .unwrap_or(false);
                    let decision = self.policy.cache_data(
                        CacheReturn {
                            narrow,
                            pc,
                            int_dest,
                        },
                        cycle,
                        &mut self.probe,
                    );
                    self.defer_send(
                        data_ready,
                        Transfer {
                            src: Node::Cache,
                            dst: Node::Cluster(cluster),
                            class: decision.class,
                            kind: decision.kind,
                        },
                        Action::CacheData { seq },
                    );
                    self.active_loads.swap_remove(i);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// Reference kernel: scans the whole ROB for stores whose data operand
    /// became ready and launches their data transfers.
    pub(super) fn progress_memory_stores_scan(&mut self) {
        let cycle = self.cycle;
        // Store data: send once the data operand is ready in the cluster.
        let mut to_send = std::mem::take(&mut self.store_send_scratch);
        to_send.clear();
        for (off, inst) in self.rob.iter().enumerate() {
            if inst.op.op() != OpClass::Store || inst.store_data_sent {
                continue;
            }
            // Data operand is the second source when present.
            let ready = match inst.src_producer[1] {
                None => true,
                Some(p) => self
                    .value_ready_in(p, inst.cluster)
                    .map(|c| c <= cycle)
                    .unwrap_or(false),
            };
            if ready {
                to_send.push((self.rob_base + off as u64, inst.cluster));
            }
        }
        for &(seq, cluster) in &to_send {
            self.send_store_data(seq, cluster);
        }
        self.store_send_scratch = to_send;
    }

    /// Event kernel: drains the stores whose data operand became ready
    /// (registered at dispatch or woken by a value event), in seq order —
    /// the order the reference scan finds them in.
    pub(super) fn progress_memory_stores_event(&mut self) {
        if self.store_data_pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.store_data_pending);
        pending.sort_unstable();
        for &s in &pending {
            let seq = u64::from(s);
            let cluster = match self.rob_get(seq) {
                Some(inst) if !inst.store_data_sent => inst.cluster,
                _ => continue, // already sent or squashed
            };
            self.send_store_data(seq, cluster);
        }
        pending.clear();
        self.store_data_pending = pending;
    }

    /// Launches one store's data transfer to the LSQ.
    pub(super) fn send_store_data(&mut self, seq: u64, cluster: usize) {
        let cycle = self.cycle;
        let class = self.policy.store_data(cycle, &mut self.probe);
        let id = self.network.send_probed(
            Transfer {
                src: Node::Cluster(cluster),
                dst: Node::Cache,
                class,
                kind: MessageKind::StoreData,
            },
            cycle,
            &mut self.probe,
        );
        self.record_action(id, Action::StoreData { seq });
        self.rob_get_mut(seq).expect("in rob").store_data_sent = true;
    }
}
