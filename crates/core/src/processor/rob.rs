//! ROB, value and waiter-list bookkeeping, and commit.
//!
//! The ROB is a dense `VecDeque` indexed by `seq - rob_base`; value
//! records live in a seq-indexed vector so the rename/dispatch path never
//! hashes. Waiter lists are intrusive singly-linked lists threaded through
//! the [`Inflight`] entries (see [`super`] for the node encoding).

use std::cmp::Reverse;

use heterowire_interconnect::FaultModel;
use heterowire_isa::{OpClass, RegClass};
use heterowire_telemetry::Probe;

use super::policy::TransferPolicy;
use super::{Inflight, Phase, Processor, ValueInfo, FU_KINDS, IN_FLIGHT, NO_WAITER};

impl<P: Probe, T: TransferPolicy, F: FaultModel> Processor<P, T, F> {
    pub(super) fn rob_get(&self, seq: u64) -> Option<&Inflight> {
        if seq < self.rob_base {
            return None;
        }
        self.rob.get((seq - self.rob_base) as usize)
    }

    pub(super) fn rob_get_mut(&mut self, seq: u64) -> Option<&mut Inflight> {
        if seq < self.rob_base {
            return None;
        }
        self.rob.get_mut((seq - self.rob_base) as usize)
    }

    /// The value record for `producer`, if one was registered.
    pub(super) fn value(&self, producer: u64) -> Option<&ValueInfo> {
        self.values.get(producer as usize)?.as_ref()
    }

    pub(super) fn value_mut(&mut self, producer: u64) -> Option<&mut ValueInfo> {
        self.values.get_mut(producer as usize)?.as_mut()
    }

    /// Cycle the value produced by `producer` is usable in `cluster`, if
    /// known yet.
    pub(super) fn value_ready_in(&self, producer: u64, cluster: usize) -> Option<u64> {
        let v = self.value(producer)?;
        if v.cluster == cluster {
            v.done_at
        } else {
            let arrival = self.slots.arrival(producer, cluster);
            (arrival < IN_FLIGHT).then_some(arrival)
        }
    }

    /// Links `seq`'s source `slot` into `producer`'s waiter list for
    /// `cluster`; [`Processor::wake_waiters`] unlinks it when the value
    /// becomes usable there.
    pub(super) fn register_waiter(&mut self, producer: u64, cluster: usize, seq: u64, slot: usize) {
        debug_assert!(seq < (1 << 31), "waiter seqs must fit 31 bits");
        let node = ((seq as u32) << 1) | slot as u32;
        debug_assert!(self.value(producer).is_some(), "producer value present");
        let head = self.slots.replace_waiter(producer, cluster, node);
        self.rob_get_mut(seq).expect("waiter in rob").waiter_next[slot] = head;
    }

    /// Wakes every instruction waiting for `producer`'s value in `cluster`:
    /// issue operands decrement their pending count (reaching 0 enqueues
    /// the instruction on its ready queue), store-data operands enqueue the
    /// store for a data send. Wake order within one event is irrelevant —
    /// both queues restore seq order before use.
    pub(super) fn wake_waiters(&mut self, producer: u64, cluster: usize) {
        if self.value(producer).is_none() {
            return;
        }
        let mut node = self.slots.replace_waiter(producer, cluster, NO_WAITER);
        while node != NO_WAITER {
            let seq = u64::from(node >> 1);
            let slot = (node & 1) as usize;
            let (next, store_data, ready, rq) = {
                let inst = self.rob_get_mut(seq).expect("waiter in rob");
                let next = std::mem::replace(&mut inst.waiter_next[slot], NO_WAITER);
                if slot == 1 && inst.op.op() == OpClass::Store {
                    (next, true, false, 0)
                } else {
                    inst.pending_srcs -= 1;
                    let rq = inst.cluster * FU_KINDS + inst.op.op().unit().index();
                    (next, false, inst.pending_srcs == 0, rq)
                }
            };
            node = next;
            if store_data {
                self.store_data_pending.push(seq as u32);
            } else if ready {
                self.ready_queues[rq].push(Reverse(seq));
            }
        }
    }

    /// Commits completed instructions from the ROB head.
    pub(super) fn commit(&mut self) {
        let cycle = self.cycle;
        let mut budget = (self.config.dispatch_width as u64)
            .min(self.commit_target.saturating_sub(self.committed));
        while budget > 0 {
            let Some(head) = self.rob.front() else { break };
            if head.phase != Phase::Done {
                break;
            }
            let inst = self.rob.pop_front().expect("nonempty");
            let seq = self.rob_base;
            self.rob_base += 1;
            budget -= 1;
            self.committed += 1;
            if P::ENABLED {
                self.probe.commit(cycle, seq);
            }
            let cs = &mut self.clusters[inst.cluster];
            if let Some(d) = inst.op.dest() {
                if d.class() == RegClass::Fp {
                    cs.regs_fp_used = cs.regs_fp_used.saturating_sub(1);
                } else {
                    cs.regs_int_used = cs.regs_int_used.saturating_sub(1);
                }
            }
            if inst.op.op().is_mem() {
                self.lsq.retire_through(seq);
            }
            if inst.op.op() == OpClass::Store {
                let addr = inst.op.addr().expect("stores have addresses");
                self.memory.store(addr, cycle);
                // Retiring a store can unblock a waiting load's
                // disambiguation without any network event; the skipper
                // must poll the LSQ next cycle.
                self.retired_store = true;
            }
        }
    }
}
