//! The run loops: issue, the per-cycle step sequence, idle-cycle skipping
//! and results assembly.

use std::cmp::Reverse;

use heterowire_interconnect::{FaultModel, NetStats};
use heterowire_telemetry::{BlockedTransfer, Probe, StallReport};

use super::policy::{NarrowStats, TransferPolicy};
use super::{Phase, Processor, FU_KINDS};
use crate::results::SimResults;

/// Which scheduling kernel drives the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// Completion wheel + wakeup lists + idle-cycle skipping.
    Event,
    /// The seed's cycle-driven full-ROB scans (equivalence reference).
    Reference,
}

impl<P: Probe, T: TransferPolicy, F: FaultModel> Processor<P, T, F> {
    /// Reference kernel: issues ready instructions to functional units by
    /// scanning the whole ROB (oldest first, one new op per FU kind per
    /// cluster per cycle).
    fn issue_scan(&mut self) {
        let cycle = self.cycle;
        for f in self.fu_started.iter_mut() {
            *f = [false; 4];
        }

        // Resolve cached source readiness lazily.
        let len = self.rob.len();
        for off in 0..len {
            let (cluster, phase, op) = {
                let i = &self.rob[off];
                (i.cluster, i.phase, i.op)
            };
            if phase != Phase::Waiting {
                continue;
            }
            let kind = op.op().unit();
            if self.fu_started[cluster][kind.index()] {
                continue;
            }
            if self.clusters[cluster].fu_free[kind.index()] > cycle {
                continue;
            }
            // Operand readiness: stores only need their address operand
            // (source 0) to begin AGEN.
            let needed = if op.op() == heterowire_isa::OpClass::Store {
                1
            } else {
                2
            };
            let mut ready = true;
            for s in 0..needed {
                let cached = self.rob[off].src_ready[s];
                if cached != u64::MAX {
                    if cached > cycle {
                        ready = false;
                        break;
                    }
                    continue;
                }
                match self.rob[off].src_producer[s] {
                    None => {
                        self.rob[off].src_ready[s] = 0;
                    }
                    Some(p) => match self.value_ready_in(p, cluster) {
                        Some(c) => {
                            self.rob[off].src_ready[s] = c;
                            if c > cycle {
                                ready = false;
                                break;
                            }
                        }
                        None => {
                            ready = false;
                            break;
                        }
                    },
                }
            }
            if !ready {
                continue;
            }

            // Issue.
            self.fu_started[cluster][kind.index()] = true;
            let latency = op.op().latency() as u64;
            let cs = &mut self.clusters[cluster];
            cs.fu_free[kind.index()] = if op.op().pipelined() {
                cycle + 1
            } else {
                cycle + latency
            };
            if op.op().is_fp() {
                cs.iq_fp_used = cs.iq_fp_used.saturating_sub(1);
            } else {
                cs.iq_int_used = cs.iq_int_used.saturating_sub(1);
            }
            self.rob[off].phase = Phase::Executing(cycle + latency);
            self.rob[off].issued_at = cycle;
            if P::ENABLED {
                self.probe.issue(cycle, self.rob_base + off as u64, cluster);
            }
        }
    }

    /// Event kernel: pops the oldest known-ready instruction per (cluster,
    /// FU kind) ready queue — exactly the instruction the reference scan
    /// would pick — and schedules its completion on the wheel.
    fn issue_event(&mut self) {
        let cycle = self.cycle;
        for cluster in 0..self.clusters.len() {
            for kind in 0..FU_KINDS {
                if self.clusters[cluster].fu_free[kind] > cycle {
                    continue;
                }
                let Some(Reverse(seq)) = self.ready_queues[cluster * FU_KINDS + kind].pop() else {
                    continue;
                };
                let op = self.rob_get(seq).expect("ready instr in rob").op;
                debug_assert_eq!(op.op().unit().index(), kind);
                let latency = op.op().latency() as u64;
                let cs = &mut self.clusters[cluster];
                cs.fu_free[kind] = if op.op().pipelined() {
                    cycle + 1
                } else {
                    cycle + latency
                };
                if op.op().is_fp() {
                    cs.iq_fp_used = cs.iq_fp_used.saturating_sub(1);
                } else {
                    cs.iq_int_used = cs.iq_int_used.saturating_sub(1);
                }
                let inst = self.rob_get_mut(seq).expect("ready instr in rob");
                inst.phase = Phase::Executing(cycle + latency);
                inst.issued_at = cycle;
                if P::ENABLED {
                    self.probe.issue(cycle, seq, cluster);
                }
                self.wheel.schedule(cycle, cycle + latency, seq);
            }
        }
    }

    /// Runs the simulation with the event-driven kernel until
    /// `instructions` have committed (with the first `warmup` committed
    /// instructions excluded from the returned statistics), and returns
    /// the results.
    ///
    /// # Panics
    ///
    /// Panics if the forward-progress watchdog fires (no commit for
    /// 100 000 cycles) — without fault injection this indicates a
    /// simulator bug, not a workload property. Fault-injecting harnesses
    /// should call [`Processor::try_run`] instead: a saturated error rate
    /// can livelock the fabric legitimately (a retry storm), and the
    /// structured [`StallReport`] turns that into a failed row rather
    /// than a dead sweep.
    pub fn run(&mut self, instructions: u64, warmup: u64) -> SimResults {
        match self.try_run(instructions, warmup) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Processor::run`], returning the watchdog's diagnostic
    /// [`StallReport`] as a structured error instead of panicking (boxed:
    /// the report is a cold-path diagnostic far larger than the Ok lane).
    pub fn try_run(
        &mut self,
        instructions: u64,
        warmup: u64,
    ) -> Result<SimResults, Box<StallReport>> {
        self.run_kernel(instructions, warmup, Kernel::Event)
    }

    /// Runs the seed's cycle-driven reference loop — full-ROB scans every
    /// cycle, no idle-cycle skipping. Kept so the equivalence tests can
    /// assert the event-driven kernel is bit-identical to it.
    ///
    /// # Panics
    ///
    /// Panics when the watchdog fires, like [`Processor::run`].
    pub fn run_reference(&mut self, instructions: u64, warmup: u64) -> SimResults {
        match self.try_run_reference(instructions, warmup) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Processor::run_reference`] with the structured stall error.
    pub fn try_run_reference(
        &mut self,
        instructions: u64,
        warmup: u64,
    ) -> Result<SimResults, Box<StallReport>> {
        self.run_kernel(instructions, warmup, Kernel::Reference)
    }

    /// Assembles the watchdog's diagnostic snapshot (cold path: runs once,
    /// right before the run aborts).
    fn stall_report(&self) -> StallReport {
        let net = self.network.stats();
        StallReport {
            cycle: self.cycle,
            committed: self.committed,
            rob_len: self.rob.len(),
            rob_head: self.rob.front().map(|i| format!("{:?}", (i.op, i.phase))),
            net_pending: self.network.pending_len(),
            net_inflight: self.network.inflight_len(),
            faults_detected: net.faults_detected,
            retransmits: net.retransmits,
            escalations: net.escalations,
            oldest_blocked: self
                .network
                .oldest_pending()
                .map(|(id, class, enqueued, attempt)| BlockedTransfer {
                    id: id.0,
                    class,
                    enqueued,
                    attempt,
                }),
            link: self.config.link.to_string(),
        }
    }

    /// The earliest future cycle at which anything can happen, bounded by
    /// `cap` (the cycle where the deadlock detector must fire). Every term
    /// mirrors one way the reference loop's cycle body can act: a
    /// committable ROB head, dispatchable fetch-queue entries, a fetch /
    /// network / LSQ event, a deferred send, a wheel completion, a ready
    /// instruction waiting on its FU, pending store-data sends, or a store
    /// retirement that may re-disambiguate a waiting load. The network term
    /// is exact and O(1): pending arbitration means next cycle, otherwise
    /// the indexed engine reads the earliest delivery off its wheel.
    fn next_event_cycle(&self, cap: u64) -> u64 {
        let now = self.cycle;
        let soon = now + 1;
        if self.retired_store
            || !self.store_data_pending.is_empty()
            || self.rob.front().map(|i| i.phase == Phase::Done) == Some(true)
            || (self.fetch.queue_len() > 0 && self.rob.len() < self.config.rob_size)
        {
            return soon;
        }
        let mut next = cap;
        if let Some(c) = self.fetch.next_event_cycle(now) {
            next = next.min(c);
        }
        if let Some(c) = self.network.next_event_cycle(now) {
            next = next.min(c);
        }
        if let Some(Reverse(d)) = self.deferred.peek() {
            next = next.min(d.at);
        }
        if let Some(c) = self.wheel.next_due() {
            next = next.min(c.max(soon));
        }
        for (idx, q) in self.ready_queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            let fu_free = self.clusters[idx / FU_KINDS].fu_free[idx % FU_KINDS];
            next = next.min(fu_free.max(soon));
        }
        if let Some(c) = self.lsq.next_event_cycle(now) {
            next = next.min(c);
        }
        next.max(soon)
    }

    fn run_kernel(
        &mut self,
        instructions: u64,
        warmup: u64,
        kernel: Kernel,
    ) -> Result<SimResults, Box<StallReport>> {
        assert!(instructions > 0, "must simulate at least one instruction");
        let target = instructions + warmup;
        self.commit_target = target;
        let mut warm_cycle = 0u64;
        let mut warm_net = NetStats::default();
        let mut warm_narrow = NarrowStats::default();
        let mut warm_done = warmup == 0;
        let mut last_commit_cycle = 0u64;
        let mut last_committed = 0u64;

        while self.committed < target {
            self.cycle += 1;
            self.retired_store = false;
            // An empty-pending tick is a no-op (no departures, no stats, no
            // probe events), so skip the call entirely; the network's
            // monotonic-cycle contract allows gaps.
            if self.network.pending_len() > 0 {
                self.network.tick_probed(self.cycle, &mut self.probe);
            }
            self.process_deliveries();
            self.process_deferred();
            match kernel {
                Kernel::Event => self.complete_execution_event(),
                Kernel::Reference => self.complete_execution_scan(),
            }
            self.progress_memory_loads();
            match kernel {
                Kernel::Event => self.progress_memory_stores_event(),
                Kernel::Reference => self.progress_memory_stores_scan(),
            }
            self.commit();
            match kernel {
                Kernel::Event => self.issue_event(),
                Kernel::Reference => self.issue_scan(),
            }
            self.dispatch();
            self.fetch.tick_probed(self.cycle, &mut self.probe);
            if P::ENABLED {
                // Once per *executed* cycle — skipped idle cycles are not
                // sampled, so histograms weight active cycles only.
                let ready: usize = self.ready_queues.iter().map(|q| q.len()).sum();
                self.probe
                    .occupancy(self.cycle, self.rob.len(), self.lsq.len(), ready);
            }

            if !warm_done && self.committed >= warmup {
                warm_done = true;
                warm_cycle = self.cycle;
                warm_net = self.network.stats();
                warm_narrow = self.policy.narrow_stats();
            }
            if self.committed > last_committed {
                last_committed = self.committed;
                last_commit_cycle = self.cycle;
            } else if self.cycle - last_commit_cycle > 100_000 {
                let report = self.stall_report();
                if P::ENABLED {
                    self.probe.stall(&report);
                }
                return Err(Box::new(report));
            }
            if self.fetch.is_done() && self.rob.is_empty() {
                break;
            }
            if matches!(kernel, Kernel::Event) {
                // Idle-cycle skipping: jump to the cycle before the next
                // event (capped so the deadlock panic above still fires at
                // the reference loop's exact cycle). Skipped cycles are
                // no-ops in the reference loop except for fetch's stall
                // counter, which is credited in bulk.
                let next = self.next_event_cycle(last_commit_cycle + 100_001);
                if next > self.cycle + 1 {
                    self.fetch.note_skipped_stall_cycles(next - 1 - self.cycle);
                    self.cycle = next - 1;
                }
            }
        }

        let cycles = self.cycle - warm_cycle;
        let insts = self.committed - warmup.min(self.committed);
        let net = self.network.stats();
        let mut measured = net;
        for i in 0..4 {
            measured.transfers[i] -= warm_net.transfers[i];
            measured.bit_hops[i] -= warm_net.bit_hops[i];
        }
        measured.dynamic_energy -= warm_net.dynamic_energy;
        measured.queue_cycles -= warm_net.queue_cycles;
        measured.delivered -= warm_net.delivered;
        measured.faults_detected -= warm_net.faults_detected;
        measured.retransmits -= warm_net.retransmits;
        measured.escalations -= warm_net.escalations;
        measured.retry_cycles -= warm_net.retry_cycles;

        // Warmup-excluded narrow-predictor rates.
        let narrow = self.policy.narrow_stats();
        let hits = narrow.hits - warm_narrow.hits;
        let missed = narrow.missed - warm_narrow.missed;
        let false_narrow = narrow.false_narrow - warm_narrow.false_narrow;
        let narrow_coverage = if hits + missed == 0 {
            0.0
        } else {
            hits as f64 / (hits + missed) as f64
        };
        let narrow_false_rate = if hits + false_narrow == 0 {
            0.0
        } else {
            false_narrow as f64 / (hits + false_narrow) as f64
        };

        Ok(SimResults {
            instructions: insts,
            cycles,
            net: measured,
            leakage_weight: self.network.leakage_weight(),
            fetch: self.fetch.stats(),
            lsq: self.lsq.stats(),
            mem: self.memory.stats(),
            narrow_coverage,
            narrow_false_rate,
            metal_area: self.network.metal_area(),
        })
    }
}
