//! Dispatch: fetch queue → steering → ROB/issue-queue insertion, with
//! cross-cluster operand copies/subscriptions and event-kernel readiness
//! registration.

use std::cmp::Reverse;

use heterowire_interconnect::FaultModel;
use heterowire_isa::{OpClass, RegClass};
use heterowire_telemetry::Probe;

use super::policy::TransferPolicy;
use super::{Inflight, Phase, Processor, ValueInfo, FU_KINDS, NOT_SENT, NO_WAITER};
use crate::steer::{ClusterView, ProducerInfo};

impl<P: Probe, T: TransferPolicy, F: FaultModel> Processor<P, T, F> {
    /// Dispatches from the fetch queue into the ROB and issue queues.
    pub(super) fn dispatch(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut budget = self.config.dispatch_width;
        while budget > 0 {
            if self.rob.len() >= self.config.rob_size {
                break;
            }
            let Some(fetched) = self.fetch.peek().copied() else {
                break;
            };
            let op = fetched.op;

            // Gather producer info for steering.
            scratch.producers.clear();
            let mut src_producer = [None; 2];
            let mut youngest_pending: Option<u64> = None;
            for (s, slot) in op.src_slots().into_iter().enumerate() {
                let Some(reg) = slot else { continue };
                let p = self.rename[reg.flat_index()];
                src_producer[s] = p;
                if let Some(p) = p {
                    if let Some(v) = self.value(p) {
                        if v.done_at.is_none() && youngest_pending.map(|y| p > y).unwrap_or(true) {
                            youngest_pending = Some(p);
                        }
                        scratch.producers.push(ProducerInfo {
                            cluster: v.cluster,
                            critical: false,
                        });
                    }
                }
            }
            // Mark the youngest still-pending producer as critical.
            if let Some(y) = youngest_pending {
                let yc = self.value(y).expect("pending producer").cluster;
                if let Some(pi) = scratch.producers.iter_mut().find(|pi| pi.cluster == yc) {
                    pi.critical = true;
                }
            }

            // Resource views.
            let is_fp_q = op.op().is_fp();
            scratch.views.clear();
            scratch.views.extend(self.clusters.iter().map(|c| {
                let free_iq = if is_fp_q {
                    self.config.iq_per_cluster - c.iq_fp_used
                } else {
                    self.config.iq_per_cluster - c.iq_int_used
                };
                let free_regs = match op.dest() {
                    None => usize::MAX,
                    Some(d) if d.class() == RegClass::Fp => {
                        self.config.regs_per_cluster - c.regs_fp_used
                    }
                    Some(_) => self.config.regs_per_cluster - c.regs_int_used,
                };
                ClusterView { free_iq, free_regs }
            }));

            let chosen = self.steering.choose_into(
                op.op() == OpClass::Load,
                &scratch.producers,
                &scratch.views,
                &mut scratch.scores,
            );
            if P::ENABLED {
                self.probe.steer_decision(self.cycle, chosen);
            }
            let Some(cluster) = chosen else {
                break; // structural stall
            };

            // Consume the fetch-queue entry.
            let fetched = self.fetch.pop().expect("peeked");
            budget -= 1;
            self.dispatched += 1;

            // Allocate resources.
            {
                let cs = &mut self.clusters[cluster];
                if is_fp_q {
                    cs.iq_fp_used += 1;
                } else {
                    cs.iq_int_used += 1;
                }
                if let Some(d) = op.dest() {
                    if d.class() == RegClass::Fp {
                        cs.regs_fp_used += 1;
                    } else {
                        cs.regs_int_used += 1;
                    }
                }
            }
            let seq = op.seq();
            debug_assert_eq!(seq, self.rob_base + self.rob.len() as u64);
            debug_assert_eq!(seq as usize, self.values.len(), "seqs are dense");

            // Register the destination value (a slot exists for every
            // dispatched op, `None` when there is no destination) and
            // rename. The slot tables grow a row for every seq so their
            // offsets stay seq-dense too.
            self.values.push(
                op.dest()
                    .map(|_| ValueInfo::new(cluster, op.is_narrow_result(), op.result(), op.pc())),
            );
            self.slots.push_value();
            if let Some(d) = op.dest() {
                self.rename[d.flat_index()] = Some(seq);
            }

            // Cross-cluster operand copies / subscriptions.
            for &p in src_producer.iter().flatten() {
                let (v_cluster, v_done) = {
                    let v = self.value(p).expect("present");
                    (v.cluster, v.done_at.is_some())
                };
                if v_cluster == cluster || self.slots.arrival(p, cluster) != NOT_SENT {
                    continue;
                }
                if v_done {
                    self.send_value_copy(p, cluster, true);
                } else {
                    // Remember whether this subscription is the consumer's
                    // last-arriving operand: the same criticality signal
                    // steering uses feeds the completion-time copy.
                    self.slots.push_subscriber_unique(p, cluster);
                    if youngest_pending == Some(p) {
                        self.value_mut(p)
                            .expect("present")
                            .critical_subs
                            .insert(cluster);
                    }
                }
            }

            // LSQ entry for memory ops.
            let lsq_ref = op
                .op()
                .is_mem()
                .then(|| self.lsq.insert(seq, op.op() == OpClass::Store));

            self.rob.push_back(Inflight {
                op,
                cluster,
                phase: Phase::Waiting,
                src_producer,
                src_ready: [u64::MAX; 2],
                mispredict: fetched.mispredicted,
                dispatched_at: self.cycle,
                issued_at: 0,
                ram_start: None,
                at_cache: false,
                addr_at_lsq: 0,
                lsq_ref,
                agen_done: false,
                store_data_sent: false,
                store_addr_arrived: false,
                store_data_arrived: false,
                pending_srcs: 0,
                waiter_next: [NO_WAITER; 2],
            });
            if P::ENABLED {
                self.probe.dispatch(self.cycle, seq, cluster, op.op());
            }

            // Event-kernel readiness registration. Value stamps are always
            // in the past, so `Some` here means usable now; `None` sources
            // link into the producer's waiter list and wake on the value's
            // publish/arrival event. Harmless (never drained) under the
            // reference kernel.
            let needed = if op.op() == OpClass::Store { 1 } else { 2 };
            let mut pending = 0u8;
            for (s, &producer) in src_producer.iter().enumerate().take(needed) {
                if let Some(p) = producer {
                    if self.value_ready_in(p, cluster).is_none() {
                        pending += 1;
                        self.register_waiter(p, cluster, seq, s);
                    }
                }
            }
            self.rob_get_mut(seq).expect("just pushed").pending_srcs = pending;
            if pending == 0 {
                self.ready_queues[cluster * FU_KINDS + op.op().unit().index()].push(Reverse(seq));
            }
            // Store data operand (slot 1) feeds the data-send queue, not
            // the issue queue.
            if op.op() == OpClass::Store {
                match src_producer[1] {
                    Some(p) if self.value_ready_in(p, cluster).is_none() => {
                        self.register_waiter(p, cluster, seq, 1);
                    }
                    _ => self.store_data_pending.push(seq as u32),
                }
            }
        }
        self.scratch = scratch;
    }
}
