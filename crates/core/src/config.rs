//! Processor configuration: Table-1 machine parameters, the optimization
//! toggles, and the interconnect model space — the ten named presets of
//! Tables 3 and 4 ([`InterconnectModel`]) plus arbitrary data-driven
//! compositions ([`ModelSpec`], parsed from `custom:<spec>` strings).

use std::fmt;

use heterowire_interconnect::Topology;
use heterowire_wires::{LinkComposition, LinkSpec, SpecError, WireClass};

/// Which of the paper's microarchitectural optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Partial-address L-Wire cache pipeline (§4 "Accelerating Cache
    /// Access").
    pub cache_pipeline: bool,
    /// Narrow bit-width operand transfers on L-Wires.
    pub narrow_operands: bool,
    /// Branch mispredict signal on L-Wires.
    pub branch_signal: bool,
    /// Non-critical traffic (ready-at-dispatch operands, store data) on
    /// PW-Wires.
    pub pw_steering: bool,
    /// Load-imbalance overflow steering between B and PW planes.
    pub load_balance: bool,
    /// Use the 8K-entry narrow predictor rather than oracle knowledge of
    /// result widths (the paper evaluates with the optimistic assumption
    /// but validates this predictor).
    pub narrow_predictor: bool,
}

impl Optimizations {
    /// Everything off — the homogeneous baseline behaviour.
    pub fn none() -> Self {
        Optimizations {
            cache_pipeline: false,
            narrow_operands: false,
            branch_signal: false,
            pw_steering: false,
            load_balance: false,
            narrow_predictor: true,
        }
    }

    /// Enables the subset that the link composition supports: L-Wire
    /// optimizations when `l` planes exist, PW steering when both `b` and
    /// `pw` exist.
    pub fn for_link(link: &LinkComposition) -> Self {
        let has_l = link.lanes(WireClass::L) > 0;
        let has_b = link.lanes(WireClass::B) > 0;
        let has_pw = link.lanes(WireClass::Pw) > 0;
        Optimizations {
            cache_pipeline: has_l,
            narrow_operands: has_l,
            branch_signal: has_l,
            pw_steering: has_b && has_pw,
            load_balance: has_b && has_pw,
            narrow_predictor: true,
        }
    }
}

/// Optional extensions the paper discusses but does not evaluate
/// (§4 "other forms of data compaction", §5.3 critical words from L2/L3,
/// §2/§5.2 transmission lines). All off by default; the ablation harness
/// measures each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extensions {
    /// Frequent-value compaction (Yang et al. (ref. 47)): wide values matching
    /// a small frequent-value table ride L-Wires as encoded indices.
    pub frequent_value: bool,
    /// Critical-word-first refills from L2/DRAM over L-Wires.
    pub l2_critical_word: bool,
    /// L-Wires implemented as transmission lines: latency immune to the
    /// wire-constrained scaling and one third the dynamic energy.
    pub transmission_lines: bool,
}

/// Full processor configuration (Table 1 defaults).
#[derive(Debug, Clone)]
pub struct ProcessorConfig {
    /// Interconnect topology (4-cluster crossbar or 16-cluster hierarchy).
    pub topology: Topology,
    /// Wire composition of one direction of a cluster link.
    pub link: LinkComposition,
    /// Optimization toggles.
    pub opts: Optimizations,
    /// Reorder buffer size (480).
    pub rob_size: usize,
    /// Issue queue entries per cluster, int and fp each (15).
    pub iq_per_cluster: usize,
    /// Physical registers per cluster, int and fp each (32).
    pub regs_per_cluster: usize,
    /// Dispatch (and commit) width (8).
    pub dispatch_width: usize,
    /// Minimum branch mispredict penalty: front-end refill depth (12).
    pub mispredict_refill: u64,
    /// LS bits compared in the partial-address LSQ check (8).
    pub ls_bits: u32,
    /// Interconnect latency multiplier (sensitivity studies double it).
    pub latency_scale: f64,
    /// Optional paper-discussed extensions (all off by default).
    pub extensions: Extensions,
}

impl ProcessorConfig {
    /// The paper's baseline: 4 clusters, Model I (144 B-Wires), no
    /// optimizations.
    pub fn baseline4() -> Self {
        ProcessorConfig {
            topology: Topology::crossbar4(),
            link: InterconnectModel::I.link(),
            opts: Optimizations::none(),
            rob_size: 480,
            iq_per_cluster: 15,
            regs_per_cluster: 32,
            dispatch_width: 8,
            mispredict_refill: 12,
            ls_bits: 8,
            latency_scale: 1.0,
            extensions: Extensions::default(),
        }
    }

    /// Builds the configuration for one of the Table-3/4 interconnect
    /// models on the given topology, with all supported optimizations on.
    pub fn for_model(model: InterconnectModel, topology: Topology) -> Self {
        Self::for_model_spec(&model.spec(), topology)
    }

    /// Builds the configuration for any [`ModelSpec`] — a named preset or
    /// a `custom:<spec>` composition — with all optimizations the link's
    /// planes support enabled.
    pub fn for_model_spec(spec: &ModelSpec, topology: Topology) -> Self {
        let link = spec.link().clone();
        ProcessorConfig {
            topology,
            opts: Optimizations::for_link(&link),
            link,
            ..Self::baseline4()
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.topology.clusters()
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::baseline4()
    }
}

/// The ten interconnect models of Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum InterconnectModel {
    I,
    II,
    III,
    IV,
    V,
    VI,
    VII,
    VIII,
    IX,
    X,
}

impl InterconnectModel {
    /// All ten models in table order.
    pub const ALL: [InterconnectModel; 10] = [
        InterconnectModel::I,
        InterconnectModel::II,
        InterconnectModel::III,
        InterconnectModel::IV,
        InterconnectModel::V,
        InterconnectModel::VI,
        InterconnectModel::VII,
        InterconnectModel::VIII,
        InterconnectModel::IX,
        InterconnectModel::X,
    ];

    /// Data-driven spec string for this model's link composition (Table
    /// 3's "Description of each link" column in [`LinkSpec`] grammar).
    /// The presets are defined by these strings: [`Self::link`] is
    /// literally `spec_str().parse()`.
    pub fn spec_str(self) -> &'static str {
        match self {
            InterconnectModel::I => "b144",
            InterconnectModel::II => "pw288",
            InterconnectModel::III => "pw144+l36",
            InterconnectModel::IV => "b288",
            InterconnectModel::V => "b144+pw288",
            InterconnectModel::VI => "pw288+l36",
            InterconnectModel::VII => "b144+l36",
            InterconnectModel::VIII => "b432",
            InterconnectModel::IX => "b288+l36",
            InterconnectModel::X => "b144+pw288+l36",
        }
    }

    /// The [`ModelSpec`] form of this preset.
    pub fn spec(self) -> ModelSpec {
        ModelSpec::preset(self)
    }

    /// The cluster-link wire composition of this model (Table 3's
    /// "Description of each link" column).
    pub fn link(self) -> LinkComposition {
        self.spec_str()
            .parse::<LinkSpec>()
            .expect("preset spec strings are valid")
            .into_composition()
    }

    /// Metal area of one cluster link relative to Model I (the table's
    /// "Relative Metal Area" column).
    pub fn relative_metal_area(self) -> f64 {
        self.link().metal_area() / InterconnectModel::I.link().metal_area()
    }

    /// Roman-numeral name as printed in the tables.
    pub fn name(self) -> &'static str {
        match self {
            InterconnectModel::I => "I",
            InterconnectModel::II => "II",
            InterconnectModel::III => "III",
            InterconnectModel::IV => "IV",
            InterconnectModel::V => "V",
            InterconnectModel::VI => "VI",
            InterconnectModel::VII => "VII",
            InterconnectModel::VIII => "VIII",
            InterconnectModel::IX => "IX",
            InterconnectModel::X => "X",
        }
    }

    /// Human-readable link description (as in the tables).
    pub fn description(self) -> String {
        self.link().to_string()
    }
}

impl std::fmt::Display for InterconnectModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Model {}", self.name())
    }
}

/// Why a `--model` argument failed to resolve to a [`ModelSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpecError {
    /// Not a Roman-numeral preset name and not a `custom:<spec>` string.
    UnknownModel(String),
    /// The `custom:` payload failed to parse as a [`LinkSpec`].
    Spec(SpecError),
    /// The composition has no full-width (B or PW) plane, so full 72-bit
    /// transfers — register values, store data, full addresses — have no
    /// wires to ride on.
    NoFullWidthPlane(String),
}

impl fmt::Display for ModelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSpecError::UnknownModel(s) => write!(
                f,
                "unknown model {s:?}; expected a preset I..X or custom:<spec> \
                 (e.g. custom:b144+pw288+l36)"
            ),
            ModelSpecError::Spec(e) => write!(f, "invalid link spec: {e}"),
            ModelSpecError::NoFullWidthPlane(s) => write!(
                f,
                "spec {s:?} has no full-width (b or pw) plane; full-size \
                 transfers would have no wires to use"
            ),
        }
    }
}

impl std::error::Error for ModelSpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelSpecError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

/// An interconnect model identified by name: one of the paper's ten
/// presets, or an arbitrary `custom:<spec>` link composition. This is the
/// open, data-driven form of the model space — every bench binary accepts
/// it via `--model`, and [`Self::name`] round-trips through
/// [`Self::parse`] so CSV/JSON rows can be re-swept verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    preset: Option<InterconnectModel>,
    spec: LinkSpec,
    link: LinkComposition,
}

impl ModelSpec {
    /// The spec form of a Table-3/4 preset.
    pub fn preset(model: InterconnectModel) -> Self {
        let spec = model
            .spec_str()
            .parse::<LinkSpec>()
            .expect("preset spec strings are valid");
        let link = spec.composition().clone();
        ModelSpec {
            preset: Some(model),
            spec,
            link,
        }
    }

    /// All ten presets in table order.
    pub fn paper_presets() -> Vec<ModelSpec> {
        InterconnectModel::ALL.iter().map(|&m| m.spec()).collect()
    }

    /// Wraps a custom [`LinkSpec`], validating that the composition can
    /// carry full-width traffic (at least one B or PW plane).
    pub fn custom(spec: LinkSpec) -> Result<Self, ModelSpecError> {
        let link = spec.composition().clone();
        if link.lanes(WireClass::B) == 0
            && link.lanes(WireClass::Pw) == 0
            && link.lanes(WireClass::W) == 0
        {
            return Err(ModelSpecError::NoFullWidthPlane(spec.to_string()));
        }
        Ok(ModelSpec {
            preset: None,
            spec,
            link,
        })
    }

    /// Parses a `--model` argument: a Roman-numeral preset (`VII`,
    /// case-insensitive) or `custom:<spec>`.
    pub fn parse(s: &str) -> Result<Self, ModelSpecError> {
        let s = s.trim();
        if let Some(spec) = s.strip_prefix("custom:") {
            let spec: LinkSpec = spec.parse().map_err(ModelSpecError::Spec)?;
            return Self::custom(spec);
        }
        InterconnectModel::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(s))
            .map(Self::preset)
            .ok_or_else(|| ModelSpecError::UnknownModel(s.to_string()))
    }

    /// The preset this spec names, if it is one.
    pub fn as_preset(&self) -> Option<InterconnectModel> {
        self.preset
    }

    /// The underlying parseable spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// The cluster-link wire composition.
    pub fn link(&self) -> &LinkComposition {
        &self.link
    }

    /// The exact `--model` token for this spec (`"X"` or
    /// `"custom:b144+pw288+l36"`); [`Self::parse`] accepts it back.
    pub fn name(&self) -> String {
        match self.preset {
            Some(m) => m.name().to_string(),
            None => format!("custom:{}", self.spec),
        }
    }

    /// Display label for tables (`"Model X"` or the custom token).
    pub fn label(&self) -> String {
        match self.preset {
            Some(m) => m.to_string(),
            None => format!("custom:{}", self.spec),
        }
    }

    /// Human-readable link description (as in the tables).
    pub fn description(&self) -> String {
        self.link.to_string()
    }

    /// Metal area of one cluster link relative to Model I.
    pub fn relative_metal_area(&self) -> f64 {
        self.link.metal_area() / InterconnectModel::I.link().metal_area()
    }
}

impl std::str::FromStr for ModelSpec {
    type Err = ModelSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_metal_areas_match_table3() {
        let expect = [1.0, 1.0, 1.5, 2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        for (m, &area) in InterconnectModel::ALL.iter().zip(&expect) {
            assert!(
                (m.relative_metal_area() - area).abs() < 1e-9,
                "{m}: {} != {area}",
                m.relative_metal_area()
            );
        }
    }

    #[test]
    fn model_descriptions_match_paper() {
        assert_eq!(InterconnectModel::I.description(), "144 B-Wires");
        assert_eq!(
            InterconnectModel::X.description(),
            "144 B-Wires, 288 PW-Wires, 36 L-Wires"
        );
    }

    #[test]
    fn optimizations_follow_planes() {
        let o = Optimizations::for_link(&InterconnectModel::I.link());
        assert!(!o.cache_pipeline && !o.pw_steering);
        let o = Optimizations::for_link(&InterconnectModel::VII.link());
        assert!(o.cache_pipeline && o.narrow_operands && !o.pw_steering);
        let o = Optimizations::for_link(&InterconnectModel::X.link());
        assert!(o.cache_pipeline && o.pw_steering && o.load_balance);
        // Model II (PW only): nothing to steer between, no L wires.
        let o = Optimizations::for_link(&InterconnectModel::II.link());
        assert!(!o.cache_pipeline && !o.pw_steering && !o.load_balance);
    }

    #[test]
    fn baseline_is_table1() {
        let c = ProcessorConfig::baseline4();
        assert_eq!(c.clusters(), 4);
        assert_eq!(c.rob_size, 480);
        assert_eq!(c.iq_per_cluster, 15);
        assert_eq!(c.regs_per_cluster, 32);
        assert_eq!(c.dispatch_width, 8);
        assert_eq!(c.mispredict_refill, 12);
    }

    #[test]
    fn for_model_16_clusters() {
        let c = ProcessorConfig::for_model(InterconnectModel::IX, Topology::hier16());
        assert_eq!(c.clusters(), 16);
        assert!(c.opts.narrow_operands);
    }

    #[test]
    fn preset_names_round_trip_through_parse() {
        for m in InterconnectModel::ALL {
            let spec = m.spec();
            assert_eq!(spec.as_preset(), Some(m));
            let reparsed = ModelSpec::parse(&spec.name()).unwrap();
            assert_eq!(reparsed, spec);
            // Case-insensitive preset lookup.
            assert_eq!(ModelSpec::parse(&spec.name().to_lowercase()).unwrap(), spec);
        }
    }

    #[test]
    fn custom_spec_matches_preset_link() {
        let custom = ModelSpec::parse("custom:b144+pw288+l36").unwrap();
        assert_eq!(custom.as_preset(), None);
        assert_eq!(custom.link(), &InterconnectModel::X.link());
        assert_eq!(custom.name(), "custom:b144+pw288+l36");
        assert_eq!(
            ModelSpec::parse(&custom.name()).unwrap(),
            custom,
            "custom names round-trip through parse"
        );
        assert!((custom.relative_metal_area() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn custom_spec_errors_are_actionable() {
        match ModelSpec::parse("custom:l36") {
            Err(ModelSpecError::NoFullWidthPlane(s)) => assert_eq!(s, "l36"),
            other => panic!("expected NoFullWidthPlane, got {other:?}"),
        }
        assert!(matches!(
            ModelSpec::parse("custom:b100"),
            Err(ModelSpecError::Spec(_))
        ));
        assert!(matches!(
            ModelSpec::parse("XI"),
            Err(ModelSpecError::UnknownModel(_))
        ));
        // Errors format into something a CLI user can act on.
        assert!(ModelSpec::parse("custom:q72")
            .unwrap_err()
            .to_string()
            .contains("unknown wire class"));
    }

    #[test]
    fn for_model_spec_enables_supported_opts() {
        let c = ProcessorConfig::for_model_spec(
            &ModelSpec::parse("custom:pw144+l36").unwrap(),
            Topology::crossbar4(),
        );
        assert!(c.opts.cache_pipeline && c.opts.narrow_operands);
        assert!(!c.opts.pw_steering, "single full-width plane: no steering");
    }
}
