//! Processor configuration: Table-1 machine parameters, the optimization
//! toggles, and the ten interconnect models of Tables 3 and 4.

use heterowire_interconnect::Topology;
use heterowire_wires::{LinkComposition, WireClass, WirePlane};

/// Which of the paper's microarchitectural optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Partial-address L-Wire cache pipeline (§4 "Accelerating Cache
    /// Access").
    pub cache_pipeline: bool,
    /// Narrow bit-width operand transfers on L-Wires.
    pub narrow_operands: bool,
    /// Branch mispredict signal on L-Wires.
    pub branch_signal: bool,
    /// Non-critical traffic (ready-at-dispatch operands, store data) on
    /// PW-Wires.
    pub pw_steering: bool,
    /// Load-imbalance overflow steering between B and PW planes.
    pub load_balance: bool,
    /// Use the 8K-entry narrow predictor rather than oracle knowledge of
    /// result widths (the paper evaluates with the optimistic assumption
    /// but validates this predictor).
    pub narrow_predictor: bool,
}

impl Optimizations {
    /// Everything off — the homogeneous baseline behaviour.
    pub fn none() -> Self {
        Optimizations {
            cache_pipeline: false,
            narrow_operands: false,
            branch_signal: false,
            pw_steering: false,
            load_balance: false,
            narrow_predictor: true,
        }
    }

    /// Enables the subset that the link composition supports: L-Wire
    /// optimizations when `l` planes exist, PW steering when both `b` and
    /// `pw` exist.
    pub fn for_link(link: &LinkComposition) -> Self {
        let has_l = link.lanes(WireClass::L) > 0;
        let has_b = link.lanes(WireClass::B) > 0;
        let has_pw = link.lanes(WireClass::Pw) > 0;
        Optimizations {
            cache_pipeline: has_l,
            narrow_operands: has_l,
            branch_signal: has_l,
            pw_steering: has_b && has_pw,
            load_balance: has_b && has_pw,
            narrow_predictor: true,
        }
    }
}

/// Optional extensions the paper discusses but does not evaluate
/// (§4 "other forms of data compaction", §5.3 critical words from L2/L3,
/// §2/§5.2 transmission lines). All off by default; the ablation harness
/// measures each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extensions {
    /// Frequent-value compaction (Yang et al. (ref. 47)): wide values matching
    /// a small frequent-value table ride L-Wires as encoded indices.
    pub frequent_value: bool,
    /// Critical-word-first refills from L2/DRAM over L-Wires.
    pub l2_critical_word: bool,
    /// L-Wires implemented as transmission lines: latency immune to the
    /// wire-constrained scaling and one third the dynamic energy.
    pub transmission_lines: bool,
}

/// Full processor configuration (Table 1 defaults).
#[derive(Debug, Clone)]
pub struct ProcessorConfig {
    /// Interconnect topology (4-cluster crossbar or 16-cluster hierarchy).
    pub topology: Topology,
    /// Wire composition of one direction of a cluster link.
    pub link: LinkComposition,
    /// Optimization toggles.
    pub opts: Optimizations,
    /// Reorder buffer size (480).
    pub rob_size: usize,
    /// Issue queue entries per cluster, int and fp each (15).
    pub iq_per_cluster: usize,
    /// Physical registers per cluster, int and fp each (32).
    pub regs_per_cluster: usize,
    /// Dispatch (and commit) width (8).
    pub dispatch_width: usize,
    /// Minimum branch mispredict penalty: front-end refill depth (12).
    pub mispredict_refill: u64,
    /// LS bits compared in the partial-address LSQ check (8).
    pub ls_bits: u32,
    /// Interconnect latency multiplier (sensitivity studies double it).
    pub latency_scale: f64,
    /// Optional paper-discussed extensions (all off by default).
    pub extensions: Extensions,
}

impl ProcessorConfig {
    /// The paper's baseline: 4 clusters, Model I (144 B-Wires), no
    /// optimizations.
    pub fn baseline4() -> Self {
        ProcessorConfig {
            topology: Topology::crossbar4(),
            link: InterconnectModel::I.link(),
            opts: Optimizations::none(),
            rob_size: 480,
            iq_per_cluster: 15,
            regs_per_cluster: 32,
            dispatch_width: 8,
            mispredict_refill: 12,
            ls_bits: 8,
            latency_scale: 1.0,
            extensions: Extensions::default(),
        }
    }

    /// Builds the configuration for one of the Table-3/4 interconnect
    /// models on the given topology, with all supported optimizations on.
    pub fn for_model(model: InterconnectModel, topology: Topology) -> Self {
        let link = model.link();
        ProcessorConfig {
            topology,
            opts: Optimizations::for_link(&link),
            link,
            ..Self::baseline4()
        }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.topology.clusters()
    }
}

impl Default for ProcessorConfig {
    fn default() -> Self {
        Self::baseline4()
    }
}

/// The ten interconnect models of Tables 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum InterconnectModel {
    I,
    II,
    III,
    IV,
    V,
    VI,
    VII,
    VIII,
    IX,
    X,
}

impl InterconnectModel {
    /// All ten models in table order.
    pub const ALL: [InterconnectModel; 10] = [
        InterconnectModel::I,
        InterconnectModel::II,
        InterconnectModel::III,
        InterconnectModel::IV,
        InterconnectModel::V,
        InterconnectModel::VI,
        InterconnectModel::VII,
        InterconnectModel::VIII,
        InterconnectModel::IX,
        InterconnectModel::X,
    ];

    /// The cluster-link wire composition of this model (Table 3's
    /// "Description of each link" column).
    pub fn link(self) -> LinkComposition {
        let b = |n| WirePlane::new(WireClass::B, n);
        let pw = |n| WirePlane::new(WireClass::Pw, n);
        let l = |n| WirePlane::new(WireClass::L, n);
        match self {
            InterconnectModel::I => LinkComposition::new(vec![b(144)]),
            InterconnectModel::II => LinkComposition::new(vec![pw(288)]),
            InterconnectModel::III => LinkComposition::new(vec![pw(144), l(36)]),
            InterconnectModel::IV => LinkComposition::new(vec![b(288)]),
            InterconnectModel::V => LinkComposition::new(vec![b(144), pw(288)]),
            InterconnectModel::VI => LinkComposition::new(vec![pw(288), l(36)]),
            InterconnectModel::VII => LinkComposition::new(vec![b(144), l(36)]),
            InterconnectModel::VIII => LinkComposition::new(vec![b(432)]),
            InterconnectModel::IX => LinkComposition::new(vec![b(288), l(36)]),
            InterconnectModel::X => LinkComposition::new(vec![b(144), pw(288), l(36)]),
        }
    }

    /// Metal area of one cluster link relative to Model I (the table's
    /// "Relative Metal Area" column).
    pub fn relative_metal_area(self) -> f64 {
        self.link().metal_area() / InterconnectModel::I.link().metal_area()
    }

    /// Roman-numeral name as printed in the tables.
    pub fn name(self) -> &'static str {
        match self {
            InterconnectModel::I => "I",
            InterconnectModel::II => "II",
            InterconnectModel::III => "III",
            InterconnectModel::IV => "IV",
            InterconnectModel::V => "V",
            InterconnectModel::VI => "VI",
            InterconnectModel::VII => "VII",
            InterconnectModel::VIII => "VIII",
            InterconnectModel::IX => "IX",
            InterconnectModel::X => "X",
        }
    }

    /// Human-readable link description (as in the tables).
    pub fn description(self) -> String {
        self.link().to_string()
    }
}

impl std::fmt::Display for InterconnectModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Model {}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_metal_areas_match_table3() {
        let expect = [1.0, 1.0, 1.5, 2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0];
        for (m, &area) in InterconnectModel::ALL.iter().zip(&expect) {
            assert!(
                (m.relative_metal_area() - area).abs() < 1e-9,
                "{m}: {} != {area}",
                m.relative_metal_area()
            );
        }
    }

    #[test]
    fn model_descriptions_match_paper() {
        assert_eq!(InterconnectModel::I.description(), "144 B-Wires");
        assert_eq!(
            InterconnectModel::X.description(),
            "144 B-Wires, 288 PW-Wires, 36 L-Wires"
        );
    }

    #[test]
    fn optimizations_follow_planes() {
        let o = Optimizations::for_link(&InterconnectModel::I.link());
        assert!(!o.cache_pipeline && !o.pw_steering);
        let o = Optimizations::for_link(&InterconnectModel::VII.link());
        assert!(o.cache_pipeline && o.narrow_operands && !o.pw_steering);
        let o = Optimizations::for_link(&InterconnectModel::X.link());
        assert!(o.cache_pipeline && o.pw_steering && o.load_balance);
        // Model II (PW only): nothing to steer between, no L wires.
        let o = Optimizations::for_link(&InterconnectModel::II.link());
        assert!(!o.cache_pipeline && !o.pw_steering && !o.load_balance);
    }

    #[test]
    fn baseline_is_table1() {
        let c = ProcessorConfig::baseline4();
        assert_eq!(c.clusters(), 4);
        assert_eq!(c.rob_size, 480);
        assert_eq!(c.iq_per_cluster, 15);
        assert_eq!(c.regs_per_cluster, 32);
        assert_eq!(c.dispatch_width, 8);
        assert_eq!(c.mispredict_refill, 12);
    }

    #[test]
    fn for_model_16_clusters() {
        let c = ProcessorConfig::for_model(InterconnectModel::IX, Topology::hier16());
        assert_eq!(c.clusters(), 16);
        assert!(c.opts.narrow_operands);
    }
}
