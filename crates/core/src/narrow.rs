//! The narrow bit-width result predictor (paper §4).
//!
//! Register tags are sent ahead of data, so the pipeline must know *before
//! execution* whether a result will fit the 10-bit L-Wire payload. The paper
//! validates "a predictor with 8K 2-bit saturating counters, that predicts
//! the occurrence of a narrow bit-width result when the 2-bit counter value
//! is three" — identifying 95% of narrow results with only 2% of
//! predicted-narrow values turning out wide.

/// PC-indexed 2-bit-counter predictor for narrow results.
#[derive(Debug, Clone)]
pub struct NarrowPredictor {
    counters: Vec<u8>,
    /// Narrow results predicted narrow.
    pub hits: u64,
    /// Narrow results predicted wide (missed opportunity).
    pub missed: u64,
    /// Wide results predicted narrow (must be re-sent on full-width wires).
    pub false_narrow: u64,
    /// Wide results predicted wide.
    pub true_wide: u64,
}

impl NarrowPredictor {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        NarrowPredictor {
            counters: vec![0; entries],
            hits: 0,
            missed: 0,
            false_narrow: 0,
            true_wide: 0,
        }
    }

    /// The paper's configuration: 8K entries.
    pub fn paper() -> Self {
        Self::new(8 * 1024)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts whether the instruction at `pc` will produce a narrow
    /// result (counter saturated at 3 — the paper's high-confidence rule).
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] == 3
    }

    /// Trains with the actual outcome and updates the accuracy statistics
    /// for the prediction that was just acted on.
    pub fn update(&mut self, pc: u64, was_narrow: bool) {
        let predicted = self.predict(pc);
        match (predicted, was_narrow) {
            (true, true) => self.hits += 1,
            (false, true) => self.missed += 1,
            (true, false) => self.false_narrow += 1,
            (false, false) => self.true_wide += 1,
        }
        let i = self.index(pc);
        if was_narrow {
            if self.counters[i] < 3 {
                self.counters[i] += 1;
            }
        } else {
            self.counters[i] = 0;
        }
    }

    /// Fraction of actually-narrow results the predictor identified
    /// (paper: 95%).
    pub fn coverage(&self) -> f64 {
        let narrow = self.hits + self.missed;
        if narrow == 0 {
            0.0
        } else {
            self.hits as f64 / narrow as f64
        }
    }

    /// Fraction of predicted-narrow results that were actually wide
    /// (paper: 2%).
    pub fn false_narrow_rate(&self) -> f64 {
        let predicted = self.hits + self.false_narrow;
        if predicted == 0 {
            0.0
        } else {
            self.false_narrow as f64 / predicted as f64
        }
    }
}

impl Default for NarrowPredictor {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_three_narrow_results_to_predict_narrow() {
        let mut p = NarrowPredictor::new(1024);
        assert!(!p.predict(0x40));
        p.update(0x40, true);
        assert!(!p.predict(0x40));
        p.update(0x40, true);
        assert!(!p.predict(0x40));
        p.update(0x40, true);
        assert!(p.predict(0x40), "three narrow results saturate the counter");
    }

    #[test]
    fn one_wide_result_resets_confidence() {
        let mut p = NarrowPredictor::new(1024);
        for _ in 0..5 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
        p.update(0x40, false);
        assert!(!p.predict(0x40), "wide result must clear the counter");
    }

    #[test]
    fn stable_narrow_pcs_reach_high_coverage() {
        let mut p = NarrowPredictor::paper();
        for i in 0..10_000u64 {
            let pc = 0x1000 + (i % 64) * 4;
            p.update(pc, true);
        }
        assert!(p.coverage() > 0.9, "coverage {}", p.coverage());
        assert_eq!(p.false_narrow, 0);
    }

    #[test]
    fn mixed_pcs_have_low_false_narrow_rate() {
        // 80% of sites always narrow, 20% always wide: the counter=3 rule
        // keeps false-narrow predictions near zero.
        let mut p = NarrowPredictor::paper();
        for i in 0..50_000u64 {
            let site = i % 100;
            let pc = 0x1000 + site * 4;
            p.update(pc, site < 80);
        }
        assert!(p.false_narrow_rate() < 0.02, "{}", p.false_narrow_rate());
        assert!(p.coverage() > 0.95, "{}", p.coverage());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = NarrowPredictor::new(1000);
    }
}
