//! The processor-level energy and ED² model of Tables 3 and 4.
//!
//! The paper normalises everything to Model I and assumes:
//!
//! * interconnect energy is 10% (or 20%) of total chip energy in Model I;
//! * chip leakage : dynamic energy is 3 : 7 in Model I (applied to both the
//!   interconnect and the rest of the chip);
//! * rest-of-chip dynamic energy is workload-proportional (constant for a
//!   fixed instruction count), while rest-of-chip *leakage* scales with
//!   executed cycles;
//! * `ED² = total processor energy x (executed cycles)²`.
//!
//! We verified this reconstruction against all thirty published rows of
//! Tables 3 and 4 (see EXPERIMENTS.md).

use crate::results::SimResults;

/// Parameters of the chip-level energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Fraction of Model-I chip energy spent in the interconnect
    /// (0.10 and 0.20 in the paper).
    pub ic_fraction: f64,
    /// Leakage share of Model-I chip energy (0.3; dynamic is 0.7).
    pub leakage_share: f64,
}

impl EnergyParams {
    /// The 10%-interconnect variant.
    pub fn ten_percent() -> Self {
        EnergyParams {
            ic_fraction: 0.10,
            leakage_share: 0.3,
        }
    }

    /// The 20%-interconnect variant.
    pub fn twenty_percent() -> Self {
        EnergyParams {
            ic_fraction: 0.20,
            leakage_share: 0.3,
        }
    }
}

/// One model's row, normalised to the baseline (Model I): the quantities
/// Tables 3 and 4 print.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeReport {
    /// Absolute IPC of the model.
    pub ipc: f64,
    /// Interconnect dynamic energy, % of Model I's.
    pub rel_ic_dynamic: f64,
    /// Interconnect leakage energy, % of Model I's.
    pub rel_ic_leakage: f64,
    /// Total processor energy, % of Model I's.
    pub rel_processor_energy: f64,
    /// Processor ED², % of Model I's.
    pub rel_ed2: f64,
}

/// Computes a model's Table-3-style row relative to the `baseline` run of
/// the same workload.
///
/// # Panics
///
/// Panics if the baseline has zero cycles or zero interconnect energy.
pub fn relative_report(
    model: &SimResults,
    baseline: &SimResults,
    params: EnergyParams,
) -> RelativeReport {
    assert!(baseline.cycles > 0, "baseline must have executed");
    assert!(
        baseline.ic_dynamic_energy() > 0.0 && baseline.ic_leakage_energy() > 0.0,
        "baseline must have interconnect activity"
    );
    let cycle_ratio = model.cycles as f64 / baseline.cycles as f64;
    let rel_dyn = model.ic_dynamic_energy() / baseline.ic_dynamic_energy();
    let rel_lkg = model.ic_leakage_energy() / baseline.ic_leakage_energy();

    let f = params.ic_fraction;
    let lkg = params.leakage_share;
    let dynamic = 1.0 - lkg;
    // Model-I chip energy = 100 units.
    let rest_dynamic = dynamic * (1.0 - f) * 100.0;
    let rest_leakage = lkg * (1.0 - f) * 100.0;
    let ic_dynamic_base = dynamic * f * 100.0;
    let ic_leakage_base = lkg * f * 100.0;

    let energy = rest_dynamic
        + rest_leakage * cycle_ratio
        + ic_dynamic_base * rel_dyn
        + ic_leakage_base * rel_lkg;
    let ed2 = energy * cycle_ratio * cycle_ratio;

    RelativeReport {
        ipc: model.ipc(),
        rel_ic_dynamic: rel_dyn * 100.0,
        rel_ic_leakage: rel_lkg * 100.0,
        rel_processor_energy: energy,
        rel_ed2: ed2,
    }
}

/// Averages per-benchmark relative reports into one table row (arithmetic
/// mean, matching the paper's AM-of-IPCs aggregation).
pub fn mean_report(reports: &[RelativeReport]) -> RelativeReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len() as f64;
    RelativeReport {
        ipc: reports.iter().map(|r| r.ipc).sum::<f64>() / n,
        rel_ic_dynamic: reports.iter().map(|r| r.rel_ic_dynamic).sum::<f64>() / n,
        rel_ic_leakage: reports.iter().map(|r| r.rel_ic_leakage).sum::<f64>() / n,
        rel_processor_energy: reports.iter().map(|r| r.rel_processor_energy).sum::<f64>() / n,
        rel_ed2: reports.iter().map(|r| r.rel_ed2).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heterowire_frontend::FetchStats;
    use heterowire_interconnect::NetStats;
    use heterowire_memory::{LsqStats, MemStats};

    fn run(cycles: u64, ic_dyn: f64, lkg_weight: f64) -> SimResults {
        let net = NetStats {
            dynamic_energy: ic_dyn,
            ..NetStats::default()
        };
        SimResults {
            instructions: 100_000,
            cycles,
            net,
            leakage_weight: lkg_weight,
            fetch: FetchStats::default(),
            lsq: LsqStats::default(),
            mem: MemStats::default(),
            narrow_coverage: 0.0,
            narrow_false_rate: 0.0,
            metal_area: 0.0,
        }
    }

    #[test]
    fn baseline_relative_to_itself_is_100() {
        let b = run(100_000, 1000.0, 10.0);
        let r = relative_report(&b, &b, EnergyParams::ten_percent());
        assert!((r.rel_processor_energy - 100.0).abs() < 1e-9);
        assert!((r.rel_ed2 - 100.0).abs() < 1e-9);
        assert!((r.rel_ic_dynamic - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reproduces_table3_model_ii_row() {
        // Model II: IPC 0.92 vs 0.95 (cycle ratio 1.0326), IC dyn 52%,
        // IC lkg weight ratio (288*0.30)/(144*0.55) = 1.0909.
        let baseline = run(95_000, 1000.0, 144.0 * 0.55);
        let m2 = run((95_000.0 * (0.95 / 0.92)) as u64, 520.0, 288.0 * 0.30);
        let r = relative_report(&m2, &baseline, EnergyParams::ten_percent());
        assert!(
            (r.rel_ic_dynamic - 52.0).abs() < 0.5,
            "{}",
            r.rel_ic_dynamic
        );
        assert!(
            (r.rel_ic_leakage - 112.6).abs() < 1.0,
            "{}",
            r.rel_ic_leakage
        );
        // Paper: processor energy 97, ED2(10%) 103.4.
        assert!(
            (r.rel_processor_energy - 97.0).abs() < 1.5,
            "{}",
            r.rel_processor_energy
        );
        assert!((r.rel_ed2 - 103.4).abs() < 1.5, "{}", r.rel_ed2);
    }

    #[test]
    fn reproduces_table3_model_iv_row() {
        // Model IV: 288 B-wires, IPC 0.98, IC dyn 99%, lkg 194%.
        let baseline = run(95_000, 1000.0, 144.0 * 0.55);
        let m4 = run((95_000.0 * (0.95 / 0.98)) as u64, 990.0, 288.0 * 0.55);
        let r = relative_report(&m4, &baseline, EnergyParams::ten_percent());
        assert!(
            (r.rel_ic_leakage - 193.9).abs() < 1.5,
            "{}",
            r.rel_ic_leakage
        );
        assert!(
            (r.rel_processor_energy - 102.5).abs() < 1.5,
            "{}",
            r.rel_processor_energy
        );
        // Paper prints 96.6 for ED2(10%).
        assert!((r.rel_ed2 - 96.3).abs() < 1.5, "{}", r.rel_ed2);
    }

    #[test]
    fn twenty_percent_amplifies_interconnect_effects() {
        let baseline = run(100_000, 1000.0, 100.0);
        let cheap = run(100_000, 300.0, 30.0);
        let r10 = relative_report(&cheap, &baseline, EnergyParams::ten_percent());
        let r20 = relative_report(&cheap, &baseline, EnergyParams::twenty_percent());
        assert!(r20.rel_processor_energy < r10.rel_processor_energy);
    }

    #[test]
    fn mean_report_averages() {
        let b = run(100_000, 1000.0, 10.0);
        let r = relative_report(&b, &b, EnergyParams::ten_percent());
        let avg = mean_report(&[r, r]);
        assert!((avg.rel_ed2 - r.rel_ed2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot average")]
    fn empty_mean_panics() {
        let _ = mean_report(&[]);
    }
}
