//! Human-readable reports over [`SimResults`] — the formatting used by the
//! examples and harness binaries.

use std::fmt;

use heterowire_wires::WireClass;

use crate::results::SimResults;

/// A displayable summary of one simulation run.
///
/// # Examples
///
/// ```
/// use heterowire_core::{report::Report, InterconnectModel, Processor, ProcessorConfig};
/// use heterowire_interconnect::Topology;
/// use heterowire_trace::{by_name, TraceGenerator};
///
/// let cfg = ProcessorConfig::for_model(InterconnectModel::VII, Topology::crossbar4());
/// let r = Processor::simulate(cfg, TraceGenerator::new(by_name("gzip").unwrap(), 1), 2_000, 200);
/// let text = Report::new("gzip", &r).to_string();
/// assert!(text.contains("IPC"));
/// ```
#[derive(Debug, Clone)]
pub struct Report<'a> {
    label: &'a str,
    results: &'a SimResults,
}

impl<'a> Report<'a> {
    /// Wraps `results` for display under `label`.
    pub fn new(label: &'a str, results: &'a SimResults) -> Self {
        Report { label, results }
    }
}

impl fmt::Display for Report<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.results;
        writeln!(f, "== {} ==", self.label)?;
        writeln!(
            f,
            "  {} instructions in {} cycles -> IPC {:.3}",
            r.instructions,
            r.cycles,
            r.ipc()
        )?;
        writeln!(
            f,
            "  network: {:.2} transfers/inst, {} queue-cycles, {:.0} dyn-energy units",
            r.transfers_per_inst(),
            r.net.queue_cycles,
            r.net.dynamic_energy
        )?;
        for (i, class) in WireClass::ALL.iter().enumerate() {
            if r.net.transfers[i] > 0 {
                writeln!(
                    f,
                    "    {:<9} {:>9} transfers ({:>4.1}%)",
                    class.to_string(),
                    r.net.transfers[i],
                    r.net.class_share(*class) * 100.0
                )?;
            }
        }
        writeln!(
            f,
            "  front-end: {:.1}% mispredicts, mean penalty {:.1} cycles",
            r.fetch.mispredict_rate() * 100.0,
            r.fetch.mean_mispredict_penalty()
        )?;
        writeln!(
            f,
            "  memory: {} L1 misses, {} L2 misses, {} TLB misses, {} bank conflicts",
            r.mem.l1_misses, r.mem.l2_misses, r.mem.tlb_misses, r.mem.bank_conflicts
        )?;
        writeln!(
            f,
            "  LSQ: {:.1}% false partial deps, {} forwards",
            r.lsq.false_dependence_rate() * 100.0,
            r.lsq.forwards
        )?;
        write!(
            f,
            "  narrow predictor: {:.1}% coverage, {:.1}% false-narrow",
            r.narrow_coverage * 100.0,
            r.narrow_false_rate * 100.0
        )
    }
}

/// Formats a compact one-line comparison between two runs of the same
/// workload (e.g. baseline vs optimized).
pub fn compare_line(label: &str, base: &SimResults, new: &SimResults) -> String {
    format!(
        "{label}: IPC {:.3} -> {:.3} ({:+.1}%), dyn energy {:+.1}%, transfers {:+.1}%",
        base.ipc(),
        new.ipc(),
        (new.ipc() / base.ipc() - 1.0) * 100.0,
        (new.net.dynamic_energy / base.net.dynamic_energy - 1.0) * 100.0,
        (new.net.total_transfers() as f64 / base.net.total_transfers() as f64 - 1.0) * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InterconnectModel, ProcessorConfig};
    use crate::processor::Processor;
    use heterowire_interconnect::Topology;
    use heterowire_trace::{by_name, TraceGenerator};

    fn sample() -> SimResults {
        let cfg = ProcessorConfig::for_model(InterconnectModel::X, Topology::crossbar4());
        let trace = TraceGenerator::new(by_name("twolf").unwrap(), 2);
        Processor::simulate(cfg, trace, 2_000, 200)
    }

    #[test]
    fn report_contains_all_sections() {
        let r = sample();
        let text = Report::new("twolf", &r).to_string();
        for needle in ["IPC", "network", "front-end", "memory", "LSQ", "narrow"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }

    #[test]
    fn report_lists_used_planes_only() {
        let r = sample();
        let text = Report::new("twolf", &r).to_string();
        assert!(text.contains("B-Wires"));
        // The W plane is never deployed: no standalone "W-Wires" row
        // ("PW-Wires" contains the substring, so match the row form).
        assert!(!text.contains("    W-Wires"), "W plane is never deployed");
    }

    #[test]
    fn compare_line_shows_deltas() {
        let r = sample();
        let line = compare_line("self", &r, &r);
        assert!(line.contains("+0.0%"), "{line}");
    }
}
