//! Simulation results and per-run statistics.

use heterowire_frontend::FetchStats;
use heterowire_interconnect::NetStats;
use heterowire_memory::{LsqStats, MemStats};

/// Everything measured by one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResults {
    /// Committed instructions in the measurement window.
    pub instructions: u64,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Interconnect traffic and dynamic-energy statistics.
    pub net: NetStats,
    /// Interconnect leakage weight (wires x relative leakage summed over
    /// all links); multiply by cycles for leakage energy units.
    pub leakage_weight: f64,
    /// Front-end statistics.
    pub fetch: FetchStats,
    /// LSQ statistics (partial matches, false dependences, forwards).
    pub lsq: LsqStats,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Narrow predictor coverage (fraction of narrow results identified).
    pub narrow_coverage: f64,
    /// Narrow predictor false-narrow rate.
    pub narrow_false_rate: f64,
    /// Total interconnect metal area, W-wire track units.
    pub metal_area: f64,
}

impl SimResults {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Interconnect leakage energy units (weight x cycles).
    pub fn ic_leakage_energy(&self) -> f64 {
        self.leakage_weight * self.cycles as f64
    }

    /// Interconnect dynamic energy units.
    pub fn ic_dynamic_energy(&self) -> f64 {
        self.net.dynamic_energy
    }

    /// Network transfers per committed instruction.
    pub fn transfers_per_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.net.total_transfers() as f64 / self.instructions as f64
        }
    }
}

/// Arithmetic mean of IPCs across benchmark runs — the paper's aggregate
/// ("the AM of IPCs represents a workload where every program executes for
/// an equal number of cycles").
pub fn mean_ipc(runs: &[SimResults]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(SimResults::ipc).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(instructions: u64, cycles: u64) -> SimResults {
        SimResults {
            instructions,
            cycles,
            net: NetStats::default(),
            leakage_weight: 100.0,
            fetch: FetchStats::default(),
            lsq: LsqStats::default(),
            mem: MemStats::default(),
            narrow_coverage: 0.0,
            narrow_false_rate: 0.0,
            metal_area: 0.0,
        }
    }

    #[test]
    fn ipc_math() {
        assert!((dummy(100, 50).ipc() - 2.0).abs() < 1e-12);
        assert_eq!(dummy(0, 0).ipc(), 0.0);
    }

    #[test]
    fn mean_ipc_is_arithmetic() {
        let runs = [dummy(100, 100), dummy(300, 100)];
        assert!((mean_ipc(&runs) - 2.0).abs() < 1e-12);
        assert_eq!(mean_ipc(&[]), 0.0);
    }

    #[test]
    fn leakage_scales_with_cycles() {
        let a = dummy(100, 100);
        let b = dummy(100, 200);
        assert!((b.ic_leakage_energy() / a.ic_leakage_energy() - 2.0).abs() < 1e-12);
    }
}
