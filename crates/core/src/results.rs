//! Simulation results and per-run statistics.

use heterowire_frontend::FetchStats;
use heterowire_interconnect::NetStats;
use heterowire_memory::{LsqStats, MemStats};
use heterowire_telemetry::json::JsonWriter;
use heterowire_wires::WireClass;

/// Everything measured by one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResults {
    /// Committed instructions in the measurement window.
    pub instructions: u64,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Interconnect traffic and dynamic-energy statistics.
    pub net: NetStats,
    /// Interconnect leakage weight (wires x relative leakage summed over
    /// all links); multiply by cycles for leakage energy units.
    pub leakage_weight: f64,
    /// Front-end statistics.
    pub fetch: FetchStats,
    /// LSQ statistics (partial matches, false dependences, forwards).
    pub lsq: LsqStats,
    /// Memory hierarchy statistics.
    pub mem: MemStats,
    /// Narrow predictor coverage (fraction of narrow results identified).
    pub narrow_coverage: f64,
    /// Narrow predictor false-narrow rate.
    pub narrow_false_rate: f64,
    /// Total interconnect metal area, W-wire track units.
    pub metal_area: f64,
}

impl SimResults {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Interconnect leakage energy units (weight x cycles).
    pub fn ic_leakage_energy(&self) -> f64 {
        self.leakage_weight * self.cycles as f64
    }

    /// Interconnect dynamic energy units.
    pub fn ic_dynamic_energy(&self) -> f64 {
        self.net.dynamic_energy
    }

    /// Network transfers per committed instruction.
    pub fn transfers_per_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.net.total_transfers() as f64 / self.instructions as f64
        }
    }

    /// Serializes the full result record as one RFC-8259 JSON object —
    /// every raw field plus the derived rates the tables print. Non-finite
    /// floats become `null`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("instructions").u64(self.instructions);
        w.key("cycles").u64(self.cycles);
        w.key("ipc").f64(self.ipc());
        w.key("net").begin_object();
        w.key("transfers").begin_object();
        for (i, c) in WireClass::ALL.iter().enumerate() {
            w.key(c.label()).u64(self.net.transfers[i]);
        }
        w.end_object();
        w.key("bit_hops").begin_object();
        for (i, c) in WireClass::ALL.iter().enumerate() {
            w.key(c.label()).u64(self.net.bit_hops[i]);
        }
        w.end_object();
        w.key("total_transfers").u64(self.net.total_transfers());
        w.key("dynamic_energy").f64(self.net.dynamic_energy);
        w.key("queue_cycles").u64(self.net.queue_cycles);
        w.key("delivered").u64(self.net.delivered);
        w.key("faults_detected").u64(self.net.faults_detected);
        w.key("retransmits").u64(self.net.retransmits);
        w.key("escalations").u64(self.net.escalations);
        w.key("retry_cycles").u64(self.net.retry_cycles);
        w.key("transfers_per_inst").f64(self.transfers_per_inst());
        w.end_object();
        w.key("leakage_weight").f64(self.leakage_weight);
        w.key("ic_leakage_energy").f64(self.ic_leakage_energy());
        w.key("fetch").begin_object();
        w.key("fetched").u64(self.fetch.fetched);
        w.key("branches").u64(self.fetch.branches);
        w.key("mispredicts").u64(self.fetch.mispredicts);
        w.key("stall_cycles").u64(self.fetch.stall_cycles);
        w.key("penalty_cycles").u64(self.fetch.penalty_cycles);
        w.key("resolved_mispredicts")
            .u64(self.fetch.resolved_mispredicts);
        w.key("mispredict_rate").f64(self.fetch.mispredict_rate());
        w.end_object();
        w.key("lsq").begin_object();
        w.key("loads").u64(self.lsq.loads);
        w.key("stores").u64(self.lsq.stores);
        w.key("partial_matches").u64(self.lsq.partial_matches);
        w.key("false_dependences").u64(self.lsq.false_dependences);
        w.key("forwards").u64(self.lsq.forwards);
        w.key("false_dependence_rate")
            .f64(self.lsq.false_dependence_rate());
        w.end_object();
        w.key("mem").begin_object();
        w.key("loads").u64(self.mem.loads);
        w.key("stores").u64(self.mem.stores);
        w.key("l1_misses").u64(self.mem.l1_misses);
        w.key("l2_misses").u64(self.mem.l2_misses);
        w.key("tlb_misses").u64(self.mem.tlb_misses);
        w.key("bank_conflicts").u64(self.mem.bank_conflicts);
        w.end_object();
        w.key("narrow_coverage").f64(self.narrow_coverage);
        w.key("narrow_false_rate").f64(self.narrow_false_rate);
        w.key("metal_area").f64(self.metal_area);
        w.end_object();
        w.finish()
    }
}

/// Arithmetic mean of IPCs across benchmark runs — the paper's aggregate
/// ("the AM of IPCs represents a workload where every program executes for
/// an equal number of cycles").
pub fn mean_ipc(runs: &[SimResults]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(SimResults::ipc).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(instructions: u64, cycles: u64) -> SimResults {
        SimResults {
            instructions,
            cycles,
            net: NetStats::default(),
            leakage_weight: 100.0,
            fetch: FetchStats::default(),
            lsq: LsqStats::default(),
            mem: MemStats::default(),
            narrow_coverage: 0.0,
            narrow_false_rate: 0.0,
            metal_area: 0.0,
        }
    }

    #[test]
    fn ipc_math() {
        assert!((dummy(100, 50).ipc() - 2.0).abs() < 1e-12);
        assert_eq!(dummy(0, 0).ipc(), 0.0);
    }

    #[test]
    fn mean_ipc_is_arithmetic() {
        let runs = [dummy(100, 100), dummy(300, 100)];
        assert!((mean_ipc(&runs) - 2.0).abs() < 1e-12);
        assert_eq!(mean_ipc(&[]), 0.0);
    }

    #[test]
    fn json_round_trips_through_the_telemetry_parser() {
        let mut r = dummy(100, 50);
        r.net.transfers = [1, 2, 3, 4];
        r.net.dynamic_energy = 12.5;
        r.narrow_coverage = f64::NAN; // non-finite must serialize as null
        let text = r.to_json();
        let doc = heterowire_telemetry::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("instructions").unwrap().as_num(), Some(100.0));
        assert_eq!(doc.get("ipc").unwrap().as_num(), Some(2.0));
        let net = doc.get("net").unwrap();
        assert_eq!(
            net.get("transfers").unwrap().get("PW").unwrap().as_num(),
            Some(2.0)
        );
        assert_eq!(net.get("total_transfers").unwrap().as_num(), Some(10.0));
        assert_eq!(net.get("dynamic_energy").unwrap().as_num(), Some(12.5));
        assert_eq!(
            doc.get("narrow_coverage").unwrap().as_num(),
            None,
            "NaN becomes null"
        );
        assert!(doc.get("fetch").unwrap().get("mispredict_rate").is_some());
    }

    #[test]
    fn leakage_scales_with_cycles() {
        let a = dummy(100, 100);
        let b = dummy(100, 200);
        assert!((b.ic_leakage_energy() / a.ic_leakage_energy() - 2.0).abs() < 1e-12);
    }
}
