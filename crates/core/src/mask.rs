//! A u64-backed cluster set.
//!
//! Replaces the old `critical_subs: u16` bitmask on the per-value state:
//! one bit per cluster, so the simulator-wide cluster cap is the mask
//! width ([`ClusterMask::CAPACITY`] = 64, mirrored by
//! `heterowire_interconnect::MAX_SIM_CLUSTERS`). Plain value semantics —
//! `Copy`, no allocation — so it rides inside `ValueInfo` at the same
//! cost as the integer it replaces.

/// A set of cluster indices, one bit each, capacity 64.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterMask(u64);

impl ClusterMask {
    /// The set with no clusters.
    pub const EMPTY: Self = ClusterMask(0);
    /// Largest representable cluster count (bit width of the backing u64).
    pub const CAPACITY: usize = u64::BITS as usize;

    /// Adds `cluster` to the set.
    #[inline]
    pub fn insert(&mut self, cluster: usize) {
        debug_assert!(cluster < Self::CAPACITY);
        self.0 |= 1 << cluster;
    }

    /// Removes `cluster` from the set.
    #[inline]
    pub fn remove(&mut self, cluster: usize) {
        debug_assert!(cluster < Self::CAPACITY);
        self.0 &= !(1 << cluster);
    }

    /// Whether `cluster` is in the set.
    #[inline]
    pub fn contains(self, cluster: usize) -> bool {
        debug_assert!(cluster < Self::CAPACITY);
        self.0 >> cluster & 1 == 1
    }

    /// Number of clusters in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The member clusters in ascending index order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let c = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(c)
        })
    }
}

impl std::fmt::Debug for ClusterMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for ClusterMask {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut m = ClusterMask::EMPTY;
        for c in iter {
            m.insert(c);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut m = ClusterMask::EMPTY;
        assert!(m.is_empty());
        for c in [0, 15, 16, 63] {
            assert!(!m.contains(c));
            m.insert(c);
            assert!(m.contains(c));
        }
        assert_eq!(m.len(), 4);
        m.remove(16);
        assert!(!m.contains(16));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 15, 63]);
    }

    #[test]
    fn from_iter_dedups_and_orders() {
        let m: ClusterMask = [5, 2, 5, 40].into_iter().collect();
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![2, 5, 40]);
        assert_eq!(format!("{m:?}"), "{2, 5, 40}");
    }
}
