//! The [`Probe`] trait: static-dispatch observation hooks for every event
//! site in the pipeline, and the [`NullProbe`] that compiles them away.
//!
//! Instrumented components (`Processor`, `Network`, `FetchEngine`,
//! `LoadStoreQueue`, `WirePolicy`) are generic over `P: Probe` and guard
//! every hook with `if P::ENABLED { ... }`. With [`NullProbe`]
//! (`ENABLED = false`) the guard is a compile-time constant, so the
//! disabled path monomorphizes to exactly the uninstrumented code: no
//! calls, no argument computation, no allocations, bit-identical results
//! (proved by `tests/alloc_count.rs` and `tests/kernel_equivalence.rs`).
//!
//! Hooks are observation-only by construction — they return nothing and
//! receive no mutable simulator state — so *any* probe, not just the null
//! one, leaves simulated behaviour untouched.

use heterowire_isa::OpClass;
use heterowire_wires::WireClass;

use crate::stall::StallReport;

/// Observation hooks for pipeline, network, front-end and LSQ events.
///
/// Every method has an empty default body, so a probe implements only the
/// events it cares about. Cycle numbers are the simulator's own cycle
/// counter; `seq` is the dense per-run instruction sequence number.
pub trait Probe: std::fmt::Debug {
    /// `false` only for probes that record nothing ([`NullProbe`]): call
    /// sites guard on this constant so the disabled path costs nothing.
    const ENABLED: bool = true;

    /// An instruction entered the ROB and an issue queue.
    fn dispatch(&mut self, _cycle: u64, _seq: u64, _cluster: usize, _op: OpClass) {}

    /// The steering heuristic chose a cluster (`None` = structural stall,
    /// dispatch blocked this cycle).
    fn steer_decision(&mut self, _cycle: u64, _chosen: Option<usize>) {}

    /// An instruction began executing on a functional unit.
    fn issue(&mut self, _cycle: u64, _seq: u64, _cluster: usize) {}

    /// An instruction finished executing (result produced / AGEN done).
    fn complete(&mut self, _cycle: u64, _seq: u64) {}

    /// An instruction retired from the ROB head.
    fn commit(&mut self, _cycle: u64, _seq: u64) {}

    /// A transfer was enqueued into the network (message send).
    fn enqueue(&mut self, _cycle: u64, _id: u64, _class: WireClass) {}

    /// A transfer won lane arbitration and departed (transit start).
    /// `queued` is the number of cycles it waited buffered for a lane.
    fn depart(&mut self, _cycle: u64, _id: u64, _class: WireClass, _queued: u64) {}

    /// A departing transfer occupied one lane of `link` this cycle (one
    /// call per link of the route; `link` indexes the topology's stable
    /// link order).
    fn link_busy(&mut self, _cycle: u64, _link: usize, _class: WireClass) {}

    /// A transfer reached its destination.
    fn deliver(&mut self, _cycle: u64, _id: u64, _class: WireClass) {}

    /// A delivered transfer failed its integrity check (fault injection):
    /// the receiver will NACK it back to the sender. `attempt` counts the
    /// prior failed deliveries of this id (0 = first corruption), `class`
    /// is the plane the corrupted copy rode.
    fn fault_detected(&mut self, _cycle: u64, _id: u64, _class: WireClass, _attempt: u32) {}

    /// A corrupted transfer re-entered lane arbitration. `cycle` is when
    /// the retransmission becomes eligible (NACK transit included),
    /// `class` the plane it will retry on (B once escalated), `attempt`
    /// the new attempt index.
    fn retransmit(&mut self, _cycle: u64, _id: u64, _class: WireClass, _attempt: u32) {}

    /// The forward-progress watchdog fired: no instruction committed for
    /// its full window. Called once, immediately before the run aborts
    /// with the same report as a structured error.
    fn stall(&mut self, _report: &StallReport) {}

    /// The load balancer diverted a transfer to the less congested plane
    /// (the paper's overflow-steering criterion fired).
    fn steer_overflow(&mut self, _cycle: u64, _target: WireClass) {}

    /// A load's partial-address comparison matched an earlier store: the
    /// load must wait for full disambiguation (possibly falsely).
    fn lsq_partial_conflict(&mut self, _cycle: u64, _seq: u64) {}

    /// A load's partial comparison passed and its cache RAM access began
    /// ahead of the full address (the accelerated cache pipeline).
    fn lsq_partial_ready(&mut self, _cycle: u64, _seq: u64) {}

    /// A load was fully disambiguated; `forward` means an in-flight store
    /// supplies the data.
    fn lsq_full_ready(&mut self, _cycle: u64, _seq: u64, _forward: bool) {}

    /// The front-end stalled on a mispredicted branch.
    fn fetch_stall(&mut self, _cycle: u64) {}

    /// The mispredict resolved and fetch was redirected.
    fn fetch_resume(&mut self, _cycle: u64) {}

    /// Per executed (non-skipped) cycle: occupancy of the ROB, the LSQ and
    /// the issue-ready queues.
    fn occupancy(&mut self, _cycle: u64, _rob: usize, _lsq: usize, _ready: usize) {}
}

/// The default probe: records nothing, costs nothing. `ENABLED = false`
/// lets every instrumented call site vanish at monomorphization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A probe that only counts events — checks the defaults compose.
    #[derive(Debug, Default)]
    struct CountProbe {
        dispatches: u64,
        delivers: u64,
    }

    impl Probe for CountProbe {
        fn dispatch(&mut self, _cycle: u64, _seq: u64, _cluster: usize, _op: OpClass) {
            self.dispatches += 1;
        }

        fn deliver(&mut self, _cycle: u64, _id: u64, _class: WireClass) {
            self.delivers += 1;
        }
    }

    #[test]
    fn null_probe_is_disabled() {
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(CountProbe::ENABLED) };
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut p = CountProbe::default();
        p.dispatch(1, 0, 2, OpClass::IntAlu);
        p.issue(2, 0, 2); // default body: ignored
        p.deliver(3, 7, WireClass::B);
        assert_eq!(p.dispatches, 1);
        assert_eq!(p.delivers, 1);
    }
}
