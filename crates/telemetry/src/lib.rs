#![warn(missing_docs)]
//! Zero-overhead observability for the heterowire simulator.
//!
//! The paper's argument is about *dynamics* — which transfers ride which
//! wire plane, when the load balancer overflows traffic, how the partial
//! address network hides cache latency — but the simulator's native
//! output is end-of-run aggregates. This crate adds a probe layer that
//! exposes those dynamics without costing the hot path anything when it
//! is off:
//!
//! - [`Probe`] — static-dispatch hooks at every pipeline / network /
//!   front-end / LSQ event site. Instrumented components are generic
//!   over `P: Probe` and guard each hook with `if P::ENABLED`.
//! - [`NullProbe`] — `ENABLED = false`; the guard is a compile-time
//!   constant, so the disabled path monomorphizes to exactly the
//!   uninstrumented code: zero calls, zero allocations, bit-identical
//!   `SimResults` (proved by the workspace's `alloc_count` and
//!   `kernel_equivalence` tests).
//! - [`RecordingProbe`] — preallocated ring-buffer recording that
//!   derives per-link × per-wire-class utilization time series,
//!   steering-overflow episodes, occupancy histograms, and
//!   per-instruction lifecycles.
//! - Exporters: [`chrome_trace`] (Chrome/Perfetto Trace Event JSON) and
//!   [`utilization_csv`]; both hand-rolled — this build is offline and
//!   takes no new dependencies.

pub mod json;
pub mod perfetto;
pub mod probe;
pub mod recording;
pub mod stall;

pub use perfetto::chrome_trace;
pub use probe::{NullProbe, Probe};
pub use recording::{
    class_slot, utilization_csv, EventCounts, Lifecycle, OverflowEpisode, RecordingConfig,
    RecordingProbe, SampleRow, NUM_CLASSES, OCC_BUCKETS, UNSET,
};
pub use stall::{BlockedTransfer, StallReport};
