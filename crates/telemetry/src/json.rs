//! Hand-rolled JSON support: an RFC-8259-safe writer for the trace and
//! results exporters, and a small recursive-descent parser so tests can
//! round-trip and schema-check the artifacts. The container builds
//! offline, so no serde — mirroring the repo's hand-rolled CSV code.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal, escaping per RFC 8259
/// (quote, backslash, and all control characters below U+0020).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no NaN/Infinity; those encode as
/// `null` (the parsers we target treat missing metrics as absent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's f64 Display prints the shortest round-trip form, which is
        // always a valid JSON number.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A low-ceremony writer for JSON objects and arrays: tracks comma
/// placement so call sites stay linear. Values nest by calling the
/// `begin_*` / `end_*` pairs.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current aggregate already holds a value (per depth).
    comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            }
            *c = true;
        }
    }

    /// Opens an object (as a value in the current aggregate).
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array (as a value in the current aggregate).
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.comma.pop();
        self.out.push(']');
        self
    }

    /// Writes an object key; the next value call supplies its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value after a key must not emit another comma.
        if let Some(c) = self.comma.last_mut() {
            *c = false;
        }
        self
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.pre_value();
        write_escaped(&mut self.out, s);
        self
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Writes a float value (`null` when not finite).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.pre_value();
        write_f64(&mut self.out, v);
        self
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a raw pre-serialized JSON value (caller guarantees validity).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.pre_value();
        self.out.push_str(json);
        self
    }

    /// Consumes the writer, returning the JSON text.
    pub fn finish(self) -> String {
        debug_assert!(self.comma.is_empty(), "unclosed aggregates");
        self.out
    }
}

/// A parsed JSON value (test/validation support).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64 — adequate for the artifacts we check).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not semantic; a sorted map keeps
    /// comparisons deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup for objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {s:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writer;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("raw control byte 0x{c:02x} in string"));
            }
            Some(_) => {
                // Advance one UTF-8 char.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t bell \u{7} unicode λ✓";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("name")
            .string("a,b\"c")
            .key("xs")
            .begin_array()
            .u64(1)
            .u64(2)
            .f64(0.5)
            .end_array()
            .key("ok")
            .bool(true)
            .key("bad")
            .f64(f64::NAN)
            .end_object();
        let text = w.finish();
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("a,b\"c"));
        assert_eq!(doc.get("xs").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("bad"), Some(&Json::Null), "NaN encodes as null");
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let doc = parse(r#"{"a": [1, -2.5e3, "xA"], "b": {"c": null}}"#).unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("xA"));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn numbers_round_trip() {
        let mut out = String::new();
        write_f64(&mut out, 0.1 + 0.2);
        let back = parse(&out).unwrap().as_num().unwrap();
        assert_eq!(back, 0.1 + 0.2, "shortest-form f64 must round-trip");
    }
}
