//! [`RecordingProbe`]: captures probe events into preallocated buffers and
//! derives the derived series the paper's analysis needs — per-link ×
//! per-wire-class utilization over a configurable sampling window,
//! steering-overflow episodes, occupancy histograms, and per-instruction
//! pipeline lifecycles.
//!
//! All storage is bounded and allocated up front in [`RecordingProbe::new`];
//! recording never allocates per event. When a buffer fills, the newest
//! data is counted as dropped (samples, episodes) or the oldest entry is
//! overwritten (lifecycle ring — keeps the most recent instructions).

use heterowire_isa::OpClass;
use heterowire_wires::WireClass;

use crate::probe::Probe;

/// Number of wire classes (indexes follow [`WireClass::ALL`] order).
pub const NUM_CLASSES: usize = WireClass::ALL.len();

/// Dense index of a wire class, matching [`WireClass::ALL`] order.
pub fn class_slot(class: WireClass) -> usize {
    match class {
        WireClass::W => 0,
        WireClass::Pw => 1,
        WireClass::B => 2,
        WireClass::L => 3,
    }
}

/// Sizing and labelling for a [`RecordingProbe`].
#[derive(Debug, Clone)]
pub struct RecordingConfig {
    /// Sampling window length in cycles for the utilization time series.
    pub window: u64,
    /// One label per interconnect link, in the topology's stable link
    /// order (`link` arguments to [`Probe::link_busy`] index this list).
    pub link_labels: Vec<String>,
    /// Number of clusters (tracks in the exported trace).
    pub clusters: usize,
    /// Capacity of the per-instruction lifecycle ring (most recent kept).
    pub lifecycle_capacity: usize,
    /// Maximum stored utilization sample rows.
    pub max_samples: usize,
    /// Maximum stored steering-overflow episodes.
    pub max_episodes: usize,
}

impl RecordingConfig {
    /// A reasonable default sizing for the given topology shape.
    pub fn new(window: u64, link_labels: Vec<String>, clusters: usize) -> Self {
        let links = link_labels.len();
        Self {
            window,
            link_labels,
            clusters,
            lifecycle_capacity: 4096,
            // Enough rows for every (link, class) pair to stay hot across
            // many windows before dropping kicks in.
            max_samples: (links * NUM_CLASSES).max(1) * 4096,
            max_episodes: 4096,
        }
    }
}

/// One utilization sample: lane-cycles consumed on `link` by `class`
/// during the window starting at `window_start`.
///
/// Flattened to 16 bytes so the sample buffer stays cache-dense; windows
/// with zero activity on a (link, class) pair produce no row (consumers
/// treat missing rows as zero), but any link active in a window emits all
/// four class rows so exported counter tracks reset correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRow {
    /// First cycle of the sampling window this row summarizes.
    pub window_start: u64,
    /// Link index into [`RecordingConfig::link_labels`].
    pub link: u16,
    /// Wire-class slot (see [`class_slot`]).
    pub class: u8,
    /// Busy lane-cycles accumulated in the window.
    pub busy: u32,
}

/// A contiguous run of cycles during which the load balancer diverted
/// traffic to its overflow target (consecutive-cycle events are merged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowEpisode {
    /// First cycle of the episode.
    pub start: u64,
    /// Last cycle of the episode (inclusive).
    pub end: u64,
    /// Diversions within the episode.
    pub events: u64,
    /// Class slot the balancer diverted *to*.
    pub target: u8,
}

/// Timestamps of one instruction's trip through the pipeline.
/// `u64::MAX` marks a stage not (yet) reached.
#[derive(Debug, Clone, Copy)]
pub struct Lifecycle {
    /// Dense per-run instruction sequence number.
    pub seq: u64,
    /// Cluster the instruction was steered to.
    pub cluster: u32,
    /// Operation class.
    pub op: OpClass,
    /// Cycle of dispatch into the ROB.
    pub dispatch: u64,
    /// Cycle execution began.
    pub issue: u64,
    /// Cycle execution finished.
    pub complete: u64,
    /// Cycle of retirement.
    pub commit: u64,
}

/// A stage not (yet) reached in a [`Lifecycle`].
pub const UNSET: u64 = u64::MAX;

/// Number of log2 occupancy buckets: bucket 0 holds zero, bucket `i`
/// (1..=16) holds values in `[2^(i-1), 2^i)`, saturating at the top.
pub const OCC_BUCKETS: usize = 17;

/// Histogram over log2 buckets (see [`OCC_BUCKETS`]).
pub type OccupancyHistogram = [u64; OCC_BUCKETS];

/// Bucket index for an occupancy value.
pub fn occ_bucket(value: usize) -> usize {
    if value == 0 {
        0
    } else {
        ((usize::BITS - value.leading_zeros()) as usize).min(OCC_BUCKETS - 1)
    }
}

/// Event counters that need no series structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventCounts {
    /// Instructions dispatched.
    pub dispatches: u64,
    /// Steering decisions that stalled dispatch (no cluster chosen).
    pub steer_stalls: u64,
    /// Instructions issued.
    pub issues: u64,
    /// Instructions completed.
    pub completes: u64,
    /// Instructions committed.
    pub commits: u64,
    /// Loads whose partial-address comparison hit an earlier store.
    pub lsq_partial_conflicts: u64,
    /// Loads whose cache access started early off the partial address.
    pub lsq_partial_ready: u64,
    /// Loads fully disambiguated.
    pub lsq_full_ready: u64,
    /// Fully disambiguated loads served by store forwarding.
    pub lsq_forwards: u64,
    /// Front-end stall entries (branch mispredicts).
    pub fetch_stalls: u64,
    /// Front-end redirects after misprediction resolved.
    pub fetch_resumes: u64,
}

/// The recording probe. See the module docs for the derived series.
#[derive(Debug)]
pub struct RecordingProbe {
    config: RecordingConfig,
    /// Start cycle of the window currently accumulating.
    window_start: u64,
    /// True once any event has landed in the current window, so idle
    /// windows (including whole spans skipped by the event-driven kernel)
    /// never flush rows.
    window_active: bool,
    /// Busy lane-cycles in the current window, `link * NUM_CLASSES + class`.
    current: Vec<u32>,
    /// Flushed utilization rows.
    samples: Vec<SampleRow>,
    /// Rows discarded because `samples` was full.
    pub dropped_samples: u64,
    /// Cumulative busy lane-cycles per (link, class), never dropped.
    link_totals: Vec<u64>,
    /// Transfers enqueued, per class.
    pub injected: [u64; NUM_CLASSES],
    /// Transfers that won arbitration and departed, per class.
    pub departed: [u64; NUM_CLASSES],
    /// Transfers delivered, per class.
    pub delivered: [u64; NUM_CLASSES],
    /// Total cycles departing transfers spent queued for a lane.
    pub queue_wait_sum: u64,
    episodes: Vec<OverflowEpisode>,
    /// Overflow events discarded because `episodes` was full.
    pub dropped_episodes: u64,
    lifecycles: Vec<Lifecycle>,
    /// Lifecycle entries overwritten by newer instructions.
    pub evicted_lifecycles: u64,
    /// ROB occupancy histogram (per executed cycle).
    pub rob_occupancy: OccupancyHistogram,
    /// LSQ occupancy histogram (per executed cycle).
    pub lsq_occupancy: OccupancyHistogram,
    /// Ready-heap occupancy histogram (per executed cycle).
    pub ready_occupancy: OccupancyHistogram,
    /// Plain event counters.
    pub counts: EventCounts,
    /// Highest cycle observed by any event.
    pub last_cycle: u64,
}

impl RecordingProbe {
    /// Allocates all recording storage up front.
    pub fn new(config: RecordingConfig) -> Self {
        assert!(config.window >= 1, "sampling window must be at least 1");
        let slots = config.link_labels.len() * NUM_CLASSES;
        Self {
            current: vec![0; slots],
            samples: Vec::with_capacity(config.max_samples),
            dropped_samples: 0,
            link_totals: vec![0; slots],
            injected: [0; NUM_CLASSES],
            departed: [0; NUM_CLASSES],
            delivered: [0; NUM_CLASSES],
            queue_wait_sum: 0,
            episodes: Vec::with_capacity(config.max_episodes),
            dropped_episodes: 0,
            lifecycles: Vec::with_capacity(config.lifecycle_capacity),
            evicted_lifecycles: 0,
            rob_occupancy: [0; OCC_BUCKETS],
            lsq_occupancy: [0; OCC_BUCKETS],
            ready_occupancy: [0; OCC_BUCKETS],
            counts: EventCounts::default(),
            last_cycle: 0,
            window_start: 0,
            window_active: false,
            config,
        }
    }

    /// The configuration this probe was built with.
    pub fn config(&self) -> &RecordingConfig {
        &self.config
    }

    /// Flushed utilization rows, in flush order (windows ascending; within
    /// a window, links ascending, classes in [`WireClass::ALL`] order).
    pub fn samples(&self) -> &[SampleRow] {
        &self.samples
    }

    /// Cumulative busy lane-cycles for `(link, class_slot)`.
    pub fn link_total(&self, link: usize, class: usize) -> u64 {
        self.link_totals[link * NUM_CLASSES + class]
    }

    /// Merged steering-overflow episodes.
    pub fn episodes(&self) -> &[OverflowEpisode] {
        &self.episodes
    }

    /// Recorded lifecycles (ring order, not sequence order).
    pub fn lifecycles(&self) -> &[Lifecycle] {
        &self.lifecycles
    }

    /// Advances the sampling window to the one containing `cycle`,
    /// flushing the currently accumulating window if it had any activity.
    ///
    /// Only the *active* window ever flushes: a jump across many idle
    /// windows (the event-driven kernel skips them wholesale) emits no
    /// rows for the skipped span — consumers treat absent windows as zero,
    /// so idle-skipping cannot create phantom samples. Cycle `k * window`
    /// belongs to window `k` (window starts are inclusive).
    fn roll(&mut self, cycle: u64) {
        self.last_cycle = self.last_cycle.max(cycle);
        if cycle < self.window_start + self.config.window {
            return;
        }
        self.flush_window();
        self.window_start = cycle / self.config.window * self.config.window;
    }

    fn flush_window(&mut self) {
        if !self.window_active {
            return;
        }
        self.window_active = false;
        let links = self.config.link_labels.len();
        for link in 0..links {
            let base = link * NUM_CLASSES;
            let active = self.current[base..base + NUM_CLASSES]
                .iter()
                .any(|&b| b > 0);
            if !active {
                continue;
            }
            // Emit all four classes (zeros included) for an active link so
            // counter tracks in the exported trace reset between windows.
            for class in 0..NUM_CLASSES {
                let busy = std::mem::take(&mut self.current[base + class]);
                if self.samples.len() < self.config.max_samples {
                    self.samples.push(SampleRow {
                        window_start: self.window_start,
                        link: link as u16,
                        class: class as u8,
                        busy,
                    });
                } else {
                    self.dropped_samples += 1;
                }
            }
        }
    }

    /// Flushes the final partial window. Call once after the run.
    pub fn finish(&mut self) {
        self.flush_window();
    }

    fn lifecycle_slot(&mut self, seq: u64) -> Option<&mut Lifecycle> {
        let cap = self.config.lifecycle_capacity;
        if cap == 0 {
            return None;
        }
        let slot = (seq % cap as u64) as usize;
        self.lifecycles.get_mut(slot).filter(|l| l.seq == seq)
    }

    /// Total lane-cycles across all links and classes (cumulative).
    pub fn total_busy(&self) -> u64 {
        self.link_totals.iter().sum()
    }
}

impl Probe for RecordingProbe {
    fn dispatch(&mut self, cycle: u64, seq: u64, cluster: usize, op: OpClass) {
        self.roll(cycle);
        self.counts.dispatches += 1;
        let cap = self.config.lifecycle_capacity;
        if cap == 0 {
            return;
        }
        let slot = (seq % cap as u64) as usize;
        let entry = Lifecycle {
            seq,
            cluster: cluster as u32,
            op,
            dispatch: cycle,
            issue: UNSET,
            complete: UNSET,
            commit: UNSET,
        };
        if slot < self.lifecycles.len() {
            self.evicted_lifecycles += 1;
            self.lifecycles[slot] = entry;
        } else {
            // Slots fill in order because seq is dense from zero.
            debug_assert_eq!(slot, self.lifecycles.len());
            self.lifecycles.push(entry);
        }
    }

    fn steer_decision(&mut self, cycle: u64, chosen: Option<usize>) {
        self.roll(cycle);
        if chosen.is_none() {
            self.counts.steer_stalls += 1;
        }
    }

    fn issue(&mut self, cycle: u64, seq: u64, _cluster: usize) {
        self.roll(cycle);
        self.counts.issues += 1;
        if let Some(l) = self.lifecycle_slot(seq) {
            l.issue = cycle;
        }
    }

    fn complete(&mut self, cycle: u64, seq: u64) {
        self.roll(cycle);
        self.counts.completes += 1;
        if let Some(l) = self.lifecycle_slot(seq) {
            l.complete = cycle;
        }
    }

    fn commit(&mut self, cycle: u64, seq: u64) {
        self.roll(cycle);
        self.counts.commits += 1;
        if let Some(l) = self.lifecycle_slot(seq) {
            l.commit = cycle;
        }
    }

    fn enqueue(&mut self, cycle: u64, _id: u64, class: WireClass) {
        self.roll(cycle);
        self.injected[class_slot(class)] += 1;
    }

    fn depart(&mut self, cycle: u64, _id: u64, class: WireClass, queued: u64) {
        self.roll(cycle);
        self.departed[class_slot(class)] += 1;
        self.queue_wait_sum += queued;
    }

    fn link_busy(&mut self, cycle: u64, link: usize, class: WireClass) {
        self.roll(cycle);
        let idx = link * NUM_CLASSES + class_slot(class);
        self.current[idx] += 1;
        self.link_totals[idx] += 1;
        self.window_active = true;
    }

    fn deliver(&mut self, cycle: u64, _id: u64, class: WireClass) {
        self.roll(cycle);
        self.delivered[class_slot(class)] += 1;
    }

    fn steer_overflow(&mut self, cycle: u64, target: WireClass) {
        self.roll(cycle);
        let target = class_slot(target) as u8;
        if let Some(last) = self.episodes.last_mut() {
            if last.target == target && cycle <= last.end + 1 {
                last.end = last.end.max(cycle);
                last.events += 1;
                return;
            }
        }
        if self.episodes.len() < self.config.max_episodes {
            self.episodes.push(OverflowEpisode {
                start: cycle,
                end: cycle,
                events: 1,
                target,
            });
        } else {
            self.dropped_episodes += 1;
        }
    }

    fn lsq_partial_conflict(&mut self, cycle: u64, _seq: u64) {
        self.roll(cycle);
        self.counts.lsq_partial_conflicts += 1;
    }

    fn lsq_partial_ready(&mut self, cycle: u64, _seq: u64) {
        self.roll(cycle);
        self.counts.lsq_partial_ready += 1;
    }

    fn lsq_full_ready(&mut self, cycle: u64, _seq: u64, forward: bool) {
        self.roll(cycle);
        self.counts.lsq_full_ready += 1;
        if forward {
            self.counts.lsq_forwards += 1;
        }
    }

    fn fetch_stall(&mut self, cycle: u64) {
        self.roll(cycle);
        self.counts.fetch_stalls += 1;
    }

    fn fetch_resume(&mut self, cycle: u64) {
        self.roll(cycle);
        self.counts.fetch_resumes += 1;
    }

    fn occupancy(&mut self, cycle: u64, rob: usize, lsq: usize, ready: usize) {
        self.roll(cycle);
        self.rob_occupancy[occ_bucket(rob)] += 1;
        self.lsq_occupancy[occ_bucket(lsq)] += 1;
        self.ready_occupancy[occ_bucket(ready)] += 1;
    }
}

/// Renders the utilization time series as CSV with RFC-4180 quoting,
/// matching the repo's other CSV artifacts. Absent (window, link, class)
/// rows mean zero busy lane-cycles.
pub fn utilization_csv(probe: &RecordingProbe) -> String {
    let mut out = String::from("window_start,window_len,link,link_label,class,busy\n");
    let window = probe.config().window;
    for row in probe.samples() {
        let label = &probe.config().link_labels[row.link as usize];
        let class = WireClass::ALL[row.class as usize].label();
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            row.window_start,
            window,
            row.link,
            csv_quote(label),
            class,
            row.busy
        ));
    }
    out
}

/// RFC-4180 quoting for a CSV field (quote when it contains `,`, `"` or
/// newlines; double embedded quotes).
fn csv_quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with_window(window: u64) -> RecordingProbe {
        let labels = vec!["c0.out".to_string(), "c0.in".to_string()];
        RecordingProbe::new(RecordingConfig::new(window, labels, 4))
    }

    #[test]
    fn window_longer_than_run_yields_single_flush() {
        let mut p = probe_with_window(1_000_000);
        p.link_busy(3, 0, WireClass::B);
        p.link_busy(907, 1, WireClass::L);
        p.finish();
        let starts: Vec<u64> = p.samples().iter().map(|r| r.window_start).collect();
        assert!(starts.iter().all(|&s| s == 0), "one window covers the run");
        // Two active links × all four classes each.
        assert_eq!(p.samples().len(), 2 * NUM_CLASSES);
        assert_eq!(p.total_busy(), 2);
    }

    #[test]
    fn boundary_cycle_starts_the_next_window() {
        let mut p = probe_with_window(100);
        p.link_busy(99, 0, WireClass::B); // last cycle of window 0
        p.link_busy(100, 0, WireClass::B); // first cycle of window 1
        p.finish();
        let by_window: Vec<(u64, u32)> = p
            .samples()
            .iter()
            .filter(|r| r.busy > 0)
            .map(|r| (r.window_start, r.busy))
            .collect();
        assert_eq!(by_window, vec![(0, 1), (100, 1)]);
    }

    #[test]
    fn cycle_jumps_emit_no_phantom_samples() {
        let mut p = probe_with_window(10);
        p.link_busy(5, 0, WireClass::W);
        // The event-driven kernel skips straight past hundreds of idle
        // windows; only the two active ones may produce rows.
        p.link_busy(7_777, 0, WireClass::W);
        p.finish();
        let starts: Vec<u64> = p
            .samples()
            .iter()
            .filter(|r| r.busy > 0)
            .map(|r| r.window_start)
            .collect();
        assert_eq!(starts, vec![0, 7_770]);
    }

    #[test]
    fn idle_windows_between_non_link_events_emit_nothing() {
        let mut p = probe_with_window(10);
        p.commit(5, 0);
        p.commit(9_995, 1); // rolls across ~1000 windows with no link activity
        p.finish();
        assert!(p.samples().is_empty());
        assert_eq!(p.counts.commits, 2);
    }

    #[test]
    fn overflow_episodes_merge_consecutive_cycles() {
        let mut p = probe_with_window(64);
        p.steer_overflow(10, WireClass::Pw);
        p.steer_overflow(10, WireClass::Pw);
        p.steer_overflow(11, WireClass::Pw);
        p.steer_overflow(50, WireClass::Pw); // gap: new episode
        p.steer_overflow(51, WireClass::B); // target change: new episode
        assert_eq!(p.episodes().len(), 3);
        assert_eq!(
            p.episodes()[0],
            OverflowEpisode {
                start: 10,
                end: 11,
                events: 3,
                target: class_slot(WireClass::Pw) as u8,
            }
        );
    }

    #[test]
    fn lifecycle_ring_keeps_most_recent() {
        let labels = vec!["l".to_string()];
        let mut cfg = RecordingConfig::new(16, labels, 4);
        cfg.lifecycle_capacity = 4;
        let mut p = RecordingProbe::new(cfg);
        for seq in 0..6u64 {
            p.dispatch(seq, seq, 0, OpClass::IntAlu);
            p.commit(seq + 100, seq);
        }
        assert_eq!(p.evicted_lifecycles, 2);
        let mut seqs: Vec<u64> = p.lifecycles().iter().map(|l| l.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![2, 3, 4, 5], "seq 4/5 overwrite seq 0/1");
    }

    #[test]
    fn stale_lifecycle_updates_are_ignored() {
        let labels = vec!["l".to_string()];
        let mut cfg = RecordingConfig::new(16, labels, 4);
        cfg.lifecycle_capacity = 2;
        let mut p = RecordingProbe::new(cfg);
        p.dispatch(1, 0, 0, OpClass::IntAlu);
        p.dispatch(2, 2, 0, OpClass::IntAlu); // evicts seq 0 (same slot)
        p.commit(9, 0); // stale: slot now belongs to seq 2
        let l = p.lifecycles().iter().find(|l| l.seq == 2).unwrap();
        assert_eq!(l.commit, UNSET);
    }

    #[test]
    fn occupancy_buckets_are_log2() {
        assert_eq!(occ_bucket(0), 0);
        assert_eq!(occ_bucket(1), 1);
        assert_eq!(occ_bucket(2), 2);
        assert_eq!(occ_bucket(3), 2);
        assert_eq!(occ_bucket(4), 3);
        assert_eq!(occ_bucket(usize::MAX), OCC_BUCKETS - 1);
    }

    #[test]
    fn csv_rows_reconcile_with_link_totals() {
        let mut p = probe_with_window(8);
        for cycle in [0, 1, 7, 8, 9, 63, 64] {
            p.link_busy(cycle, 0, WireClass::B);
            if cycle % 2 == 0 {
                p.link_busy(cycle, 1, WireClass::L);
            }
        }
        p.finish();
        let csv = utilization_csv(&p);
        let mut sums = [[0u64; NUM_CLASSES]; 2];
        for line in csv.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            let link: usize = f[2].parse().unwrap();
            let class = WireClass::ALL
                .iter()
                .position(|c| c.label() == f[4])
                .unwrap();
            sums[link][class] += f[5].parse::<u64>().unwrap();
        }
        for (link, row) in sums.iter().enumerate() {
            for (class, &sum) in row.iter().enumerate() {
                assert_eq!(sum, p.link_total(link, class));
            }
        }
    }
}
