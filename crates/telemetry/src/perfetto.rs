//! Chrome-trace / Perfetto exporter for a finished [`RecordingProbe`].
//!
//! The output is the JSON Trace Event Format that both `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev) load directly:
//!
//! - **pid 1 "pipeline"** — one thread track per cluster; each committed
//!   instruction becomes an async slice (`ph: "b"` at dispatch, `"e"` at
//!   commit, paired by `cat` + `id`) with instant marks (`ph: "n"`) at
//!   issue and complete.
//! - **pid 2 "interconnect"** — one counter track per link (`ph: "C"`),
//!   one series per wire class, sampled once per utilization window.
//! - **pid 3 "episodes"** — steering-overflow episodes as duration
//!   slices (`ph: "X"`).
//!
//! Cycles map 1:1 to trace microseconds (`ts` is in µs by spec), so one
//! trace "µs" reads as one simulated cycle.

use heterowire_wires::WireClass;

use crate::json::JsonWriter;
use crate::recording::{RecordingProbe, NUM_CLASSES, UNSET};

fn meta_event(w: &mut JsonWriter, name: &str, pid: u64, tid: Option<u64>, value: &str) {
    w.begin_object()
        .key("name")
        .string(name)
        .key("ph")
        .string("M")
        .key("pid")
        .u64(pid);
    if let Some(tid) = tid {
        w.key("tid").u64(tid);
    }
    w.key("args").begin_object().key("name").string(value);
    w.end_object().end_object();
}

fn async_event(w: &mut JsonWriter, ph: &str, name: &str, id: u64, ts: u64, tid: u64) {
    w.begin_object()
        .key("cat")
        .string("instr")
        .key("name")
        .string(name)
        .key("ph")
        .string(ph)
        .key("id")
        .u64(id)
        .key("ts")
        .u64(ts)
        .key("pid")
        .u64(1)
        .key("tid")
        .u64(tid)
        .end_object();
}

/// Serializes the probe's recordings as a Chrome-trace JSON document.
pub fn chrome_trace(probe: &RecordingProbe) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("traceEvents").begin_array();

    // Track metadata: names for the process and thread rows.
    meta_event(&mut w, "process_name", 1, None, "pipeline");
    for c in 0..probe.config().clusters {
        meta_event(
            &mut w,
            "thread_name",
            1,
            Some(c as u64),
            &format!("cluster {c}"),
        );
    }
    meta_event(&mut w, "process_name", 2, None, "interconnect");
    for (i, label) in probe.config().link_labels.iter().enumerate() {
        meta_event(&mut w, "thread_name", 2, Some(i as u64), label);
    }
    meta_event(&mut w, "process_name", 3, None, "episodes");

    // Instruction lifecycles as async slices. Only instructions that
    // committed have a balanced b/e pair; in-flight leftovers are skipped.
    for l in probe.lifecycles() {
        if l.commit == UNSET {
            continue;
        }
        let name = format!("i{} {:?}", l.seq, l.op);
        let tid = l.cluster as u64;
        async_event(&mut w, "b", &name, l.seq, l.dispatch, tid);
        if l.issue != UNSET {
            async_event(&mut w, "n", "issue", l.seq, l.issue, tid);
        }
        if l.complete != UNSET {
            async_event(&mut w, "n", "complete", l.seq, l.complete, tid);
        }
        async_event(&mut w, "e", &name, l.seq, l.commit, tid);
    }

    // Per-link utilization counters: the flush order guarantees the four
    // class rows of an active link are adjacent, so emit one counter
    // event per (window, link) carrying all four series.
    let samples = probe.samples();
    let mut i = 0;
    while i < samples.len() {
        let head = samples[i];
        let label = &probe.config().link_labels[head.link as usize];
        w.begin_object()
            .key("name")
            .string(&format!("util {label}"))
            .key("ph")
            .string("C")
            .key("ts")
            .u64(head.window_start)
            .key("pid")
            .u64(2)
            .key("tid")
            .u64(head.link as u64)
            .key("args")
            .begin_object();
        let mut j = i;
        while j < samples.len()
            && samples[j].window_start == head.window_start
            && samples[j].link == head.link
        {
            let class = WireClass::ALL[samples[j].class as usize].label();
            w.key(class).u64(samples[j].busy as u64);
            j += 1;
        }
        w.end_object().end_object();
        debug_assert!(j - i <= NUM_CLASSES);
        i = j;
    }

    // Steering-overflow episodes as complete (duration) slices. "X" needs
    // dur >= 1 to be visible; an episode covering cycles start..=end
    // spans end - start + 1 cycles.
    for (n, e) in probe.episodes().iter().enumerate() {
        let target = WireClass::ALL[e.target as usize].label();
        w.begin_object()
            .key("name")
            .string(&format!("overflow→{target}"))
            .key("ph")
            .string("X")
            .key("ts")
            .u64(e.start)
            .key("dur")
            .u64(e.end - e.start + 1)
            .key("pid")
            .u64(3)
            .key("tid")
            .u64(0)
            .key("args")
            .begin_object()
            .key("events")
            .u64(e.events)
            .key("episode")
            .u64(n as u64)
            .end_object()
            .end_object();
    }

    w.end_array();

    // Summary block for consumers that want aggregates without parsing
    // the event stream.
    w.key("otherData").begin_object();
    w.key("cycles").u64(probe.last_cycle);
    w.key("window").u64(probe.config().window);
    for (name, counts) in [
        ("injected", &probe.injected),
        ("departed", &probe.departed),
        ("delivered", &probe.delivered),
    ] {
        w.key(name).begin_object();
        for (slot, class) in WireClass::ALL.iter().enumerate() {
            w.key(class.label()).u64(counts[slot]);
        }
        w.end_object();
    }
    w.key("queue_wait_sum").u64(probe.queue_wait_sum);
    w.key("dropped_samples").u64(probe.dropped_samples);
    w.key("dropped_episodes").u64(probe.dropped_episodes);
    w.key("evicted_lifecycles").u64(probe.evicted_lifecycles);
    w.end_object();

    w.key("displayTimeUnit").string("ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::probe::Probe;
    use crate::recording::RecordingConfig;
    use heterowire_isa::OpClass;

    fn sample_probe() -> RecordingProbe {
        let labels = vec!["c0.out".to_string(), "c0.in".to_string()];
        let mut cfg = RecordingConfig::new(50, labels, 2);
        cfg.lifecycle_capacity = 8;
        let mut p = RecordingProbe::new(cfg);
        p.dispatch(1, 0, 0, OpClass::IntAlu);
        p.issue(3, 0, 0);
        p.enqueue(4, 9, WireClass::B);
        p.depart(5, 9, WireClass::B, 0);
        p.link_busy(5, 0, WireClass::B);
        p.deliver(9, 9, WireClass::B);
        p.complete(9, 0);
        p.commit(12, 0);
        p.dispatch(2, 1, 1, OpClass::Load); // never commits
        p.steer_overflow(20, WireClass::Pw);
        p.steer_overflow(21, WireClass::Pw);
        p.finish();
        p
    }

    #[test]
    fn trace_is_valid_json_with_balanced_async_pairs() {
        let text = chrome_trace(&sample_probe());
        let doc = parse(&text).expect("trace must parse");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        let mut open = 0i64;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(e.get("pid").unwrap().as_num().is_some());
            match ph {
                "b" => open += 1,
                "e" => open -= 1,
                "n" | "C" | "M" | "X" => {}
                other => panic!("unexpected phase {other:?}"),
            }
            if ph != "M" {
                assert!(e.get("ts").unwrap().as_num().is_some());
            }
        }
        assert_eq!(open, 0, "every async begin has a matching end");
    }

    #[test]
    fn uncommitted_instructions_are_skipped() {
        let text = chrome_trace(&sample_probe());
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let begins: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .collect();
        assert_eq!(begins.len(), 1, "only the committed instruction exports");
        assert_eq!(begins[0].get("id").unwrap().as_num(), Some(0.0));
    }

    #[test]
    fn counter_events_carry_all_classes() {
        let text = chrome_trace(&sample_probe());
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let counter = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .expect("one counter event for the active link");
        let args = counter.get("args").unwrap();
        for class in WireClass::ALL {
            assert!(
                args.get(class.label()).is_some(),
                "{} series",
                class.label()
            );
        }
        assert_eq!(args.get("B").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn summary_totals_match_probe() {
        let p = sample_probe();
        let doc = parse(&chrome_trace(&p)).unwrap();
        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other.get("injected").unwrap().get("B").unwrap().as_num(),
            Some(1.0)
        );
        assert_eq!(other.get("queue_wait_sum").unwrap().as_num(), Some(0.0));
        let episodes = p.episodes();
        assert_eq!(episodes.len(), 1);
        assert_eq!(episodes[0].events, 2);
    }
}
