//! Structured forward-progress diagnostics.
//!
//! When the simulator's watchdog sees no instruction commit for its full
//! window it used to panic with a one-line message. Under fault injection
//! a stall has richer causes — a retry storm on a high-error-rate plane,
//! a fabric degraded down to planes a message class cannot ride — so the
//! watchdog now assembles a [`StallReport`], hands it to
//! [`Probe::stall`](crate::Probe::stall), and returns it as a structured
//! error the harness can render as a failed row instead of a dead sweep.

use std::fmt;

use heterowire_wires::WireClass;

/// The oldest transfer still waiting for lane arbitration when the run
/// stalled. With faults active this is usually the message caught in a
/// retry storm; without faults it fingers the resource the pipeline
/// deadlocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedTransfer {
    /// Network transfer id.
    pub id: u64,
    /// Wire class the transfer is currently trying to ride.
    pub class: WireClass,
    /// Cycle it (re-)entered arbitration.
    pub enqueued: u64,
    /// Prior failed delivery attempts (0 = never corrupted).
    pub attempt: u32,
}

/// Diagnostic report emitted by the forward-progress watchdog when a run
/// stops committing instructions. Carries enough state to distinguish a
/// genuine pipeline deadlock from fault-induced livelock (retry storms,
/// dead lanes) without re-running under a recording probe.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Cycle the watchdog fired at.
    pub cycle: u64,
    /// Instructions committed before progress stopped.
    pub committed: u64,
    /// ROB occupancy at the stall.
    pub rob_len: usize,
    /// Debug rendering of the ROB head (op, phase), if any.
    pub rob_head: Option<String>,
    /// Transfers still waiting for lane arbitration.
    pub net_pending: usize,
    /// Transfers in flight (departed, not yet delivered).
    pub net_inflight: usize,
    /// Corrupted deliveries detected so far.
    pub faults_detected: u64,
    /// Retransmissions injected so far.
    pub retransmits: u64,
    /// Retries escalated to the B plane so far.
    pub escalations: u64,
    /// The oldest transfer stuck in arbitration, if any.
    pub oldest_blocked: Option<BlockedTransfer>,
    /// The live (post-retirement) cluster-link composition.
    pub link: String,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The leading clause keeps the seed's deadlock wording so log
        // scrapers and old panic-message expectations still match.
        write!(
            f,
            "pipeline deadlock at cycle {}: committed {}, rob {}, head {:?}; \
             network: {} pending, {} in flight on [{}]; \
             faults: {} detected, {} retransmits, {} escalations",
            self.cycle,
            self.committed,
            self.rob_len,
            self.rob_head,
            self.net_pending,
            self.net_inflight,
            self.link,
            self.faults_detected,
            self.retransmits,
            self.escalations,
        )?;
        if let Some(b) = &self.oldest_blocked {
            write!(
                f,
                "; oldest blocked transfer {} ({}, attempt {}, enqueued cycle {})",
                b.id, b.class, b.attempt, b.enqueued
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for StallReport {}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StallReport {
        StallReport {
            cycle: 123_456,
            committed: 42,
            rob_len: 7,
            rob_head: Some("(IntAlu, Issued)".to_string()),
            net_pending: 3,
            net_inflight: 1,
            faults_detected: 900,
            retransmits: 900,
            escalations: 0,
            oldest_blocked: Some(BlockedTransfer {
                id: 17,
                class: WireClass::L,
                enqueued: 23_000,
                attempt: 5,
            }),
            link: "144 B-Wires".to_string(),
        }
    }

    #[test]
    fn display_keeps_the_deadlock_prefix() {
        let s = report().to_string();
        assert!(s.starts_with("pipeline deadlock at cycle 123456"), "{s}");
        assert!(s.contains("900 retransmits"), "{s}");
        assert!(s.contains("transfer 17 (L-Wires, attempt 5"), "{s}");
    }

    #[test]
    fn display_without_blocked_transfer() {
        let mut r = report();
        r.oldest_blocked = None;
        assert!(!r.to_string().contains("oldest blocked"));
    }
}
