//! Scenario tests for the accelerated cache pipeline — the concrete cases
//! of paper §4 ("Accelerating Cache Access") as timelines.

use heterowire_memory::{MemConfig, MemoryHierarchy};

fn warm(addr: u64) -> MemoryHierarchy {
    let mut m = MemoryHierarchy::new(MemConfig::default());
    m.load(addr, 0, 0, false);
    m
}

#[test]
fn scenario_paper_best_case() {
    // LS bits arrive well before the MS bits (wire-constrained machine):
    // the RAM access fully overlaps the MS transfer and only the tag
    // compare remains.
    let mut m = warm(0x2000);
    // Partial at cycle 100, full at cycle 110 (a 10-cycle head start).
    let done = m.load(0x2000, 100, 110, true);
    assert_eq!(done, 111, "RAM (100..106) hidden; tag compare at 111");
}

#[test]
fn scenario_one_cycle_head_start_breaks_even() {
    // The 4-cluster crossbar gives L a single-cycle advantage over B: the
    // accelerated path must never be *worse* than the baseline.
    let mut m = warm(0x2000);
    let accelerated = m.load(0x2000, 100, 101, true);
    let mut m2 = warm(0x2000);
    let baseline = m2.load(0x2000, 101, 101, false);
    assert!(accelerated <= baseline, "{accelerated} > {baseline}");
}

#[test]
fn scenario_fallback_when_partial_is_late() {
    // If the partial somehow arrives *with* the full address, the
    // controller uses the conventional path: identical latency.
    let mut m = warm(0x3000);
    let acc = m.load(0x3000, 200, 200, true);
    let mut m2 = warm(0x3000);
    let base = m2.load(0x3000, 200, 200, false);
    assert_eq!(acc, base);
}

#[test]
fn scenario_miss_unaffected_by_acceleration_tail() {
    // On a miss the refill dominates; acceleration must not change the
    // L2/DRAM component.
    let mut ma = MemoryHierarchy::new(MemConfig::default());
    let a = ma.load(0x9_0000, 50, 60, true);
    let mut mb = MemoryHierarchy::new(MemConfig::default());
    let b = mb.load(0x9_0000, 60, 60, false);
    // Both are cold DRAM misses; the accelerated one detects the miss at
    // the same tag time and must finish no later.
    assert!(a <= b, "{a} > {b}");
}

#[test]
fn critical_word_first_saves_the_line_tail() {
    let cfg = MemConfig {
        critical_word_first: true,
        ..MemConfig::default()
    };
    let mut cwf = MemoryHierarchy::new(cfg);
    let mut base = MemoryHierarchy::new(MemConfig::default());
    let a = cwf.load(0xA_0000, 10, 10, false);
    let b = base.load(0xA_0000, 10, 10, false);
    assert_eq!(
        b - a,
        MemConfig::default().mem_line_tail,
        "CWF must save exactly the DRAM line tail on a cold miss"
    );
}

#[test]
fn bank_interleaving_is_word_granular() {
    let mut m = MemoryHierarchy::default();
    // Words 0,1,2,3 map to banks 0..3: all four can start together.
    for w in 0..4u64 {
        m.load(0x4000 + w * 8, 10, 10, false);
    }
    assert_eq!(m.stats().bank_conflicts, 0);
    // A fifth access to word 4 (bank 0 again) in the same cycle conflicts.
    m.load(0x4000 + 4 * 8, 10, 10, false);
    assert_eq!(m.stats().bank_conflicts, 1);
}
