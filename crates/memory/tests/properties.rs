//! Randomized property-style tests over the memory subsystem invariants
//! (std-only, driven by the workspace RNG).

use heterowire_rng::SmallRng;

use heterowire_memory::lsq::{LoadStatus, LoadStoreQueue};
use heterowire_memory::pipeline::{
    accelerated_hit_completion, baseline_hit_completion, CachePipelineParams,
};
use heterowire_memory::{Cache, MemoryHierarchy, Tlb};

const CASES: usize = 128;

/// Cache inclusion of the last access: the line just accessed always
/// probes as present.
#[test]
fn most_recent_line_is_resident() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0001);
    for _ in 0..16 {
        let n = rng.gen_range(1usize..200);
        let mut c = Cache::new(4 * 1024, 2, 64);
        for _ in 0..n {
            let a = rng.gen::<u32>() as u64;
            c.access(a);
            assert!(c.probe(a), "just-accessed {a:#x} missing");
        }
    }
}

/// A working set no larger than one way's capacity per set never misses
/// after the first pass, for any alignment.
#[test]
fn small_working_sets_fit() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0002);
    for _ in 0..32 {
        let base = rng.gen_range(0u64..(1 << 30)) & !63;
        let mut c = Cache::new(32 * 1024, 4, 64);
        let lines: Vec<u64> = (0..64).map(|i| base + i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            assert!(c.access(a), "{a:#x} missed on second pass");
        }
    }
}

/// LSQ soundness: `PartialReady` is only reported when the full addresses
/// actually have no conflict (no false *negatives* in the partial filter:
/// a partial mismatch must imply a word mismatch).
#[test]
fn partial_filter_is_sound() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0003);
    for _ in 0..CASES {
        let saddr = (rng.gen::<u32>() as u64) & !7;
        // Half the cases share low bits with the store so the conflict
        // path is exercised, not just the common no-match path.
        let laddr = if rng.gen_bool(0.5) {
            (rng.gen::<u32>() as u64) & !7
        } else {
            saddr ^ ((rng.gen_range(0u64..16)) << 20)
        };
        let bits = rng.gen_range(1u32..16);
        let mut lsq = LoadStoreQueue::new(bits);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_partial(1, saddr, 0);
        lsq.arrive_partial(2, laddr, 0);
        let early = lsq.load_status(2, 0, true);
        lsq.arrive_full(1, saddr, 1);
        lsq.arrive_full(2, laddr, 1);
        let fin = lsq.load_status(2, 1, true);
        match early {
            LoadStatus::PartialReady => {
                // Partial said "no conflict": the full check must agree.
                assert_eq!(fin, LoadStatus::FullReady { forward: false });
                assert_ne!(saddr >> 3, laddr >> 3);
            }
            LoadStatus::PartialConflict => {
                // Partial matched; a real conflict implies equal words.
                if saddr >> 3 == laddr >> 3 {
                    assert_eq!(fin, LoadStatus::FullReady { forward: true });
                }
            }
            other => panic!("unexpected early status {other:?}"),
        }
    }
}

/// Full-address disambiguation forwards exactly when the word matches.
#[test]
fn forwarding_matches_word_equality() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0004);
    for _ in 0..CASES {
        let saddr = rng.gen::<u32>() as u64;
        // Mix in exact word matches so the forwarding arm is hit often.
        let laddr = if rng.gen_bool(0.3) {
            (saddr & !7) | rng.gen_range(0u64..8)
        } else {
            rng.gen::<u32>() as u64
        };
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_full(1, saddr, 0);
        lsq.arrive_full(2, laddr, 0);
        let status = lsq.load_status(2, 0, false);
        assert_eq!(
            status,
            LoadStatus::FullReady {
                forward: saddr >> 3 == laddr >> 3
            }
        );
    }
}

/// The accelerated pipeline never loses more than the tag-compare cycle,
/// and wins at most the RAM latency.
#[test]
fn acceleration_is_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0005);
    for _ in 0..CASES {
        let head_start = rng.gen_range(0u64..32);
        let ms = rng.gen_range(0u64..1000);
        let p = CachePipelineParams::l1_table1();
        let ram_start = ms.saturating_sub(head_start);
        let fast = accelerated_hit_completion(&p, ram_start, ms);
        let slow = baseline_hit_completion(&p, ms);
        let benefit = slow as i64 - fast as i64;
        assert!(benefit >= -(p.tag_compare as i64));
        assert!(benefit <= p.ram_latency as i64);
    }
}

/// TLB reach: pages in a working set no larger than the TLB always hit
/// after warmup.
#[test]
fn tlb_reach() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0006);
    for _ in 0..32 {
        let base_page = rng.gen_range(0u64..(1 << 20));
        let mut tlb = Tlb::table1();
        let pages: Vec<u64> = (0..64).map(|i| (base_page + i) * 8192).collect();
        for &p in &pages {
            tlb.access(p);
        }
        for &p in &pages {
            assert!(tlb.access(p), "page {p:#x} missed after warmup");
        }
    }
}

/// Hierarchy latency sanity: completions never precede their inputs and
/// warm hits cost exactly the L1 latency.
#[test]
fn hierarchy_latency_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x3e3_0007);
    for _ in 0..CASES {
        let addr = rng.gen::<u32>() as u64;
        let start = rng.gen_range(0u64..10_000);
        let mut m = MemoryHierarchy::default();
        m.load(addr, start, start, false); // install
        let done = m.load(addr, start + 500, start + 500, false);
        assert!(done >= start + 500);
        assert_eq!(done, start + 500 + 6, "warm hit must cost 6 cycles");
    }
}
