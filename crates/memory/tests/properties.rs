//! Property-based tests over the memory subsystem invariants.

use proptest::prelude::*;

use heterowire_memory::lsq::{LoadStatus, LoadStoreQueue};
use heterowire_memory::pipeline::{
    accelerated_hit_completion, baseline_hit_completion, CachePipelineParams,
};
use heterowire_memory::{Cache, MemoryHierarchy, Tlb};

proptest! {
    /// Cache inclusion of the last access: the line just accessed always
    /// probes as present.
    #[test]
    fn most_recent_line_is_resident(addrs in proptest::collection::vec(any::<u32>(), 1..200)) {
        let mut c = Cache::new(4 * 1024, 2, 64);
        for a in addrs {
            let a = a as u64;
            c.access(a);
            prop_assert!(c.probe(a), "just-accessed {a:#x} missing");
        }
    }

    /// A working set no larger than one way's capacity per set never
    /// misses after the first pass, for any alignment.
    #[test]
    fn small_working_sets_fit(base in 0u64..(1 << 30)) {
        let base = base & !63;
        let mut c = Cache::new(32 * 1024, 4, 64);
        let lines: Vec<u64> = (0..64).map(|i| base + i * 64).collect();
        for &a in &lines {
            c.access(a);
        }
        for &a in &lines {
            prop_assert!(c.access(a), "{a:#x} missed on second pass");
        }
    }

    /// LSQ soundness: `PartialReady` is only reported when the full
    /// addresses actually have no conflict (no false *negatives* in the
    /// partial filter: a partial mismatch must imply a word mismatch).
    #[test]
    fn partial_filter_is_sound(
        saddr in any::<u32>(),
        laddr in any::<u32>(),
        bits in 1u32..16,
    ) {
        let (saddr, laddr) = ((saddr as u64) & !7, (laddr as u64) & !7);
        let mut lsq = LoadStoreQueue::new(bits);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_partial(1, saddr, 0);
        lsq.arrive_partial(2, laddr, 0);
        let early = lsq.load_status(2, 0, true);
        lsq.arrive_full(1, saddr, 1);
        lsq.arrive_full(2, laddr, 1);
        let fin = lsq.load_status(2, 1, true);
        match early {
            LoadStatus::PartialReady => {
                // Partial said "no conflict": the full check must agree.
                prop_assert_eq!(fin, LoadStatus::FullReady { forward: false });
                prop_assert_ne!(saddr >> 3, laddr >> 3);
            }
            LoadStatus::PartialConflict => {
                // Partial matched; a real conflict implies equal words.
                if saddr >> 3 == laddr >> 3 {
                    prop_assert_eq!(fin, LoadStatus::FullReady { forward: true });
                }
            }
            other => prop_assert!(false, "unexpected early status {other:?}"),
        }
    }

    /// Full-address disambiguation forwards exactly when the word matches.
    #[test]
    fn forwarding_matches_word_equality(saddr in any::<u32>(), laddr in any::<u32>()) {
        let (saddr, laddr) = (saddr as u64, laddr as u64);
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_full(1, saddr, 0);
        lsq.arrive_full(2, laddr, 0);
        let status = lsq.load_status(2, 0, false);
        prop_assert_eq!(
            status,
            LoadStatus::FullReady { forward: saddr >> 3 == laddr >> 3 }
        );
    }

    /// The accelerated pipeline never loses more than the tag-compare
    /// cycle, and wins at most the RAM latency.
    #[test]
    fn acceleration_is_bounded(head_start in 0u64..32, ms in 0u64..1000) {
        let p = CachePipelineParams::l1_table1();
        let ram_start = ms.saturating_sub(head_start);
        let fast = accelerated_hit_completion(&p, ram_start, ms);
        let slow = baseline_hit_completion(&p, ms);
        let benefit = slow as i64 - fast as i64;
        prop_assert!(benefit >= -(p.tag_compare as i64));
        prop_assert!(benefit <= p.ram_latency as i64);
    }

    /// TLB reach: pages in a working set no larger than the TLB always hit
    /// after warmup.
    #[test]
    fn tlb_reach(base_page in 0u64..(1 << 20)) {
        let mut tlb = Tlb::table1();
        let pages: Vec<u64> = (0..64).map(|i| (base_page + i) * 8192).collect();
        for &p in &pages {
            tlb.access(p);
        }
        for &p in &pages {
            prop_assert!(tlb.access(p), "page {p:#x} missed after warmup");
        }
    }

    /// Hierarchy latency sanity: completions never precede their inputs
    /// and warm hits cost exactly the L1 latency.
    #[test]
    fn hierarchy_latency_bounds(addr in any::<u32>(), start in 0u64..10_000) {
        let addr = addr as u64;
        let mut m = MemoryHierarchy::default();
        m.load(addr, start, start, false); // install
        let done = m.load(addr, start + 500, start + 500, false);
        prop_assert!(done >= start + 500);
        prop_assert_eq!(done, start + 500 + 6, "warm hit must cost 6 cycles");
    }
}
