//! The centralized load/store queue with **partial-address disambiguation**.
//!
//! In the baseline pipeline a load may access the cache only after the
//! addresses of all earlier stores are known. The paper's optimization
//! transmits the least-significant address bits on low-latency L-Wires
//! ahead of the full address; the LSQ compares those partial addresses and,
//! if the load matches no earlier store, lets the cache RAM access begin
//! before the full address arrives. A partial match that the full addresses
//! later disprove is a *false dependence* — the paper measures fewer than 9%
//! of loads suffering one with 8 LS bits.

use std::collections::VecDeque;

use heterowire_telemetry::{NullProbe, Probe};

/// Disambiguation state of a load at a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadStatus {
    /// The load's own address (partial or full) has not arrived yet.
    WaitOwnAddress,
    /// Some earlier store's address has not arrived yet.
    WaitStoreAddress,
    /// Partial comparison passed: the cache RAM access may begin, but the
    /// full address is still in flight.
    PartialReady,
    /// Fully disambiguated and free of conflicts; `forward` is true when an
    /// earlier store to the same word supplies the data.
    FullReady {
        /// Data comes from an in-flight store rather than the cache.
        forward: bool,
    },
    /// The partial address matched an earlier store; the load must wait for
    /// full addresses to resolve the (possibly false) dependence.
    PartialConflict,
}

/// LSQ statistics, including the false-dependence counters of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LsqStats {
    /// Loads inserted.
    pub loads: u64,
    /// Stores inserted.
    pub stores: u64,
    /// Loads whose partial comparison matched an earlier store.
    pub partial_matches: u64,
    /// Partial matches that full addresses later disproved.
    pub false_dependences: u64,
    /// Loads forwarded from an earlier in-flight store.
    pub forwards: u64,
}

impl LsqStats {
    /// Fraction of loads that hit a false dependence (paper: < 9% at 8 LS
    /// bits).
    pub fn false_dependence_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.false_dependences as f64 / self.loads as f64
        }
    }
}

/// Stable handle to an LSQ entry, returned by [`LoadStoreQueue::insert`].
///
/// Entries enter at the back and leave from the front, so a handle resolves
/// to its entry with one subtraction (no binary search); after a mid-queue
/// [`LoadStoreQueue::remove`] the resolution falls back to a search, so
/// handles stay valid either way. A handle whose entry has left the queue
/// simply resolves to nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsqRef(u64);

#[derive(Debug, Clone, Copy)]
struct LsqEntry {
    seq: u64,
    /// Global insertion index (consecutive while no mid-queue removal has
    /// punched a hole; see [`LsqRef`]).
    gid: u64,
    is_store: bool,
    /// Word-granular partial address and its arrival cycle.
    partial: Option<(u64, u64)>,
    /// Word-granular full address and its arrival cycle.
    full: Option<(u64, u64)>,
    /// Set once a load's partial match has been classified (avoid double
    /// counting in the stats).
    partial_match_counted: bool,
    /// Loads: resume point (a gid) of the incremental full-address scan —
    /// every older store below this gid has had its full address verified
    /// known (knownness is monotonic: stamps never unset and older entries
    /// never appear, so verified prefixes stay verified).
    full_pos: u64,
    /// Loads: the youngest older store whose full address matched, among
    /// the scanned prefix. Still forwarding only while it has not retired
    /// (retirement is strictly in order from the queue front).
    full_match: Option<u64>,
    /// Loads: resume point (a gid) of the incremental partial-address scan.
    part_pos: u64,
    /// Loads: the youngest older store whose partial address matched.
    part_match: Option<u64>,
}

/// The centralized load/store queue.
///
/// Entries are inserted in program order at dispatch; addresses arrive later
/// (partial bits possibly earlier than full addresses); loads query their
/// disambiguation status each cycle.
#[derive(Debug, Clone)]
pub struct LoadStoreQueue {
    entries: VecDeque<LsqEntry>,
    ls_bits: u32,
    stats: LsqStats,
    /// Largest arrival stamp ever recorded — `next_event_cycle`'s O(1)
    /// fast path (stamps in the past can no longer change any status).
    latest_stamp: u64,
    /// Next global insertion index to hand out (see [`LsqRef`]).
    next_gid: u64,
    /// True while a mid-queue [`LoadStoreQueue::remove`] has left the
    /// present gids non-consecutive, disabling the O(1) gid arithmetic
    /// (cleared once the queue drains empty).
    holes: bool,
}

/// Byte address → word (8-byte) granule, the conflict-detection granularity.
fn word_of(addr: u64) -> u64 {
    addr >> 3
}

impl LoadStoreQueue {
    /// Creates an LSQ comparing `ls_bits` least-significant bits of the
    /// *word* address in the partial check (the paper's default is 8).
    ///
    /// # Panics
    ///
    /// Panics if `ls_bits` is 0 or exceeds 32.
    pub fn new(ls_bits: u32) -> Self {
        assert!((1..=32).contains(&ls_bits), "ls_bits must be in 1..=32");
        LoadStoreQueue {
            entries: VecDeque::new(),
            ls_bits,
            stats: LsqStats::default(),
            latest_stamp: 0,
            next_gid: 0,
            holes: false,
        }
    }

    fn partial_of(&self, addr: u64) -> u64 {
        word_of(addr) & ((1u64 << self.ls_bits) - 1)
    }

    /// Inserts a memory op at dispatch and returns a stable handle that
    /// resolves the entry in O(1) (callers may ignore it and keep using
    /// the seq-based methods). `seq` values must be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `seq` does not exceed the youngest entry's.
    pub fn insert(&mut self, seq: u64, is_store: bool) -> LsqRef {
        if let Some(back) = self.entries.back() {
            assert!(seq > back.seq, "LSQ inserts must be in program order");
        } else {
            // Any hole left by a mid-queue removal has drained away.
            self.holes = false;
        }
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let gid = self.next_gid;
        self.next_gid += 1;
        self.entries.push_back(LsqEntry {
            seq,
            gid,
            is_store,
            partial: None,
            full: None,
            partial_match_counted: false,
            full_pos: 0,
            full_match: None,
            part_pos: 0,
            part_match: None,
        });
        LsqRef(gid)
    }

    fn find(&self, seq: u64) -> Option<usize> {
        // Entries are seq-sorted; binary search.
        self.entries.binary_search_by(|e| e.seq.cmp(&seq)).ok()
    }

    /// Resolves a handle to the entry's current index: one subtraction
    /// while gids are consecutive (the FIFO steady state), binary search
    /// on the (still sorted) gids after a mid-queue removal. `None` once
    /// the entry has left the queue.
    fn find_ref(&self, r: LsqRef) -> Option<usize> {
        let front_gid = self.entries.front()?.gid;
        let idx = r.0.checked_sub(front_gid)? as usize;
        if !self.holes {
            return (idx < self.entries.len()).then_some(idx);
        }
        self.entries.binary_search_by(|e| e.gid.cmp(&r.0)).ok()
    }

    /// Maps a resume-point gid to the index scanning should restart from:
    /// the entry itself if still present, index 0 if it (and therefore
    /// everything older) has retired.
    fn resume_index(&self, pos: u64) -> usize {
        let front_gid = self.entries.front().map_or(0, |e| e.gid);
        if !self.holes {
            return pos.saturating_sub(front_gid) as usize;
        }
        self.entries.partition_point(|e| e.gid < pos)
    }

    /// Records the arrival of the LS bits of `seq`'s address at `cycle`.
    pub fn arrive_partial(&mut self, seq: u64, addr: u64, cycle: u64) {
        let i = self.find(seq);
        self.arrive_partial_at(i, addr, cycle);
    }

    /// [`LoadStoreQueue::arrive_partial`] resolving the entry through its
    /// handle instead of a seq search. A no-op (beyond the stamp) once the
    /// entry has left the queue, exactly like an unknown seq.
    pub fn arrive_partial_ref(&mut self, r: LsqRef, addr: u64, cycle: u64) {
        let i = self.find_ref(r);
        self.arrive_partial_at(i, addr, cycle);
    }

    fn arrive_partial_at(&mut self, i: Option<usize>, addr: u64, cycle: u64) {
        let p = self.partial_of(addr);
        self.latest_stamp = self.latest_stamp.max(cycle);
        if let Some(i) = i {
            let e = &mut self.entries[i];
            if e.partial.is_none() {
                e.partial = Some((p, cycle));
            }
        }
    }

    /// Records the arrival of `seq`'s full address at `cycle`. Also fills
    /// the partial bits if they were never sent separately.
    pub fn arrive_full(&mut self, seq: u64, addr: u64, cycle: u64) {
        let i = self.find(seq);
        self.arrive_full_at(i, addr, cycle);
    }

    /// [`LoadStoreQueue::arrive_full`] resolving the entry through its
    /// handle instead of a seq search.
    pub fn arrive_full_ref(&mut self, r: LsqRef, addr: u64, cycle: u64) {
        let i = self.find_ref(r);
        self.arrive_full_at(i, addr, cycle);
    }

    fn arrive_full_at(&mut self, i: Option<usize>, addr: u64, cycle: u64) {
        let p = self.partial_of(addr);
        let w = word_of(addr);
        self.latest_stamp = self.latest_stamp.max(cycle);
        if let Some(i) = i {
            let e = &mut self.entries[i];
            if e.full.is_none() {
                e.full = Some((w, cycle));
            }
            if e.partial.is_none() {
                e.partial = Some((p, cycle));
            }
        }
    }

    /// Disambiguation status of the load `seq` as of `cycle`.
    ///
    /// With `use_partial` false the LSQ behaves like the baseline: loads
    /// wait for full addresses of all earlier stores.
    ///
    /// Each poll resumes the older-store scan where the previous one
    /// stopped (the first store with an unknown address), so the total
    /// scan work per load is linear in its older entries rather than
    /// linear per poll. A match found earlier forwards only while the
    /// matching store is still in the queue — retirement removes entries
    /// strictly from the front, so "youngest match is at or past the
    /// front" is exactly "some present older store matches".
    ///
    /// # Panics
    ///
    /// Panics if `seq` is not a load in the queue.
    pub fn load_status(&mut self, seq: u64, cycle: u64, use_partial: bool) -> LoadStatus {
        self.load_status_probed(seq, cycle, use_partial, &mut NullProbe)
    }

    /// [`LoadStoreQueue::load_status`] with telemetry: emits
    /// [`Probe::lsq_full_ready`] when a load fully disambiguates and
    /// [`Probe::lsq_partial_conflict`] when its partial address first
    /// matches an earlier store. With [`NullProbe`] this monomorphizes to
    /// exactly `load_status`.
    pub fn load_status_probed<P: Probe>(
        &mut self,
        seq: u64,
        cycle: u64,
        use_partial: bool,
        probe: &mut P,
    ) -> LoadStatus {
        let idx = self.find(seq).expect("load must be in the LSQ");
        self.load_status_at_probed(idx, cycle, use_partial, probe)
    }

    /// [`LoadStoreQueue::load_status`] resolving the load through its
    /// handle instead of a seq search.
    ///
    /// # Panics
    ///
    /// Panics if the handle's entry is not a load still in the queue.
    pub fn load_status_ref(&mut self, r: LsqRef, cycle: u64, use_partial: bool) -> LoadStatus {
        self.load_status_ref_probed(r, cycle, use_partial, &mut NullProbe)
    }

    /// [`LoadStoreQueue::load_status_ref`] with telemetry; see
    /// [`LoadStoreQueue::load_status_probed`].
    ///
    /// # Panics
    ///
    /// Panics if the handle's entry is not a load still in the queue.
    pub fn load_status_ref_probed<P: Probe>(
        &mut self,
        r: LsqRef,
        cycle: u64,
        use_partial: bool,
        probe: &mut P,
    ) -> LoadStatus {
        let idx = self.find_ref(r).expect("load must be in the LSQ");
        self.load_status_at_probed(idx, cycle, use_partial, probe)
    }

    #[inline(never)]
    fn load_status_at_probed<P: Probe>(
        &mut self,
        idx: usize,
        cycle: u64,
        use_partial: bool,
        probe: &mut P,
    ) -> LoadStatus {
        let seq = self.entries[idx].seq;
        assert!(!self.entries[idx].is_store, "entry {seq} is a store");

        let own_gid = self.entries[idx].gid;
        let own_full = self.entries[idx].full.filter(|&(_, t)| t <= cycle);
        let own_partial = self.entries[idx].partial.filter(|&(_, t)| t <= cycle);
        let front_seq = self.entries.front().expect("load present").seq;

        // Full disambiguation first: if every earlier store's full address
        // is known and the load's own full address is known, we can give a
        // definitive answer.
        if let Some((w, _)) = own_full {
            let mut pos = self.entries[idx].full_pos;
            let mut match_seq = self.entries[idx].full_match;
            let mut all_known = true;
            let start = self.resume_index(pos);
            for e in self.entries.range(start..idx) {
                if !e.is_store {
                    continue;
                }
                match e.full.filter(|&(_, t)| t <= cycle) {
                    Some((sw, _)) => {
                        if sw == w {
                            match_seq = Some(e.seq);
                        }
                    }
                    None => {
                        all_known = false;
                        pos = e.gid;
                        break;
                    }
                }
            }
            if all_known {
                pos = own_gid;
            }
            {
                let e = &mut self.entries[idx];
                e.full_pos = pos;
                e.full_match = match_seq;
            }
            if all_known {
                let forward = match_seq.is_some_and(|m| m >= front_seq);
                // Classify a previously flagged partial conflict.
                let e = &mut self.entries[idx];
                if e.partial_match_counted && !forward {
                    e.partial_match_counted = false;
                    self.stats.false_dependences += 1;
                } else if e.partial_match_counted && forward {
                    e.partial_match_counted = false;
                }
                if forward {
                    self.stats.forwards += 1;
                }
                if P::ENABLED {
                    probe.lsq_full_ready(cycle, seq, forward);
                }
                return LoadStatus::FullReady { forward };
            }
        }

        if !use_partial {
            return if own_full.is_none() {
                LoadStatus::WaitOwnAddress
            } else {
                LoadStatus::WaitStoreAddress
            };
        }

        // Partial path.
        let Some((p, _)) = own_partial else {
            return LoadStatus::WaitOwnAddress;
        };
        let mut pos = self.entries[idx].part_pos;
        let mut match_seq = self.entries[idx].part_match;
        let mut any_unknown = false;
        let start = self.resume_index(pos);
        for e in self.entries.range(start..idx) {
            if !e.is_store {
                continue;
            }
            match e.partial.filter(|&(_, t)| t <= cycle) {
                Some((sp, _)) => {
                    if sp == p {
                        match_seq = Some(e.seq);
                    }
                }
                None => {
                    any_unknown = true;
                    pos = e.gid;
                    break;
                }
            }
        }
        if !any_unknown {
            pos = own_gid;
        }
        {
            let e = &mut self.entries[idx];
            e.part_pos = pos;
            e.part_match = match_seq;
        }
        if any_unknown {
            return LoadStatus::WaitStoreAddress;
        }
        if match_seq.is_some_and(|m| m >= front_seq) {
            let e = &mut self.entries[idx];
            if !e.partial_match_counted {
                e.partial_match_counted = true;
                self.stats.partial_matches += 1;
                if P::ENABLED {
                    probe.lsq_partial_conflict(cycle, seq);
                }
            }
            return LoadStatus::PartialConflict;
        }
        LoadStatus::PartialReady
    }

    /// The earliest future cycle at which a recorded address stamp becomes
    /// visible to `load_status`, or `None` when every stamp is already in
    /// the past. Arrival stamps are recorded at delivery time in practice,
    /// so this is a robustness guard for the core's idle-cycle skipper
    /// with an O(1) common case.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if self.latest_stamp <= now {
            return None;
        }
        self.entries
            .iter()
            .flat_map(|e| [e.partial, e.full])
            .flatten()
            .filter_map(|(_, t)| (t > now).then_some(t))
            .min()
    }

    /// Removes all entries with `seq <= bound` (commit).
    pub fn retire_through(&mut self, bound: u64) {
        while let Some(front) = self.entries.front() {
            if front.seq <= bound {
                self.entries.pop_front();
            } else {
                break;
            }
        }
    }

    /// Removes a single entry (squash or early completion).
    ///
    /// Mid-queue removal invalidates the monotonicity assumption behind
    /// the incremental scan caches (a store may vanish from a range a
    /// load already scanned), so every load's cache is reset.
    pub fn remove(&mut self, seq: u64) {
        if let Some(i) = self.find(seq) {
            self.entries.remove(i);
            // Present gids may now be non-consecutive; handle and resume
            // lookups fall back to binary search until the queue drains.
            self.holes = true;
            for e in self.entries.iter_mut().filter(|e| !e.is_store) {
                e.full_pos = 0;
                e.full_match = None;
                e.part_pos = 0;
                e.part_match = None;
            }
        }
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> LsqStats {
        self.stats
    }
}

impl Default for LoadStoreQueue {
    fn default() -> Self {
        Self::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_with_no_earlier_stores_is_ready_on_full_arrival() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, false);
        assert_eq!(lsq.load_status(1, 0, true), LoadStatus::WaitOwnAddress);
        lsq.arrive_full(1, 0x1000, 3);
        assert_eq!(lsq.load_status(1, 2, true), LoadStatus::WaitOwnAddress);
        assert_eq!(
            lsq.load_status(1, 3, true),
            LoadStatus::FullReady { forward: false }
        );
    }

    #[test]
    fn partial_mismatch_allows_early_prefetch() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true); // store
        lsq.insert(2, false); // load
        lsq.arrive_partial(1, 0x1000, 1);
        lsq.arrive_partial(2, 0x2008, 1);
        // Partials differ (word 0x200 vs 0x401 -> LS bits differ), so the
        // load may start its RAM access before any full address arrives.
        assert_eq!(lsq.load_status(2, 1, true), LoadStatus::PartialReady);
        // Baseline mode still waits for the store's full address.
        assert_eq!(lsq.load_status(2, 1, false), LoadStatus::WaitOwnAddress);
    }

    #[test]
    fn false_dependence_is_detected_and_counted() {
        let mut lsq = LoadStoreQueue::new(4);
        lsq.insert(1, true);
        lsq.insert(2, false);
        // Same 4 LS word bits, different full word: 0x1000>>3=0x200,
        // 0x1080>>3=0x210; (0x200 & 0xF) == (0x210 & 0xF) == 0.
        lsq.arrive_partial(1, 0x1000, 1);
        lsq.arrive_partial(2, 0x1080, 1);
        assert_eq!(lsq.load_status(2, 1, true), LoadStatus::PartialConflict);
        lsq.arrive_full(1, 0x1000, 4);
        lsq.arrive_full(2, 0x1080, 4);
        assert_eq!(
            lsq.load_status(2, 4, true),
            LoadStatus::FullReady { forward: false }
        );
        let s = lsq.stats();
        assert_eq!(s.partial_matches, 1);
        assert_eq!(s.false_dependences, 1);
        assert!((s.false_dependence_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn true_dependence_forwards() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_full(1, 0x3000, 2);
        lsq.arrive_full(2, 0x3000, 2);
        assert_eq!(
            lsq.load_status(2, 2, true),
            LoadStatus::FullReady { forward: true }
        );
        assert_eq!(lsq.stats().forwards, 1);
        assert_eq!(lsq.stats().false_dependences, 0);
    }

    #[test]
    fn unknown_store_address_blocks() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.arrive_partial(2, 0x4000, 1);
        lsq.arrive_full(2, 0x4000, 1);
        // Store address entirely unknown: blocked in both modes.
        assert_eq!(lsq.load_status(2, 1, true), LoadStatus::WaitStoreAddress);
        assert_eq!(lsq.load_status(2, 1, false), LoadStatus::WaitStoreAddress);
        // Store partial arrives, differs -> partial path unblocks first.
        lsq.arrive_partial(1, 0x5008, 2);
        assert_eq!(lsq.load_status(2, 2, true), LoadStatus::PartialReady);
        assert_eq!(lsq.load_status(2, 2, false), LoadStatus::WaitStoreAddress);
    }

    #[test]
    fn retire_drops_old_entries() {
        let mut lsq = LoadStoreQueue::new(8);
        for s in 1..=5 {
            lsq.insert(s, s % 2 == 0);
        }
        lsq.retire_through(3);
        assert_eq!(lsq.len(), 2);
        lsq.remove(5);
        assert_eq!(lsq.len(), 1);
    }

    #[test]
    fn later_stores_do_not_affect_loads() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, false); // load
        lsq.insert(2, true); // younger store
        lsq.arrive_full(1, 0x6000, 1);
        assert_eq!(
            lsq.load_status(1, 1, true),
            LoadStatus::FullReady { forward: false }
        );
    }

    #[test]
    fn ref_api_matches_seq_api() {
        // Drive two clones of the same scenario, one through the seq-based
        // calls and one through the handles; every status must agree.
        let mut by_seq = LoadStoreQueue::new(8);
        let mut by_ref = LoadStoreQueue::new(8);
        let r1 = by_ref.insert(10, true);
        let r2 = by_ref.insert(11, false);
        by_seq.insert(10, true);
        by_seq.insert(11, false);
        by_seq.arrive_partial(11, 0x2000, 1);
        by_ref.arrive_partial_ref(r2, 0x2000, 1);
        assert_eq!(
            by_seq.load_status(11, 1, true),
            by_ref.load_status_ref(r2, 1, true)
        );
        by_seq.arrive_partial(10, 0x2000, 2);
        by_ref.arrive_partial_ref(r1, 0x2000, 2);
        assert_eq!(
            by_ref.load_status_ref(r2, 2, true),
            LoadStatus::PartialConflict
        );
        assert_eq!(by_seq.load_status(11, 2, true), LoadStatus::PartialConflict);
        by_seq.arrive_full(10, 0x3000, 3);
        by_seq.arrive_full(11, 0x2000, 3);
        by_ref.arrive_full_ref(r1, 0x3000, 3);
        by_ref.arrive_full_ref(r2, 0x2000, 3);
        assert_eq!(
            by_seq.load_status(11, 3, true),
            by_ref.load_status_ref(r2, 3, true)
        );
        assert_eq!(by_seq.stats(), by_ref.stats());
    }

    #[test]
    fn stale_handle_is_a_noop_arrival() {
        let mut lsq = LoadStoreQueue::new(8);
        let r = lsq.insert(1, true);
        lsq.insert(2, false);
        lsq.retire_through(1);
        // The store has retired; its handle must resolve to nothing rather
        // than aliasing the load now at the front.
        lsq.arrive_full_ref(r, 0x1000, 5);
        assert_eq!(lsq.load_status(2, 5, true), LoadStatus::WaitOwnAddress);
        // No entry was written, so no future stamp exists (identical to the
        // seq API's behavior on an unknown seq).
        assert_eq!(lsq.next_event_cycle(4), None);
    }

    #[test]
    fn handles_survive_mid_queue_removal() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(1, true);
        lsq.insert(2, true);
        let r3 = lsq.insert(3, false);
        // Punch a hole: gids {0, 2} are no longer consecutive.
        lsq.remove(2);
        lsq.arrive_full(1, 0x1000, 1);
        lsq.arrive_full_ref(r3, 0x1000, 1);
        assert_eq!(
            lsq.load_status_ref(r3, 1, true),
            LoadStatus::FullReady { forward: true }
        );
        // Draining the queue re-arms the O(1) gid arithmetic.
        lsq.retire_through(3);
        let r4 = lsq.insert(4, false);
        lsq.arrive_full_ref(r4, 0x2000, 2);
        assert_eq!(
            lsq.load_status_ref(r4, 2, true),
            LoadStatus::FullReady { forward: false }
        );
    }

    #[test]
    #[should_panic(expected = "program order")]
    fn out_of_order_insert_panics() {
        let mut lsq = LoadStoreQueue::new(8);
        lsq.insert(5, false);
        lsq.insert(3, false);
    }

    #[test]
    fn more_ls_bits_reduce_false_matches() {
        // Statistical check: random store/load pairs with distinct words;
        // the 4-bit LSQ must flag at least as many partial matches as the
        // 12-bit one.
        let count_matches = |bits: u32| {
            let mut lsq = LoadStoreQueue::new(bits);
            let mut seq = 0;
            let mut matches = 0;
            let mix = |x: u64| {
                // splitmix64-style avalanche so low bits are well mixed.
                let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for i in 0..2000u64 {
                let saddr = 0x1_0000 + (mix(i) % 65536) * 8;
                let laddr = 0x1_0000 + (mix(i + 1_000_000) % 65536) * 8;
                if saddr == laddr {
                    continue;
                }
                lsq.insert(seq, true);
                lsq.insert(seq + 1, false);
                lsq.arrive_partial(seq, saddr, 0);
                lsq.arrive_partial(seq + 1, laddr, 0);
                if lsq.load_status(seq + 1, 0, true) == LoadStatus::PartialConflict {
                    matches += 1;
                }
                lsq.retire_through(seq + 1);
                seq += 2;
            }
            matches
        };
        let few_bits = count_matches(4);
        let many_bits = count_matches(12);
        assert!(
            few_bits > many_bits,
            "4-bit {few_bits} vs 12-bit {many_bits}"
        );
    }
}
