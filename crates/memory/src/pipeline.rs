//! Pure timing arithmetic for the baseline and accelerated cache pipelines.
//!
//! **Baseline:** the cache RAM access starts once the *full* effective
//! address has arrived and the LSQ has disambiguated; data is ready
//! `l1_latency` cycles later (TLB and tag compare are folded into that
//! latency, as in SimpleScalar).
//!
//! **Accelerated (paper §4):** the LS address bits arrive early on L-Wires
//! and index the cache RAM and TLB banks immediately; when the MS bits
//! arrive on B-Wires, one extra cycle selects the right TLB translation and
//! performs the tag comparison. If the RAM access already finished, the
//! load's effective latency collapses to `ms_arrival + 1`.

/// Timing parameters of one cache level's access pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePipelineParams {
    /// RAM access latency of the cache (6 cycles for the Table-1 L1).
    pub ram_latency: u64,
    /// Extra cycle(s) for the late TLB select + tag compare in the
    /// accelerated pipeline.
    pub tag_compare: u64,
}

impl CachePipelineParams {
    /// Table-1 L1 D-cache: 6-cycle RAM, 1-cycle late tag compare.
    pub fn l1_table1() -> Self {
        CachePipelineParams {
            ram_latency: 6,
            tag_compare: 1,
        }
    }
}

/// Completion cycle of a **baseline** load: RAM access starts at
/// `start` (never before the full address is present) and data is ready
/// after the full RAM latency.
pub fn baseline_hit_completion(params: &CachePipelineParams, start: u64) -> u64 {
    start + params.ram_latency
}

/// Completion cycle of an **accelerated** load hit: the RAM access started
/// at `ram_start` (LS bits in hand), the full address arrived at
/// `ms_arrival`, and the late tag compare takes `tag_compare` cycles.
pub fn accelerated_hit_completion(
    params: &CachePipelineParams,
    ram_start: u64,
    ms_arrival: u64,
) -> u64 {
    (ram_start + params.ram_latency).max(ms_arrival) + params.tag_compare
}

/// Cycles the accelerated pipeline saves over the baseline for a hit whose
/// LS bits arrived at `ram_start` and whose full address arrived at
/// `ms_arrival` (both relative to the same clock).
pub fn acceleration_benefit(params: &CachePipelineParams, ram_start: u64, ms_arrival: u64) -> i64 {
    let base = baseline_hit_completion(params, ms_arrival);
    let fast = accelerated_hit_completion(params, ram_start, ms_arrival);
    base as i64 - fast as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: CachePipelineParams = CachePipelineParams {
        ram_latency: 6,
        tag_compare: 1,
    };

    #[test]
    fn baseline_is_start_plus_latency() {
        assert_eq!(baseline_hit_completion(&P, 10), 16);
    }

    #[test]
    fn fully_hidden_ram_costs_one_extra_cycle_after_ms_bits() {
        // LS bits at 0, RAM done at 6; MS bits at 8 -> data at 9.
        assert_eq!(accelerated_hit_completion(&P, 0, 8), 9);
        // Baseline with full address at 8 would finish at 14: 5 cycles saved.
        assert_eq!(acceleration_benefit(&P, 0, 8), 5);
    }

    #[test]
    fn partially_hidden_ram_still_helps() {
        // LS at 4, RAM done at 10; MS at 6 -> data at 11 vs baseline 12.
        assert_eq!(accelerated_hit_completion(&P, 4, 6), 11);
        assert_eq!(acceleration_benefit(&P, 4, 6), 1);
    }

    #[test]
    fn no_head_start_means_the_tag_cycle_is_pure_overhead() {
        // LS and MS arrive together: accelerated = baseline + tag_compare.
        assert_eq!(accelerated_hit_completion(&P, 6, 6), 13);
        assert_eq!(acceleration_benefit(&P, 6, 6), -1);
    }

    #[test]
    fn benefit_is_monotone_in_head_start() {
        let mut prev = i64::MIN;
        for head_start in 0..10 {
            let b = acceleration_benefit(&P, 10 - head_start, 10);
            assert!(b >= prev);
            prev = b;
        }
    }
}
