//! Generic set-associative cache with true-LRU replacement.
//!
//! Used for the 32 KB 2-way L1 I-cache, the 32 KB 4-way L1 D-cache and the
//! 8 MB 8-way unified L2 (Table 1). The cache tracks hits/misses only —
//! latency and bank occupancy are the hierarchy's job.

/// A set-associative cache model (tags only; no data storage).
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    /// `tags[set]` ordered most-recently-used first.
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways`-way associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, non-power-of-two
    /// line or set counts, or `size < ways * line`).
    pub fn new(size_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0, "associativity must be positive");
        assert!(
            size_bytes >= ways as u64 * line_bytes,
            "cache smaller than one set"
        );
        let sets = size_bytes / (ways as u64 * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::new(); sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Table-1 L1 D-cache: 32 KB, 4-way, 64 B lines.
    pub fn l1d_table1() -> Self {
        Self::new(32 * 1024, 4, 64)
    }

    /// Table-1 L1 I-cache: 32 KB, 2-way, 64 B lines.
    pub fn l1i_table1() -> Self {
        Self::new(32 * 1024, 2, 64)
    }

    /// Table-1 unified L2: 8 MB, 8-way, 128 B lines.
    pub fn l2_table1() -> Self {
        Self::new(8 * 1024 * 1024, 8, 128)
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) & (self.sets - 1)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.sets
    }

    /// Accesses `addr`; returns `true` on hit. Misses install the line
    /// (evicting LRU).
    pub fn access(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.ways {
                ways.pop();
            }
            ways.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Probes `addr` without updating LRU or installing.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.tags[set].contains(&tag)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss rate so far (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x104), "same line");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_within_set() {
        // 2-way, 1 set: three distinct lines thrash.
        let mut c = Cache::new(128, 2, 64);
        assert_eq!(c.sets(), 1);
        c.access(0x000);
        c.access(0x040);
        c.access(0x000); // refresh line 0
        c.access(0x080); // evicts 0x040
        assert!(c.probe(0x000));
        assert!(!c.probe(0x040));
        assert!(c.probe(0x080));
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::l1d_table1();
        // 16 KB working set fits in a 32 KB cache.
        for round in 0..4 {
            for a in (0..16 * 1024).step_by(64) {
                let hit = c.access(a);
                if round > 0 {
                    assert!(hit, "address {a:#x} missed in round {round}");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(1024, 1, 64); // direct-mapped 1 KB
        for _ in 0..3 {
            // 2 KB working set, direct-mapped: every access conflicts.
            for a in (0..2048).step_by(64) {
                c.access(a);
            }
        }
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn probe_does_not_install() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.probe(0x40));
        assert!(!c.access(0x40));
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(Cache::l1d_table1().ways(), 4);
        assert_eq!(Cache::l1i_table1().ways(), 2);
        assert_eq!(Cache::l2_table1().ways(), 8);
        // 32KB / (4 * 64) = 128 sets -> 7 index bits + 6 offset bits.
        assert_eq!(Cache::l1d_table1().sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(1024, 2, 48);
    }
}
