#![warn(missing_docs)]
//! # heterowire-memory
//!
//! The memory subsystem of the `heterowire` clustered processor: generic
//! set-associative caches ([`cache`]), a set-associative TLB ([`tlb`]), the
//! centralized load/store queue with **partial-address disambiguation**
//! ([`lsq`]), the baseline and L-Wire-accelerated cache access pipelines
//! ([`pipeline`]) and the banked hierarchy gluing them together
//! ([`hierarchy`]).
//!
//! The paper's headline memory technique: the least-significant bits of a
//! load/store address travel on low-latency L-Wires ahead of the full
//! address, enabling (a) early partial disambiguation in the LSQ and
//! (b) cache RAM / TLB bank prefetch, hiding most of the RAM access latency
//! behind the slow wire transfer of the remaining address bits.
//!
//! ```
//! use heterowire_memory::lsq::{LoadStoreQueue, LoadStatus};
//!
//! let mut lsq = LoadStoreQueue::new(8);
//! lsq.insert(1, true);  // store
//! lsq.insert(2, false); // load
//! lsq.arrive_partial(1, 0x1000, 1);
//! lsq.arrive_partial(2, 0x2008, 1);
//! // LS bits differ, so the load may begin its cache access immediately:
//! assert_eq!(lsq.load_status(2, 1, true), LoadStatus::PartialReady);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod lsq;
pub mod pipeline;
pub mod tlb;

pub use cache::Cache;
pub use hierarchy::{MemConfig, MemStats, MemoryHierarchy};
pub use lsq::{LoadStatus, LoadStoreQueue, LsqRef, LsqStats};
pub use pipeline::CachePipelineParams;
pub use tlb::Tlb;
