//! The memory hierarchy: banked L1 D-cache, unified L2, D-TLB and DRAM,
//! with Table-1 latencies and 4-way word interleaving.

use crate::cache::Cache;
use crate::pipeline::{accelerated_hit_completion, baseline_hit_completion, CachePipelineParams};
use crate::tlb::Tlb;

/// Latency and banking parameters of the hierarchy (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 D-cache pipeline parameters (6-cycle RAM).
    pub l1: CachePipelineParams,
    /// L2 access latency (30 cycles).
    pub l2_latency: u64,
    /// Main-memory latency for the first block (300 cycles).
    pub mem_latency: u64,
    /// Number of word-interleaved L1 banks (4).
    pub banks: usize,
    /// TLB miss handling penalty (hardware walk).
    pub tlb_miss_penalty: u64,
    /// Critical-word-first refills over L-Wires (paper §5.3: "such wires
    /// can be employed to fetch critical words from the L2 or L3"): the
    /// requested word bypasses the line-transfer tail of a refill.
    pub critical_word_first: bool,
    /// Cycles of an L2 refill attributable to streaming the rest of the
    /// line (saved by critical-word-first).
    pub l2_line_tail: u64,
    /// Cycles of a DRAM refill attributable to streaming the rest of the
    /// line.
    pub mem_line_tail: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1: CachePipelineParams::l1_table1(),
            l2_latency: 30,
            mem_latency: 300,
            banks: 4,
            tlb_miss_penalty: 30,
            critical_word_first: false,
            l2_line_tail: 4,
            mem_line_tail: 8,
        }
    }
}

/// Hierarchy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Load accesses.
    pub loads: u64,
    /// Store accesses.
    pub stores: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 misses (went to DRAM).
    pub l2_misses: u64,
    /// TLB misses.
    pub tlb_misses: u64,
    /// Accesses delayed by a bank conflict.
    pub bank_conflicts: u64,
}

/// The memory hierarchy model.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemConfig,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    /// Next free cycle per L1 bank (banks accept one new access per cycle).
    bank_free: Vec<u64>,
    stats: MemStats,
}

impl MemoryHierarchy {
    /// Creates a Table-1 hierarchy.
    pub fn new(config: MemConfig) -> Self {
        let banks = config.banks.max(1);
        MemoryHierarchy {
            config,
            l1d: Cache::l1d_table1(),
            l2: Cache::l2_table1(),
            dtlb: Tlb::table1(),
            bank_free: vec![0; banks],
            stats: MemStats::default(),
        }
    }

    fn bank_of(&self, addr: u64) -> usize {
        ((addr >> 3) as usize) % self.bank_free.len()
    }

    /// Claims the L1 bank for `addr` no earlier than `start`; returns the
    /// cycle the access actually begins.
    fn claim_bank(&mut self, addr: u64, start: u64) -> u64 {
        let b = self.bank_of(addr);
        let begin = start.max(self.bank_free[b]);
        if begin > start {
            self.stats.bank_conflicts += 1;
        }
        self.bank_free[b] = begin + 1; // fully pipelined banks
        begin
    }

    /// Performs a load.
    ///
    /// * `ram_start` — cycle at which the cache RAM index is available
    ///   (partial-address arrival in the accelerated pipeline).
    /// * `full_arrival` — cycle at which the full address is available.
    /// * `accelerated` — whether the L-Wire pipeline is in effect.
    ///
    /// Returns the cycle the data is ready at the cache, before the return
    /// network transfer.
    pub fn load(&mut self, addr: u64, ram_start: u64, full_arrival: u64, accelerated: bool) -> u64 {
        self.stats.loads += 1;
        let begin = if accelerated {
            self.claim_bank(addr, ram_start)
        } else {
            self.claim_bank(addr, full_arrival)
        };

        // TLB lookup: in the accelerated pipeline the partial VPN bits
        // prefetch candidate translations, so a hit costs nothing extra in
        // either mode; a miss stalls the tag compare by the walk penalty.
        let tlb_hit = self.dtlb.access(addr);
        let tag_time = if tlb_hit {
            full_arrival
        } else {
            self.stats.tlb_misses += 1;
            full_arrival + self.config.tlb_miss_penalty
        };

        let l1_hit = self.l1d.access(addr);
        let hit_done = if accelerated {
            // The controller falls back to the conventional pipeline when
            // the full address arrives before the prefetched RAM access
            // pays off, so acceleration never loses cycles.
            accelerated_hit_completion(&self.config.l1, begin, tag_time)
                .min(baseline_hit_completion(&self.config.l1, tag_time))
        } else {
            baseline_hit_completion(&self.config.l1, begin.max(tag_time))
        };
        if l1_hit {
            return hit_done;
        }

        // L1 miss is detected at tag-compare time; the line then comes from
        // L2 or memory. With critical-word-first the requested word skips
        // the line-streaming tail of the refill.
        self.stats.l1_misses += 1;
        let l2_hit = self.l2.access(addr);
        let (latency, tail) = if l2_hit {
            (self.config.l2_latency, self.config.l2_line_tail)
        } else {
            self.stats.l2_misses += 1;
            (self.config.mem_latency, self.config.mem_line_tail)
        };
        let saved = if self.config.critical_word_first {
            tail
        } else {
            0
        };
        hit_done + latency - saved.min(latency)
    }

    /// Performs a store at commit time; returns the cycle the store has
    /// been absorbed by the hierarchy (loads never wait on this — conflicts
    /// were resolved in the LSQ).
    pub fn store(&mut self, addr: u64, commit_cycle: u64) -> u64 {
        self.stats.stores += 1;
        let begin = self.claim_bank(addr, commit_cycle);
        self.dtlb.access(addr);
        if !self.l1d.access(addr) {
            self.stats.l1_misses += 1;
            if !self.l2.access(addr) {
                self.stats.l2_misses += 1;
            }
        }
        begin + 1
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// L1 D-cache sets — used to size the partial-address index bits.
    pub fn l1_sets(&self) -> u64 {
        self.l1d.sets()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::new(MemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_hit_latency_is_six_cycles_baseline() {
        let mut m = MemoryHierarchy::default();
        m.load(0x1000, 0, 0, false); // cold: install
        let done = m.load(0x1000, 100, 100, false);
        assert_eq!(done, 106);
    }

    #[test]
    fn accelerated_hit_hides_ram_latency() {
        let mut m = MemoryHierarchy::default();
        m.load(0x1000, 0, 0, false);
        // LS bits at 100, full address at 106: RAM done exactly when the
        // MS bits arrive; one extra cycle for tag compare.
        let done = m.load(0x1000, 100, 106, true);
        assert_eq!(done, 107);
        // Baseline would have been 106 + 6 = 112.
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut m = MemoryHierarchy::default();
        let done = m.load(0x5_0000, 0, 0, false);
        assert!(
            done >= 300,
            "cold miss should cost DRAM latency, got {done}"
        );
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn l2_hit_costs_thirty_extra() {
        let mut m = MemoryHierarchy::default();
        m.load(0x9_0000, 0, 0, false); // install in L1+L2
                                       // Evict from L1 by filling its set: L1 is 4-way, 128 sets, 64B
                                       // lines; same set stride = 128*64 = 8192.
        for i in 1..=4u64 {
            m.load(0x9_0000 + i * 8192, 0, 0, false);
        }
        let s_before = m.stats().l2_misses;
        let done = m.load(0x9_0000, 1000, 1000, false);
        assert_eq!(m.stats().l2_misses, s_before, "line should be in L2");
        assert_eq!(done, 1000 + 6 + 30);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut m = MemoryHierarchy::default();
        // Same bank (same word alignment), same start cycle.
        m.load(0x1000, 10, 10, false);
        m.load(0x1000 + 32, 10, 10, false); // (0x1020>>3)%4 == (0x1000>>3)%4
        assert_eq!(m.stats().bank_conflicts, 1);
    }

    #[test]
    fn different_banks_do_not_conflict() {
        let mut m = MemoryHierarchy::default();
        m.load(0x1000, 10, 10, false);
        m.load(0x1008, 10, 10, false); // next word -> next bank
        assert_eq!(m.stats().bank_conflicts, 0);
    }

    #[test]
    fn tlb_miss_delays_tag_compare() {
        let mut m = MemoryHierarchy::default();
        m.load(0x1000, 0, 0, false); // warm L1 + TLB
                                     // Far page, same cache line can't be: use same line via aliasing is
                                     // impossible; so warm the line under a cold TLB page instead.
        let addr = 0x1000 + 8192 * 16; // same L1 set region, new page
        m.load(addr, 0, 0, false); // cold everything
        let warm = m.load(addr, 500, 500, false);
        assert_eq!(warm, 506, "TLB+L1 both warm now");
        // A distinct page mapping to the same TLB set eventually evicts it;
        // simplest check: stats count misses.
        assert!(m.stats().tlb_misses >= 1);
    }

    #[test]
    fn stores_update_caches() {
        let mut m = MemoryHierarchy::default();
        m.store(0x2000, 5);
        let done = m.load(0x2000, 50, 50, false);
        assert_eq!(done, 56, "store should have installed the line");
    }
}
