//! Translation lookaside buffer: 128 entries, 8 KB pages (Table 1).
//!
//! The paper's cache-pipeline optimization sends a few bits of the virtual
//! page number on L-Wires so TLB bank lookup can start before the full
//! address arrives; a set-associative organisation (rather than fully
//! associative CAM) makes that partial indexing practical, so the model is
//! set-associative with configurable associativity (8-way by default,
//! matching the paper's "4 index bits ... associativity of 8 for the TLB").

/// A set-associative TLB model.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_bytes: u64,
    sets: u64,
    ways: usize,
    /// `vpns[set]`, most-recently-used first.
    vpns: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries, `ways` associativity and
    /// `page_bytes` pages.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`crate::cache::Cache::new`]).
    pub fn new(entries: usize, ways: usize, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "entries must divide into ways"
        );
        let sets = (entries / ways) as u64;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            page_bytes,
            sets,
            ways,
            vpns: vec![Vec::new(); sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Table-1 D-TLB: 128 entries, 8 KB pages, 8-way (paper §4: partial
    /// indexing with 4 index bits implies 8-way associativity).
    pub fn table1() -> Self {
        Self::new(128, 8, 8 * 1024)
    }

    fn vpn(&self, addr: u64) -> u64 {
        addr / self.page_bytes
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn & (self.sets - 1)) as usize
    }

    /// Accesses the translation for `addr`; returns `true` on hit. Misses
    /// install the translation.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = self.vpn(addr);
        let set = self.set_of(vpn);
        let ways = &mut self.vpns[set];
        if let Some(pos) = ways.iter().position(|&v| v == vpn) {
            let v = ways.remove(pos);
            ways.insert(0, v);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.ways {
                ways.pop();
            }
            ways.insert(0, vpn);
            self.misses += 1;
            false
        }
    }

    /// Number of sets (the paper's partial-address TLB index selects one).
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry_matches_paper_partial_indexing() {
        let t = Tlb::table1();
        // 128 entries 8-way => 16 sets => 4 TLB index bits, exactly the
        // paper's L-Wire budget.
        assert_eq!(t.sets(), 16);
    }

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::table1();
        assert!(!t.access(0x10_0000));
        assert!(t.access(0x10_1fff), "same 8KB page");
        assert!(!t.access(0x10_2000), "next page");
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(2, 2, 4096);
        t.access(0x0000); // vpn 0
        t.access(0x1000); // vpn 1
        t.access(0x2000); // vpn 2 evicts vpn 0 (LRU)
        assert!(!t.access(0x0000), "vpn 0 must have been evicted");
    }

    #[test]
    fn large_working_set_misses() {
        let mut t = Tlb::table1();
        // 4 MB working set = 512 pages >> 128 entries.
        for _ in 0..3 {
            for a in (0..4 * 1024 * 1024).step_by(8192) {
                t.access(a);
            }
        }
        let (h, m) = t.stats();
        assert!(m > h, "hits {h} misses {m}");
    }
}
