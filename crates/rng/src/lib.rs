//! # heterowire-rng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! for the simulator's workload synthesis and the workspace's randomized
//! tests. The generator is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, which gives a 2^256-1 period and excellent equidistribution
//! at a few ns per draw — more than enough statistical quality for
//! synthesizing instruction mixes and driving property-style tests.
//!
//! The API intentionally mirrors the subset of the `rand` crate the
//! workspace uses (`seed_from_u64`, `gen`, `gen_bool`, `gen_range`), so
//! call sites read identically, but everything here is `std`-only: the
//! repository builds with no network access and no external crates.
//!
//! Determinism is a hard requirement (the whole experiment pipeline is
//! seeded), so the algorithm is pinned: changing it changes every
//! synthesized trace and therefore every simulated number.
//!
//! # Examples
//!
//! ```
//! use heterowire_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let d = rng.gen_range(1u64..=6);
//! assert!((1..=6).contains(&d));
//! // Same seed => same stream.
//! let mut again = SmallRng::seed_from_u64(42);
//! let y: f64 = again.gen();
//! assert_eq!(x, y);
//! ```

use std::ops::{Range, RangeInclusive};

/// 2^-53, the weight of one 53-bit mantissa step in [0, 1).
const F64_UNIT: f64 = 1.0 / (1u64 << 53) as f64;

/// A fast deterministic PRNG: xoshiro256++ seeded via SplitMix64.
///
/// The name keeps parity with `rand::rngs::SmallRng`, which this type
/// replaces throughout the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64 (the seeding procedure recommended by the xoshiro
    /// authors: consecutive or zero seeds still yield well-mixed states).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value of `T` (see [`Sample`] for the per-type meaning;
    /// floats are uniform in `[0, 1)`).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // 53-bit comparison: exact for p = 0 and p = 1.
        self.gen::<f64>() < p
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's widening-multiply
    /// method with rejection (unbiased). `bound = 0` means the full range.
    #[inline]
    fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // Threshold = 2^64 mod bound; rejecting below it removes bias.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types [`SmallRng::gen`] can produce directly.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * F64_UNIT
    }
}

/// Ranges [`SmallRng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.u64_below(span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Span hi-lo+1 wraps to 0 on the full domain, which
                // u64_below treats as "no bound".
                let span = (hi - lo) as u64 + 1;
                lo.wrapping_add(rng.u64_below(span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

// u64 needs its own impl: the span itself can overflow 64 bits.
impl SampleRange<u64> for Range<u64> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.u64_below(self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // hi-lo+1 wraps to 0 exactly on the full u64 domain, which
        // u64_below treats as "no bound".
        lo.wrapping_add(rng.u64_below((hi - lo).wrapping_add(1)))
    }
}

impl SampleRange<i64> for Range<i64> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.u64_below(span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_pins_the_algorithm() {
        // Hand-computed SplitMix64 expansion of seed 0 followed by
        // xoshiro256++ outputs; if this test fails, every seeded trace in
        // the workspace has silently changed.
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        // SplitMix64(0) state expansion is a known vector.
        let fresh = SmallRng::seed_from_u64(0);
        assert_eq!(
            fresh.s,
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec
            ]
        );
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!((10..20u64).contains(&r.gen_range(10..20u64)));
            assert!((0..=5u32).contains(&r.gen_range(0..=5u32)));
            assert!((3..9usize).contains(&r.gen_range(3..9usize)));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            assert!((-4..7i64).contains(&r.gen_range(-4..7i64)));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = SmallRng::seed_from_u64(9);
        // Must not panic or loop forever on the span-wrapping path.
        let x = r.gen_range(0..=u64::MAX);
        let _ = x;
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut hits = 0u32;
        for _ in 0..100_000 {
            if r.gen_bool(0.3) {
                hits += 1;
            }
        }
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn u64_below_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(21);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0..10usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((9_000..11_000).contains(&b), "bucket {i}: {b}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5..5u64);
    }
}
