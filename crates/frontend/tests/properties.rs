//! Property-based tests over the predictors and fetch engine.

use proptest::prelude::*;

use heterowire_frontend::{Bimodal, Btb, Combined, DirectionPredictor, TwoLevel};

proptest! {
    /// A bimodal counter trained n >= 2 times in one direction predicts
    /// that direction.
    #[test]
    fn bimodal_saturates(pc in any::<u64>(), taken in any::<bool>(), n in 2u32..10) {
        let mut p = Bimodal::new(4096);
        for _ in 0..n {
            p.update(pc, taken);
        }
        prop_assert_eq!(p.predict(pc), taken);
    }

    /// The combined predictor is at least as good as its better component
    /// on a biased stream (within a small warmup slack).
    #[test]
    fn combined_tracks_better_component(bias_taken in any::<bool>(), len in 100usize..400) {
        let mut bi = Bimodal::new(4096);
        let mut comb = Combined::new(Bimodal::new(4096), TwoLevel::new(1024, 8, 4096), 1024);
        let pc = 0x4000;
        let mut bi_correct = 0;
        let mut comb_correct = 0;
        for i in 0..len {
            // 90% biased stream.
            let taken = if i % 10 == 0 { !bias_taken } else { bias_taken };
            if bi.predict(pc) == taken {
                bi_correct += 1;
            }
            if comb.predict(pc) == taken {
                comb_correct += 1;
            }
            bi.update(pc, taken);
            comb.update(pc, taken);
        }
        prop_assert!(comb_correct + 12 >= bi_correct,
            "combined {comb_correct} vs bimodal {bi_correct}");
    }

    /// The BTB returns exactly what was last installed for a PC.
    #[test]
    fn btb_returns_last_target(
        updates in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..100),
    ) {
        let mut btb = Btb::new(1024, 2);
        let mut last = std::collections::HashMap::new();
        for (pc, target) in updates {
            btb.update(pc, target);
            last.insert(pc, target);
            // The entry just installed must be retrievable.
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// Two-level history updates never panic and keep predictions boolean
    /// for arbitrary pc streams (no index escapes).
    #[test]
    fn two_level_is_total(pcs in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut p = TwoLevel::table1();
        for (i, pc) in pcs.iter().enumerate() {
            let _ = p.predict(*pc);
            p.update(*pc, i % 3 == 0);
        }
    }
}
