//! Randomized property-style tests over the predictors and fetch engine,
//! driven by the workspace's own deterministic RNG (std-only).

use heterowire_rng::SmallRng;

use heterowire_frontend::{Bimodal, Btb, Combined, DirectionPredictor, TwoLevel};

const CASES: usize = 64;

/// A bimodal counter trained n >= 2 times in one direction predicts that
/// direction.
#[test]
fn bimodal_saturates() {
    let mut rng = SmallRng::seed_from_u64(0xf00d_0001);
    for _ in 0..CASES {
        let pc: u64 = rng.gen();
        let taken = rng.gen_bool(0.5);
        let n = rng.gen_range(2u32..10);
        let mut p = Bimodal::new(4096);
        for _ in 0..n {
            p.update(pc, taken);
        }
        assert_eq!(p.predict(pc), taken, "pc {pc:#x} n {n}");
    }
}

/// The combined predictor is at least as good as its better component on a
/// biased stream (within a small warmup slack).
#[test]
fn combined_tracks_better_component() {
    let mut rng = SmallRng::seed_from_u64(0xf00d_0002);
    for _ in 0..CASES {
        let bias_taken = rng.gen_bool(0.5);
        let len = rng.gen_range(100usize..400);
        let mut bi = Bimodal::new(4096);
        let mut comb = Combined::new(Bimodal::new(4096), TwoLevel::new(1024, 8, 4096), 1024);
        let pc = 0x4000;
        let mut bi_correct = 0;
        let mut comb_correct = 0;
        for i in 0..len {
            // 90% biased stream.
            let taken = if i % 10 == 0 { !bias_taken } else { bias_taken };
            if bi.predict(pc) == taken {
                bi_correct += 1;
            }
            if comb.predict(pc) == taken {
                comb_correct += 1;
            }
            bi.update(pc, taken);
            comb.update(pc, taken);
        }
        assert!(
            comb_correct + 12 >= bi_correct,
            "combined {comb_correct} vs bimodal {bi_correct}"
        );
    }
}

/// The BTB returns exactly what was last installed for a PC.
#[test]
fn btb_returns_last_target() {
    let mut rng = SmallRng::seed_from_u64(0xf00d_0003);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..100);
        let mut btb = Btb::new(1024, 2);
        for _ in 0..n {
            let pc: u64 = rng.gen();
            let target: u64 = rng.gen();
            btb.update(pc, target);
            // The entry just installed must be retrievable.
            assert_eq!(btb.lookup(pc), Some(target));
        }
    }
}

/// Two-level history updates never panic and keep predictions boolean for
/// arbitrary pc streams (no index escapes).
#[test]
fn two_level_is_total() {
    let mut rng = SmallRng::seed_from_u64(0xf00d_0004);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let mut p = TwoLevel::table1();
        for i in 0..n {
            let pc: u64 = rng.gen();
            let _ = p.predict(pc);
            p.update(pc, i % 3 == 0);
        }
    }
}
