//! Branch direction predictors: bimodal, two-level, and the combining
//! predictor of Table 1 (16K bimodal + 16K-entry/12-bit-history two-level,
//! with a 16K-entry chooser).

/// A branch direction predictor.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc` (`true` = taken).
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the resolved direction.
    fn update(&mut self, pc: u64, taken: bool);
}

#[inline]
fn saturate_up(c: &mut u8, max: u8) {
    if *c < max {
        *c += 1;
    }
}

#[inline]
fn saturate_down(c: &mut u8) {
    if *c > 0 {
        *c -= 1;
    }
}

/// Bimodal predictor: a table of 2-bit saturating counters indexed by PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` 2-bit counters,
    /// initialised to weakly taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            counters: vec![2; entries],
        }
    }

    /// Table-1 configuration: 16K entries.
    pub fn table1() -> Self {
        Self::new(16 * 1024)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        if taken {
            saturate_up(&mut self.counters[i], 3);
        } else {
            saturate_down(&mut self.counters[i]);
        }
    }
}

/// Two-level (PAg-style) predictor: a first-level table of per-PC branch
/// histories indexing a shared second-level table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    histories: Vec<u16>,
    history_bits: u32,
    pattern: Vec<u8>,
}

impl TwoLevel {
    /// Creates a two-level predictor.
    ///
    /// # Panics
    ///
    /// Panics if either table size is not a power of two or
    /// `history_bits > 16`.
    pub fn new(l1_entries: usize, history_bits: u32, l2_entries: usize) -> Self {
        assert!(l1_entries.is_power_of_two() && l2_entries.is_power_of_two());
        assert!(history_bits <= 16, "history is stored in 16 bits");
        TwoLevel {
            histories: vec![0; l1_entries],
            history_bits,
            pattern: vec![2; l2_entries],
        }
    }

    /// Table-1 configuration: 16K histories of 12 bits, 16K counters.
    pub fn table1() -> Self {
        Self::new(16 * 1024, 12, 16 * 1024)
    }

    fn l1_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }

    fn l2_index(&self, pc: u64) -> usize {
        let h = self.histories[self.l1_index(pc)] as usize;
        // XOR-fold the PC into the history (gshare-flavoured hashing keeps
        // aliasing low when many branch sites share history patterns).
        (h ^ ((pc >> 2) as usize)) & (self.pattern.len() - 1)
    }
}

impl DirectionPredictor for TwoLevel {
    fn predict(&self, pc: u64) -> bool {
        self.pattern[self.l2_index(pc)] >= 2
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let l2 = self.l2_index(pc);
        if taken {
            saturate_up(&mut self.pattern[l2], 3);
        } else {
            saturate_down(&mut self.pattern[l2]);
        }
        let l1 = self.l1_index(pc);
        let mask = (1u16 << self.history_bits) - 1;
        self.histories[l1] = ((self.histories[l1] << 1) | taken as u16) & mask;
    }
}

/// The combining predictor of Table 1: bimodal + two-level with a 2-bit
/// chooser trained toward whichever component was correct.
#[derive(Debug, Clone)]
pub struct Combined {
    bimodal: Bimodal,
    two_level: TwoLevel,
    chooser: Vec<u8>,
}

impl Combined {
    /// Creates a combining predictor with the given components and a
    /// `chooser_entries`-entry selector table.
    ///
    /// # Panics
    ///
    /// Panics if `chooser_entries` is not a power of two.
    pub fn new(bimodal: Bimodal, two_level: TwoLevel, chooser_entries: usize) -> Self {
        assert!(chooser_entries.is_power_of_two());
        Combined {
            bimodal,
            two_level,
            // Weakly prefer bimodal until the history component proves
            // itself — avoids paying the two-level warmup on biased
            // branches.
            chooser: vec![1; chooser_entries],
        }
    }

    /// The full Table-1 front-end predictor.
    pub fn table1() -> Self {
        Self::new(Bimodal::table1(), TwoLevel::table1(), 16 * 1024)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }
}

impl Default for Combined {
    fn default() -> Self {
        Self::table1()
    }
}

impl DirectionPredictor for Combined {
    fn predict(&self, pc: u64) -> bool {
        if self.chooser[self.chooser_index(pc)] >= 2 {
            self.two_level.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bi = self.bimodal.predict(pc) == taken;
        let tl = self.two_level.predict(pc) == taken;
        let i = self.chooser_index(pc);
        // Train the chooser toward the component that was right.
        if tl && !bi {
            saturate_up(&mut self.chooser[i], 3);
        } else if bi && !tl {
            saturate_down(&mut self.chooser[i]);
        }
        self.bimodal.update(pc, taken);
        self.two_level.update(pc, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_a_bias() {
        let mut p = Bimodal::new(1024);
        for _ in 0..10 {
            p.update(0x40, true);
        }
        assert!(p.predict(0x40));
        for _ in 0..10 {
            p.update(0x40, false);
        }
        assert!(!p.predict(0x40));
    }

    #[test]
    fn two_level_learns_an_alternating_pattern() {
        // A strict T/NT alternation defeats bimodal but is trivial for a
        // history-based predictor once warmed up.
        let mut p = TwoLevel::new(1024, 8, 4096);
        let pc = 0x100;
        let mut taken = false;
        for _ in 0..200 {
            p.update(pc, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert!(correct >= 95, "two-level got {correct}/100 on alternation");
    }

    #[test]
    fn bimodal_fails_alternating_pattern() {
        let mut p = Bimodal::new(1024);
        let pc = 0x100;
        let mut taken = false;
        let mut correct = 0;
        for _ in 0..200 {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert!(correct <= 120, "bimodal got {correct}/200 on alternation");
    }

    #[test]
    fn combined_picks_the_better_component() {
        let mut p = Combined::new(Bimodal::new(1024), TwoLevel::new(1024, 8, 4096), 1024);
        let pc = 0x200;
        let mut taken = false;
        for _ in 0..300 {
            p.update(pc, taken);
            taken = !taken;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict(pc) == taken {
                correct += 1;
            }
            p.update(pc, taken);
            taken = !taken;
        }
        assert!(correct >= 90, "combined got {correct}/100");
    }

    #[test]
    fn strongly_biased_branches_are_easy_for_everyone() {
        let mut c = Combined::table1();
        let mut correct = 0;
        for i in 0..1000u64 {
            let pc = 0x400 + (i % 16) * 4;
            if c.predict(pc) {
                correct += 1;
            }
            c.update(pc, true);
        }
        assert!(correct > 950);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Bimodal::new(1000);
    }
}
