//! Branch target buffer: 16K sets, 2-way (Table 1).

/// One BTB entry: tag + target + LRU bit is kept implicitly by way order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbEntry {
    tag: u64,
    target: u64,
}

/// A set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: usize,
    ways: usize,
    /// `entries[set]` ordered most-recently-used first.
    entries: Vec<Vec<BtbEntry>>,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets of `ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        Btb {
            sets,
            ways,
            entries: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Table-1 configuration: 16K sets, 2-way.
    pub fn table1() -> Self {
        Self::new(16 * 1024, 2)
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    /// Looks up the predicted target for the branch at `pc`, updating LRU
    /// and hit statistics.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let set = self.set_of(pc);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways.iter().position(|e| e.tag == pc) {
            let e = ways.remove(pos);
            ways.insert(0, e);
            self.hits += 1;
            Some(e.target)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs or refreshes the target for the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let set = self.set_of(pc);
        let ways = &mut self.entries[set];
        if let Some(pos) = ways.iter().position(|e| e.tag == pc) {
            ways.remove(pos);
        } else if ways.len() == self.ways {
            ways.pop();
        }
        ways.insert(0, BtbEntry { tag: pc, target });
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Default for Btb {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(16, 2);
        assert_eq!(btb.lookup(0x40), None);
        btb.update(0x40, 0x100);
        assert_eq!(btb.lookup(0x40), Some(0x100));
        assert_eq!(btb.stats(), (1, 1));
    }

    #[test]
    fn update_replaces_target() {
        let mut btb = Btb::new(16, 2);
        btb.update(0x40, 0x100);
        btb.update(0x40, 0x200);
        assert_eq!(btb.lookup(0x40), Some(0x200));
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut btb = Btb::new(1, 2);
        btb.update(0x10, 0xa);
        btb.update(0x20, 0xb);
        // Touch 0x10 so 0x20 becomes LRU.
        assert_eq!(btb.lookup(0x10), Some(0xa));
        btb.update(0x30, 0xc);
        assert_eq!(btb.lookup(0x20), None, "LRU way should have been evicted");
        assert_eq!(btb.lookup(0x10), Some(0xa));
        assert_eq!(btb.lookup(0x30), Some(0xc));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut btb = Btb::new(2, 1);
        btb.update(0x0, 0xa); // set 0
        btb.update(0x4, 0xb); // set 1
        assert_eq!(btb.lookup(0x0), Some(0xa));
        assert_eq!(btb.lookup(0x4), Some(0xb));
    }
}
