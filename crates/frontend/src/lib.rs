#![warn(missing_docs)]
//! # heterowire-frontend
//!
//! The front-end of the `heterowire` clustered processor: branch direction
//! predictors ([`predictor`]), a branch target buffer ([`btb`]) and the
//! fetch engine ([`fetch`]), all sized per Table 1 of the paper
//! (16K-entry bimodal + 16K x 12-bit two-level with a 16K chooser, 16K-set
//! 2-way BTB, 8-wide fetch across up to two basic blocks, 64-entry fetch
//! queue).
//!
//! The front-end matters to the paper because the **branch mispredict
//! signal** must travel from the resolving cluster back to the fetch unit
//! over the inter-cluster interconnect; carrying it on low-latency L-Wires
//! shaves cycles off every mispredict penalty.
//!
//! ```
//! use heterowire_frontend::fetch::FetchEngine;
//! use heterowire_isa::{MicroOp, OpClass, ArchReg};
//!
//! let ops = (0..16).map(|i| {
//!     MicroOp::builder(i, 0x1000 + i * 4, OpClass::IntAlu)
//!         .dest(ArchReg::int(1))
//!         .build()
//! });
//! let mut fe = FetchEngine::new(ops);
//! fe.tick(0);
//! assert_eq!(fe.queue_len(), 8); // 8-wide fetch
//! ```

pub mod btb;
pub mod fetch;
pub mod predictor;

pub use btb::Btb;
pub use fetch::{FetchEngine, FetchStats, FetchedOp};
pub use predictor::{Bimodal, Combined, DirectionPredictor, TwoLevel};
