//! The fetch engine: an 8-wide front-end pulling from a trace, with a
//! 64-entry fetch queue, fetch across at most two basic blocks per cycle,
//! and stall-on-mispredict semantics (Table 1).
//!
//! The simulator is trace-driven, so wrong-path instructions are not
//! executed; instead, fetching a mispredicted branch stalls the front-end
//! until the core reports resolution (plus the mispredict-signal transfer
//! time and the 12-cycle minimum refill penalty, both applied by the core).
//! Predictor and BTB are trained at fetch — a common trace-driven
//! simplification that slightly flatters predictors with long update
//! latencies but preserves relative accuracy.

use std::collections::VecDeque;

use heterowire_isa::{MicroOp, OpClass};
use heterowire_telemetry::{NullProbe, Probe};

use crate::btb::Btb;
use crate::predictor::{Combined, DirectionPredictor};

/// A fetched micro-op together with its front-end prediction verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FetchedOp {
    /// The micro-op.
    pub op: MicroOp,
    /// True if this is a branch the front-end mispredicted (wrong direction,
    /// or taken with a BTB target miss).
    pub mispredicted: bool,
}

/// Front-end statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchStats {
    /// Micro-ops delivered into the fetch queue.
    pub fetched: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub mispredicts: u64,
    /// Cycles in which fetch was stalled waiting on a mispredict.
    pub stall_cycles: u64,
    /// Sum of full mispredict penalties (stall begin to redirect target).
    pub penalty_cycles: u64,
    /// Number of resolved mispredict stalls (denominator for the mean).
    pub resolved_mispredicts: u64,
}

impl FetchStats {
    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean cycles from mispredict-stall start to fetch restart.
    pub fn mean_mispredict_penalty(&self) -> f64 {
        if self.resolved_mispredicts == 0 {
            0.0
        } else {
            self.penalty_cycles as f64 / self.resolved_mispredicts as f64
        }
    }
}

/// The fetch engine. Generic over the trace source.
#[derive(Debug)]
pub struct FetchEngine<I> {
    source: I,
    predictor: Combined,
    btb: Btb,
    queue: VecDeque<FetchedOp>,
    queue_cap: usize,
    width: usize,
    max_blocks: usize,
    /// When stalled, fetch resumes at this cycle (`u64::MAX` until the core
    /// reports resolution).
    resume_at: Option<u64>,
    /// Cycle the current stall began (for penalty accounting).
    stall_started: u64,
    stats: FetchStats,
    exhausted: bool,
}

impl<I: Iterator<Item = MicroOp>> FetchEngine<I> {
    /// Creates a Table-1 front-end (width 8, queue 64, 2 basic blocks,
    /// combining predictor, 16K x 2 BTB) over `source`.
    pub fn new(source: I) -> Self {
        Self::with_geometry(source, 8, 64, 2)
    }

    /// Creates a front-end with custom geometry.
    ///
    /// # Panics
    ///
    /// Panics if any of the parameters is zero.
    pub fn with_geometry(source: I, width: usize, queue_cap: usize, max_blocks: usize) -> Self {
        assert!(width > 0 && queue_cap > 0 && max_blocks > 0);
        FetchEngine {
            source,
            predictor: Combined::table1(),
            btb: Btb::table1(),
            queue: VecDeque::with_capacity(queue_cap),
            queue_cap,
            width,
            max_blocks,
            resume_at: None,
            stall_started: 0,
            stats: FetchStats::default(),
            exhausted: false,
        }
    }

    /// Advances fetch by one cycle, filling the fetch queue.
    pub fn tick(&mut self, cycle: u64) {
        self.tick_probed(cycle, &mut NullProbe)
    }

    /// [`FetchEngine::tick`] with telemetry: emits [`Probe::fetch_stall`]
    /// when a mispredicted branch stalls the front-end. With [`NullProbe`]
    /// this monomorphizes to exactly `tick`.
    #[inline(never)]
    pub fn tick_probed<P: Probe>(&mut self, cycle: u64, probe: &mut P) {
        match self.resume_at {
            Some(at) if cycle < at => {
                self.stats.stall_cycles += 1;
                return;
            }
            Some(_) => self.resume_at = None,
            None => {}
        }

        let mut fetched = 0;
        let mut blocks = 1;
        while fetched < self.width && self.queue.len() < self.queue_cap {
            let Some(op) = self.source.next() else {
                self.exhausted = true;
                break;
            };
            fetched += 1;
            self.stats.fetched += 1;

            if op.op() == OpClass::Branch {
                let info = op.branch().expect("branches carry outcomes");
                self.stats.branches += 1;
                let predicted_taken = self.predictor.predict(op.pc());
                let target_known = if info.taken {
                    self.btb
                        .lookup(op.pc())
                        .map(|t| t == info.target)
                        .unwrap_or(false)
                } else {
                    true
                };
                self.predictor.update(op.pc(), info.taken);
                self.btb.update(op.pc(), info.target);

                let mispredicted = predicted_taken != info.taken || !target_known;
                self.queue.push_back(FetchedOp { op, mispredicted });

                if mispredicted {
                    self.stats.mispredicts += 1;
                    // Stall until the core reports resolution.
                    self.resume_at = Some(u64::MAX);
                    self.stall_started = cycle;
                    if P::ENABLED {
                        probe.fetch_stall(cycle);
                    }
                    return;
                }
                if info.taken {
                    // Crossing into a new basic block; at most `max_blocks`
                    // per cycle.
                    blocks += 1;
                    if blocks > self.max_blocks {
                        return;
                    }
                }
            } else {
                self.queue.push_back(FetchedOp {
                    op,
                    mispredicted: false,
                });
            }
        }
    }

    /// The earliest future cycle at which a `tick` could change fetch
    /// state, or `None` if fetch is quiescent (stalled on an unresolved
    /// mispredict, trace exhausted, or queue full). Used by the core's
    /// idle-cycle skipper.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        match self.resume_at {
            Some(u64::MAX) => None,
            Some(at) => Some(at.max(now + 1)),
            None => {
                if self.exhausted || self.queue.len() >= self.queue_cap {
                    None
                } else {
                    Some(now + 1)
                }
            }
        }
    }

    /// Accounts for `n` skipped cycles: a stalled front-end would have
    /// counted each as a stall cycle had it been ticked (non-stalled
    /// skipped ticks never touch the stats — the skipper only jumps when
    /// fetch is quiescent).
    pub fn note_skipped_stall_cycles(&mut self, n: u64) {
        if self.resume_at.is_some() {
            self.stats.stall_cycles += n;
        }
    }

    /// The core reports that the stalling mispredicted branch has resolved
    /// and redirected fetch; fetching resumes at `cycle`.
    pub fn redirect(&mut self, cycle: u64) {
        if self.resume_at == Some(u64::MAX) {
            self.resume_at = Some(cycle);
            self.stats.penalty_cycles += cycle.saturating_sub(self.stall_started);
            self.stats.resolved_mispredicts += 1;
        }
    }

    /// True if fetch is stalled on an unresolved mispredict.
    pub fn is_stalled(&self) -> bool {
        matches!(self.resume_at, Some(u64::MAX))
    }

    /// Cycle the current (or most recent) mispredict stall began.
    pub fn stall_started(&self) -> u64 {
        self.stall_started
    }

    /// Removes and returns the oldest fetched op, if any.
    pub fn pop(&mut self) -> Option<FetchedOp> {
        self.queue.pop_front()
    }

    /// Peeks at the oldest fetched op without removing it.
    pub fn peek(&self) -> Option<&FetchedOp> {
        self.queue.front()
    }

    /// Number of ops waiting in the fetch queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True once the trace source has run dry and the queue is empty.
    pub fn is_done(&self) -> bool {
        self.exhausted && self.queue.is_empty()
    }

    /// Front-end statistics so far.
    pub fn stats(&self) -> FetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heterowire_isa::reg::ArchReg;

    fn alu(seq: u64) -> MicroOp {
        MicroOp::builder(seq, 0x1000 + seq * 4, OpClass::IntAlu)
            .dest(ArchReg::int(1))
            .result(1)
            .build()
    }

    fn branch(seq: u64, pc: u64, taken: bool) -> MicroOp {
        MicroOp::builder(seq, pc, OpClass::Branch)
            .branch(taken, pc + 64)
            .build()
    }

    #[test]
    fn fetches_up_to_width_per_cycle() {
        let ops: Vec<_> = (0..32).map(alu).collect();
        let mut fe = FetchEngine::new(ops.into_iter());
        fe.tick(0);
        assert_eq!(fe.queue_len(), 8);
        fe.tick(1);
        assert_eq!(fe.queue_len(), 16);
    }

    #[test]
    fn queue_capacity_caps_fetch() {
        let ops: Vec<_> = (0..1000).map(alu).collect();
        let mut fe = FetchEngine::new(ops.into_iter());
        for c in 0..20 {
            fe.tick(c);
        }
        assert_eq!(fe.queue_len(), 64);
    }

    #[test]
    fn mispredict_stalls_until_redirect() {
        // First encounter of a taken branch misses the BTB => mispredict.
        let mut ops = vec![alu(0)];
        ops.push(branch(1, 0x2000, true));
        ops.extend((2..20).map(alu));
        let mut fe = FetchEngine::new(ops.into_iter());
        fe.tick(0);
        let fetched_at_stall = fe.queue_len();
        assert!(fe.is_stalled());
        fe.tick(1);
        assert_eq!(fe.queue_len(), fetched_at_stall, "no fetch while stalled");
        fe.redirect(5);
        fe.tick(4);
        assert_eq!(fe.queue_len(), fetched_at_stall, "still stalled at cycle 4");
        fe.tick(5);
        assert!(
            fe.queue_len() > fetched_at_stall,
            "fetch resumed at cycle 5"
        );
        assert_eq!(fe.stats().mispredicts, 1);
    }

    #[test]
    fn well_predicted_taken_branch_limits_blocks() {
        // Warm up the branch so it predicts correctly, then check the
        // two-block fetch limit: 8-wide fetch stops after the second taken
        // branch in a cycle.
        let mut warm = Vec::new();
        for i in 0..40 {
            warm.push(branch(i, 0x2000, true));
        }
        let mut body: Vec<_> = warm;
        let base = 40;
        // Now: b, b, b in quick succession (all predicted, all taken).
        body.push(branch(base, 0x2000, true));
        body.push(branch(base + 1, 0x2000, true));
        body.push(branch(base + 2, 0x2000, true));
        body.extend((base + 3..base + 20).map(alu));

        let mut fe = FetchEngine::new(body.into_iter());
        // Warmup: drain queue each cycle.
        let mut cycle = 0;
        while fe.stats().fetched < 40 {
            fe.tick(cycle);
            if fe.is_stalled() {
                fe.redirect(cycle + 1);
            }
            while fe.pop().is_some() {}
            cycle += 1;
        }
        while fe.pop().is_some() {}
        let before = fe.stats().fetched;
        fe.tick(cycle);
        assert!(!fe.is_stalled(), "branch should be predicted by now");
        // Fetch must have stopped after the second taken branch.
        assert_eq!(fe.stats().fetched - before, 2);
    }

    #[test]
    fn biased_branches_reach_high_accuracy() {
        let ops: Vec<_> = (0..2000)
            .map(|i| {
                if i % 4 == 0 {
                    branch(i, 0x3000 + (i % 16) * 4, true)
                } else {
                    alu(i)
                }
            })
            .collect();
        let mut fe = FetchEngine::new(ops.into_iter());
        let mut cycle = 0;
        while !fe.is_done() && cycle < 10_000 {
            fe.tick(cycle);
            if fe.is_stalled() {
                fe.redirect(cycle + 1);
            }
            while fe.pop().is_some() {}
            cycle += 1;
        }
        let s = fe.stats();
        assert!(s.branches > 400);
        assert!(
            s.mispredict_rate() < 0.05,
            "always-taken branches should predict well, rate {}",
            s.mispredict_rate()
        );
    }

    #[test]
    fn done_only_after_drain() {
        let ops: Vec<_> = (0..4).map(alu).collect();
        let mut fe = FetchEngine::new(ops.into_iter());
        fe.tick(0);
        assert!(!fe.is_done());
        while fe.pop().is_some() {}
        fe.tick(1);
        assert!(fe.is_done());
    }
}
