//! Message types carried by the inter-cluster network and their wire-class
//! eligibility.

use heterowire_wires::WireClass;

/// What a network transfer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A register value copied from producer to consumer cluster (64-bit
    /// data + 8-bit tag on a full lane).
    RegisterValue,
    /// A narrow register value (`0..=1023`): 10-bit payload + 8-bit tag,
    /// fits one L-Wire lane.
    NarrowValue,
    /// The least-significant bits of a load/store effective address plus an
    /// LSQ tag (paper: 6b tag + 8b cache index + 4b TLB index = 18 bits).
    PartialAddress,
    /// A full (or remaining most-significant) effective address.
    FullAddress,
    /// Store data on its way to the LSQ/cache.
    StoreData,
    /// A load's data returning from the cache to the consuming cluster.
    CacheData,
    /// A branch mispredict redirect to the front-end (a branch ID — tiny).
    BranchMispredict,
    /// A full-width register value split into 18-bit chunks and serialized
    /// over an L-Wire lane (the paper's §4.2 value splitting for critical
    /// wide operands: on long routes the chunked L transfer still beats a
    /// single B transfer).
    SplitValue,
}

impl MessageKind {
    /// Payload bits on the wire (including tag bits).
    pub fn bits(self) -> u32 {
        match self {
            MessageKind::RegisterValue | MessageKind::CacheData | MessageKind::StoreData => 72,
            MessageKind::FullAddress | MessageKind::SplitValue => 72,
            MessageKind::NarrowValue | MessageKind::PartialAddress => 18,
            MessageKind::BranchMispredict => 18,
        }
    }

    /// True if the message is small enough for one L-Wire lane.
    pub fn fits_l_wire(self) -> bool {
        self.bits() <= 18
    }

    /// True if the message may be carried on `class` wires.
    ///
    /// Full-width messages need a full 72-wire lane (B or PW); narrow
    /// messages may additionally use an 18-wire L lane. (A narrow message
    /// on a B/PW lane simply wastes the unused wires.) A [`SplitValue`]
    /// rides an L lane despite its 72-bit payload by serializing into
    /// chunks — the network charges [`MessageKind::serialization_cycles`]
    /// extra delivery latency for it.
    ///
    /// [`SplitValue`]: MessageKind::SplitValue
    pub fn allowed_on(self, class: WireClass) -> bool {
        match class {
            WireClass::L => self.fits_l_wire() || self == MessageKind::SplitValue,
            WireClass::B | WireClass::Pw | WireClass::W => true,
        }
    }

    /// Extra delivery cycles a message pays for chunked serialization on
    /// `class` wires: a [`MessageKind::SplitValue`] on an 18-wire L lane
    /// streams `ceil(72/18) = 4` chunks, so delivery trails the first chunk
    /// by 3 cycles. (The lane itself is modelled as occupied only at
    /// injection — the same one-lane-per-transfer simplification the rest
    /// of the arbitration uses.) Everything else pays nothing.
    pub fn serialization_cycles(self, class: WireClass) -> u64 {
        if self == MessageKind::SplitValue && class == WireClass::L {
            (self.bits().div_ceil(18) - 1) as u64
        } else {
            0
        }
    }
}

/// A request to move one message through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transfer {
    /// Source node.
    pub src: crate::topology::Node,
    /// Destination node.
    pub dst: crate::topology::Node,
    /// Wire class chosen by the selection policy.
    pub class: WireClass,
    /// Message kind (determines bits and lane eligibility).
    pub kind: MessageKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_messages_fit_l_wires() {
        assert!(MessageKind::NarrowValue.fits_l_wire());
        assert!(MessageKind::PartialAddress.fits_l_wire());
        assert!(MessageKind::BranchMispredict.fits_l_wire());
        assert!(!MessageKind::RegisterValue.fits_l_wire());
        assert!(!MessageKind::FullAddress.fits_l_wire());
    }

    #[test]
    fn wide_messages_rejected_on_l() {
        assert!(!MessageKind::RegisterValue.allowed_on(WireClass::L));
        assert!(MessageKind::RegisterValue.allowed_on(WireClass::B));
        assert!(MessageKind::RegisterValue.allowed_on(WireClass::Pw));
        assert!(MessageKind::NarrowValue.allowed_on(WireClass::L));
    }

    #[test]
    fn split_values_serialize_over_l_wires() {
        // 72 bits over an 18-wire lane: allowed, but 3 trailing chunks.
        assert!(!MessageKind::SplitValue.fits_l_wire());
        assert!(MessageKind::SplitValue.allowed_on(WireClass::L));
        assert_eq!(MessageKind::SplitValue.bits(), 72);
        assert_eq!(
            MessageKind::SplitValue.serialization_cycles(WireClass::L),
            3
        );
        // On a full-width lane it is just a register value: no extra cost.
        assert!(MessageKind::SplitValue.allowed_on(WireClass::B));
        assert_eq!(
            MessageKind::SplitValue.serialization_cycles(WireClass::B),
            0
        );
        // Messages that fit one lane never serialize.
        assert_eq!(
            MessageKind::NarrowValue.serialization_cycles(WireClass::L),
            0
        );
        assert_eq!(
            MessageKind::RegisterValue.serialization_cycles(WireClass::B),
            0
        );
    }

    #[test]
    fn bit_budgets_match_the_paper() {
        // 64b data + 8b tag.
        assert_eq!(MessageKind::RegisterValue.bits(), 72);
        // 8b tag + 10b data, and 6b LSQ tag + 8b index + 4b TLB index.
        assert_eq!(MessageKind::NarrowValue.bits(), 18);
        assert_eq!(MessageKind::PartialAddress.bits(), 18);
    }
}
