//! Message types carried by the inter-cluster network and their wire-class
//! eligibility.

use heterowire_wires::WireClass;

/// What a network transfer carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A register value copied from producer to consumer cluster (64-bit
    /// data + 8-bit tag on a full lane).
    RegisterValue,
    /// A narrow register value (`0..=1023`): 10-bit payload + 8-bit tag,
    /// fits one L-Wire lane.
    NarrowValue,
    /// The least-significant bits of a load/store effective address plus an
    /// LSQ tag (paper: 6b tag + 8b cache index + 4b TLB index = 18 bits).
    PartialAddress,
    /// A full (or remaining most-significant) effective address.
    FullAddress,
    /// Store data on its way to the LSQ/cache.
    StoreData,
    /// A load's data returning from the cache to the consuming cluster.
    CacheData,
    /// A branch mispredict redirect to the front-end (a branch ID — tiny).
    BranchMispredict,
}

impl MessageKind {
    /// Payload bits on the wire (including tag bits).
    pub fn bits(self) -> u32 {
        match self {
            MessageKind::RegisterValue | MessageKind::CacheData | MessageKind::StoreData => 72,
            MessageKind::FullAddress => 72,
            MessageKind::NarrowValue | MessageKind::PartialAddress => 18,
            MessageKind::BranchMispredict => 18,
        }
    }

    /// True if the message is small enough for one L-Wire lane.
    pub fn fits_l_wire(self) -> bool {
        self.bits() <= 18
    }

    /// True if the message may be carried on `class` wires.
    ///
    /// Full-width messages need a full 72-wire lane (B or PW); narrow
    /// messages may additionally use an 18-wire L lane. (A narrow message
    /// on a B/PW lane simply wastes the unused wires.)
    pub fn allowed_on(self, class: WireClass) -> bool {
        match class {
            WireClass::L => self.fits_l_wire(),
            WireClass::B | WireClass::Pw | WireClass::W => true,
        }
    }
}

/// A request to move one message through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transfer {
    /// Source node.
    pub src: crate::topology::Node,
    /// Destination node.
    pub dst: crate::topology::Node,
    /// Wire class chosen by the selection policy.
    pub class: WireClass,
    /// Message kind (determines bits and lane eligibility).
    pub kind: MessageKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_messages_fit_l_wires() {
        assert!(MessageKind::NarrowValue.fits_l_wire());
        assert!(MessageKind::PartialAddress.fits_l_wire());
        assert!(MessageKind::BranchMispredict.fits_l_wire());
        assert!(!MessageKind::RegisterValue.fits_l_wire());
        assert!(!MessageKind::FullAddress.fits_l_wire());
    }

    #[test]
    fn wide_messages_rejected_on_l() {
        assert!(!MessageKind::RegisterValue.allowed_on(WireClass::L));
        assert!(MessageKind::RegisterValue.allowed_on(WireClass::B));
        assert!(MessageKind::RegisterValue.allowed_on(WireClass::Pw));
        assert!(MessageKind::NarrowValue.allowed_on(WireClass::L));
    }

    #[test]
    fn bit_budgets_match_the_paper() {
        // 64b data + 8b tag.
        assert_eq!(MessageKind::RegisterValue.bits(), 72);
        // 8b tag + 10b data, and 6b LSQ tag + 8b index + 4b TLB index.
        assert_eq!(MessageKind::NarrowValue.bits(), 18);
        assert_eq!(MessageKind::PartialAddress.bits(), 18);
    }
}
