//! The cycle-driven network engine: lane arbitration, buffering, pipelined
//! delivery and energy accounting.
//!
//! Per the paper's model: every link offers the full degree of heterogeneity
//! (its composition in wire planes), transfers are fully pipelined (a lane
//! accepts a new transfer every cycle), contention buffers losers in
//! unbounded FIFOs, and the links in/out of the cache have twice the wires
//! of cluster links.

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::{LinkComposition, WireClass};

use crate::message::Transfer;
use crate::topology::{LinkId, Topology, MAX_ROUTE_LINKS};

/// Identifier of an in-flight or delivered transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Topology (crossbar or hierarchical ring).
    pub topology: Topology,
    /// Wire composition of one direction of a cluster link. Cache links are
    /// twice this; ring segments equal a cluster link.
    pub cluster_link: LinkComposition,
    /// Latency multiplier for wire-constrained sensitivity studies
    /// (§5.3 doubles all interconnect latencies).
    pub latency_scale: f64,
    /// Implement L-Wires as transmission lines (paper §2/§5.2): their
    /// latency stops scaling with the RC-constrained `latency_scale` and
    /// their dynamic energy drops to one third (Chang et al.).
    pub transmission_line_l: bool,
}

impl NetConfig {
    /// Creates a config with unit latency scale.
    pub fn new(topology: Topology, cluster_link: LinkComposition) -> Self {
        NetConfig {
            topology,
            cluster_link,
            latency_scale: 1.0,
            transmission_line_l: false,
        }
    }
}

/// Per-class traffic and energy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetStats {
    /// Transfers injected per class (indexed by `WireClass::ALL` order).
    pub transfers: [u64; 4],
    /// Bit-hops per class (payload bits x energy hops).
    pub bit_hops: [u64; 4],
    /// Weighted dynamic energy units (bit-hops x relative dynamic energy).
    pub dynamic_energy: f64,
    /// Total cycles transfers spent buffered waiting for a lane.
    pub queue_cycles: u64,
    /// Transfers delivered.
    pub delivered: u64,
}

impl NetStats {
    /// Total transfers injected.
    pub fn total_transfers(&self) -> u64 {
        self.transfers.iter().sum()
    }

    /// Fraction of transfers carried on the given class.
    pub fn class_share(&self, class: WireClass) -> f64 {
        let total = self.total_transfers();
        if total == 0 {
            return 0.0;
        }
        self.transfers[class_index(class)] as f64 / total as f64
    }
}

fn class_index(class: WireClass) -> usize {
    WireClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class is one of the four")
}

/// Index of a link in [`Topology::all_links`] order, computed
/// arithmetically so the send hot path needs no hash lookup. Checked
/// against the enumeration in [`Network::new`].
fn link_slot(topology: Topology, id: LinkId) -> usize {
    let n = topology.clusters();
    match id {
        LinkId::ClusterOut(c) => 2 * c,
        LinkId::ClusterIn(c) => 2 * c + 1,
        LinkId::CacheOut => 2 * n,
        LinkId::CacheIn => 2 * n + 1,
        LinkId::Ring { from, to } => {
            let quads = n / 4;
            let clockwise = to == (from + 1) % quads;
            2 * n + 2 + 2 * from + usize::from(!clockwise)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: TransferId,
    transfer: Transfer,
    /// Link slots of the route, stored inline (no per-transfer heap).
    links: [u16; MAX_ROUTE_LINKS],
    nlinks: u8,
    latency: u64,
    hops: u32,
    enqueued: u64,
}

impl Pending {
    fn links(&self) -> &[u16] {
        &self.links[..self.nlinks as usize]
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: TransferId,
    transfer: Transfer,
    deliver_at: u64,
}

/// The inter-cluster network.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    link_ids: Vec<LinkId>,
    /// Lane capacity per link per wire class.
    caps: Vec<[u32; 4]>,
    /// Lanes used in the current cycle per link per class.
    used: Vec<[u32; 4]>,
    pending: Vec<Pending>,
    in_flight: Vec<InFlight>,
    next_id: u64,
    last_tick: Option<u64>,
    stats: NetStats,
}

impl Network {
    /// Builds the network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn new(config: NetConfig) -> Self {
        assert!(
            !config.cluster_link.is_empty(),
            "links need at least one wire plane"
        );
        let link_ids = config.topology.all_links();
        let cache_link = config.cluster_link.widened(2);
        let mut caps = Vec::with_capacity(link_ids.len());
        for &id in &link_ids {
            let comp = match id {
                LinkId::CacheIn | LinkId::CacheOut => &cache_link,
                _ => &config.cluster_link,
            };
            let mut lanes = [0u32; 4];
            for (ci, &c) in WireClass::ALL.iter().enumerate() {
                lanes[ci] = comp.lanes(c);
            }
            caps.push(lanes);
        }
        let used = vec![[0; 4]; link_ids.len()];
        // `link_slot` must agree with the enumeration order of `all_links`.
        for (i, &id) in link_ids.iter().enumerate() {
            debug_assert_eq!(
                link_slot(config.topology, id),
                i,
                "link slot mismatch for {id:?}"
            );
        }
        Network {
            config,
            link_ids,
            caps,
            used,
            pending: Vec::new(),
            in_flight: Vec::new(),
            next_id: 0,
            last_tick: None,
            stats: NetStats::default(),
        }
    }

    /// True if the link composition offers any lanes of `class`.
    pub fn has_class(&self, class: WireClass) -> bool {
        self.config.cluster_link.lanes(class) > 0
    }

    /// Enqueues a transfer at `cycle`. It will compete for lanes starting
    /// with the next [`Network::tick`].
    ///
    /// # Panics
    ///
    /// Panics if the message kind is not allowed on the chosen wire class
    /// or the network has no lanes of that class.
    pub fn send(&mut self, transfer: Transfer, cycle: u64) -> TransferId {
        self.send_probed(transfer, cycle, &mut NullProbe)
    }

    /// [`Network::send`] with telemetry: emits [`Probe::enqueue`]. With
    /// [`NullProbe`] this monomorphizes to exactly `send`.
    #[inline(never)]
    pub fn send_probed<P: Probe>(
        &mut self,
        transfer: Transfer,
        cycle: u64,
        probe: &mut P,
    ) -> TransferId {
        assert!(
            transfer.kind.allowed_on(transfer.class),
            "{:?} cannot ride {} wires",
            transfer.kind,
            transfer.class
        );
        assert!(
            self.has_class(transfer.class),
            "network has no {} plane",
            transfer.class
        );
        let route = self
            .config
            .topology
            .route_inline(transfer.src, transfer.dst, transfer.class);
        // Transmission-line L-Wires fly at time-of-flight: wire-constrained
        // latency scaling does not apply to them.
        let scale = if self.config.transmission_line_l && transfer.class == WireClass::L {
            1.0
        } else {
            self.config.latency_scale
        };
        // Chunked messages (a SplitValue on an L lane) trail their first
        // chunk by the serialization cycles; the flit count is a property
        // of the message/lane pair, so scaling does not apply to it.
        let latency = ((route.latency as f64) * scale).round() as u64
            + transfer.kind.serialization_cycles(transfer.class);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.stats.transfers[class_index(transfer.class)] += 1;
        let mut links = [0u16; MAX_ROUTE_LINKS];
        for (slot, &l) in links.iter_mut().zip(route.links()) {
            *slot = link_slot(self.config.topology, l) as u16;
        }
        self.pending.push(Pending {
            id,
            transfer,
            links,
            nlinks: route.links().len() as u8,
            latency: latency.max(1),
            hops: route.hops,
            enqueued: cycle,
        });
        if P::ENABLED {
            probe.enqueue(cycle, id.0, transfer.class);
        }
        id
    }

    /// Arbitrates lanes for `cycle`: pending transfers (oldest first) that
    /// can reserve a lane on every link of their route depart and will be
    /// delivered `latency` cycles later.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` moves backwards.
    pub fn tick(&mut self, cycle: u64) {
        self.tick_probed(cycle, &mut NullProbe)
    }

    /// [`Network::tick`] with telemetry: emits [`Probe::depart`] for every
    /// transfer that wins arbitration and [`Probe::link_busy`] for each
    /// lane-cycle it consumes. With [`NullProbe`] this monomorphizes to
    /// exactly `tick`.
    #[inline(never)]
    pub fn tick_probed<P: Probe>(&mut self, cycle: u64, probe: &mut P) {
        if let Some(last) = self.last_tick {
            assert!(cycle > last, "network ticked backwards ({last} -> {cycle})");
        }
        self.last_tick = Some(cycle);
        for u in &mut self.used {
            *u = [0; 4];
        }
        // Single ordered pass compacting survivors in place (oldest-first
        // arbitration order is preserved; no per-element shifting).
        let mut kept = 0;
        for i in 0..self.pending.len() {
            let p = self.pending[i];
            let ci = class_index(p.transfer.class);
            // A transfer sent this cycle is eligible next cycle (send
            // buffers add one cycle of wire scheduling).
            let departs = p.enqueued < cycle
                && p.links()
                    .iter()
                    .all(|&l| self.used[l as usize][ci] < self.caps[l as usize][ci]);
            if departs {
                for &l in p.links() {
                    self.used[l as usize][ci] += 1;
                }
                self.stats.queue_cycles += cycle - p.enqueued - 1;
                let bits = p.transfer.kind.bits() as u64 * p.hops as u64;
                self.stats.bit_hops[ci] += bits;
                let mut unit = p.transfer.class.params().relative_dynamic;
                if self.config.transmission_line_l && p.transfer.class == WireClass::L {
                    unit /= 3.0; // Chang et al.: 3x energy reduction
                }
                self.stats.dynamic_energy += bits as f64 * unit;
                if P::ENABLED {
                    probe.depart(cycle, p.id.0, p.transfer.class, cycle - p.enqueued - 1);
                    for &l in p.links() {
                        probe.link_busy(cycle, l as usize, p.transfer.class);
                    }
                }
                self.in_flight.push(InFlight {
                    id: p.id,
                    transfer: p.transfer,
                    deliver_at: cycle + p.latency,
                });
            } else {
                self.pending[kept] = p;
                kept += 1;
            }
        }
        self.pending.truncate(kept);
    }

    /// Removes all transfers delivered at or before `cycle` into `out`
    /// (cleared first, then sorted by id) without allocating in steady
    /// state.
    pub fn take_delivered_into(&mut self, cycle: u64, out: &mut Vec<(TransferId, Transfer)>) {
        self.take_delivered_into_probed(cycle, out, &mut NullProbe)
    }

    /// [`Network::take_delivered_into`] with telemetry: emits
    /// [`Probe::deliver`] per delivered transfer. With [`NullProbe`] this
    /// monomorphizes to exactly `take_delivered_into`.
    #[inline(never)]
    pub fn take_delivered_into_probed<P: Probe>(
        &mut self,
        cycle: u64,
        out: &mut Vec<(TransferId, Transfer)>,
        probe: &mut P,
    ) {
        out.clear();
        let mut kept = 0;
        for i in 0..self.in_flight.len() {
            let f = self.in_flight[i];
            if f.deliver_at <= cycle {
                self.stats.delivered += 1;
                if P::ENABLED {
                    // `deliver_at`, not `cycle`: the kernel may have
                    // skipped idle cycles past the actual delivery time.
                    probe.deliver(f.deliver_at, f.id.0, f.transfer.class);
                }
                out.push((f.id, f.transfer));
            } else {
                self.in_flight[kept] = f;
                kept += 1;
            }
        }
        self.in_flight.truncate(kept);
        out.sort_unstable_by_key(|(id, _)| *id);
    }

    /// Removes and returns all transfers delivered at or before `cycle`
    /// (allocating convenience form of [`Network::take_delivered_into`]).
    /// Unit-test only, so the production alloc-free invariant cannot
    /// regress through it; everything else reuses a buffer via
    /// [`Network::take_delivered_into`].
    #[cfg(test)]
    pub(crate) fn take_delivered(&mut self, cycle: u64) -> Vec<(TransferId, Transfer)> {
        let mut out = Vec::new();
        self.take_delivered_into(cycle, &mut out);
        out
    }

    /// The earliest future cycle at which the network can change state:
    /// next cycle while anything is pending arbitration (departures and
    /// queueing stats accrue per tick), otherwise the earliest in-flight
    /// delivery. `None` when the network is empty — ticks may then be
    /// skipped without observable effect.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if !self.pending.is_empty() {
            return Some(now + 1);
        }
        self.in_flight
            .iter()
            .map(|f| f.deliver_at)
            .min()
            .map(|d| d.max(now + 1))
    }

    /// Transfers still queued or in flight.
    pub fn inflight_len(&self) -> usize {
        self.pending.len() + self.in_flight.len()
    }

    /// Transfers buffered awaiting lane arbitration (not yet departed).
    /// Telemetry reconciliation: `injected - departed == pending_len`.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Labels of all links in stable slot order (the `link` index emitted
    /// by [`Probe::link_busy`] indexes this list).
    pub fn link_labels(&self) -> Vec<String> {
        self.link_ids.iter().map(|id| id.label()).collect()
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Total leakage weight of all wire planes on all links — multiply by
    /// executed cycles and the leakage energy unit to get leakage energy.
    pub fn leakage_weight(&self) -> f64 {
        let cache_link = self.config.cluster_link.widened(2);
        self.link_ids
            .iter()
            .map(|id| match id {
                LinkId::CacheIn | LinkId::CacheOut => cache_link.leakage_weight(),
                _ => self.config.cluster_link.leakage_weight(),
            })
            .sum()
    }

    /// Total metal area of the interconnect in W-wire track units.
    pub fn metal_area(&self) -> f64 {
        let cache_link = self.config.cluster_link.widened(2);
        self.link_ids
            .iter()
            .map(|id| match id {
                LinkId::CacheIn | LinkId::CacheOut => cache_link.metal_area(),
                _ => self.config.cluster_link.metal_area(),
            })
            .sum()
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use crate::topology::Node;
    use heterowire_wires::WirePlane;

    fn b_l_link() -> LinkComposition {
        LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap()
    }

    fn net() -> Network {
        Network::new(NetConfig::new(Topology::crossbar4(), b_l_link()))
    }

    fn reg_transfer(src: usize, dst: usize, class: WireClass) -> Transfer {
        Transfer {
            src: Node::Cluster(src),
            dst: Node::Cluster(dst),
            class,
            kind: if class == WireClass::L {
                MessageKind::NarrowValue
            } else {
                MessageKind::RegisterValue
            },
        }
    }

    #[test]
    fn b_wire_transfer_takes_two_cycles() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        assert!(n.take_delivered(2).is_empty());
        n.tick(2);
        n.tick(3);
        let d = n.take_delivered(3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l_wire_transfer_is_faster() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        n.tick(1);
        let d = n.take_delivered(2);
        assert_eq!(d.len(), 1, "L transfer: 1 cycle after departing at 1");
    }

    #[test]
    fn contention_buffers_excess_transfers() {
        let mut n = net();
        // 144 B-wires = 2 lanes; three same-route transfers in one cycle.
        for _ in 0..3 {
            n.send(reg_transfer(0, 1, WireClass::B), 0);
        }
        n.tick(1);
        n.tick(2);
        n.tick(3);
        n.tick(4);
        let d = n.take_delivered(10);
        assert_eq!(d.len(), 3);
        assert_eq!(n.stats().queue_cycles, 1, "third transfer waited a cycle");
    }

    #[test]
    fn different_routes_do_not_contend() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(2, 3, WireClass::B), 0);
        n.tick(1);
        n.tick(2);
        n.tick(3);
        assert_eq!(n.take_delivered(3).len(), 2);
        assert_eq!(n.stats().queue_cycles, 0);
    }

    #[test]
    fn cache_link_has_double_capacity() {
        let mut n = net();
        // 4 transfers from different clusters into the cache: cache-in has
        // 4 B lanes, each cluster-out has 2 -> all four depart together.
        for c in 0..4 {
            n.send(
                Transfer {
                    src: Node::Cluster(c),
                    dst: Node::Cache,
                    class: WireClass::B,
                    kind: MessageKind::FullAddress,
                },
                0,
            );
        }
        n.tick(1);
        n.tick(2);
        n.tick(3);
        assert_eq!(n.take_delivered(3).len(), 4);
        assert_eq!(n.stats().queue_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "cannot ride")]
    fn wide_message_on_l_wire_panics() {
        let mut n = net();
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(1),
                class: WireClass::L,
                kind: MessageKind::RegisterValue,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "no PW-Wires plane")]
    fn missing_plane_panics() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::Pw), 0);
    }

    #[test]
    fn split_value_pays_serialization_on_l_wires() {
        let mut n = net();
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(1),
                class: WireClass::L,
                kind: MessageKind::SplitValue,
            },
            0,
        );
        n.tick(1);
        // L crossbar latency 1 + 3 trailing chunks: delivered at 1 + 4.
        assert!(n.take_delivered(4).is_empty());
        assert_eq!(n.take_delivered(5).len(), 1);
        // Energy charges all 72 bits at the L dynamic weight.
        assert!((n.stats().dynamic_energy - 72.0 * 0.84).abs() < 1e-9);
    }

    #[test]
    fn latency_scale_doubles_delivery_time() {
        let mut cfg = NetConfig::new(Topology::crossbar4(), b_l_link());
        cfg.latency_scale = 2.0;
        let mut n = Network::new(cfg);
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        assert!(n.take_delivered(4).is_empty());
        let d = n.take_delivered(5);
        assert_eq!(d.len(), 1, "doubled B latency = 4 cycles after depart");
    }

    #[test]
    fn energy_accounting_weights_by_class() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        let e_b = n.stats().dynamic_energy;
        assert!((e_b - 72.0 * 0.58).abs() < 1e-9);
        n.send(reg_transfer(0, 1, WireClass::L), 1);
        n.tick(2);
        let e_total = n.stats().dynamic_energy;
        assert!((e_total - e_b - 18.0 * 0.84).abs() < 1e-9);
    }

    #[test]
    fn leakage_weight_counts_all_links() {
        let n = net();
        // 4 cluster links x2 dirs + cache x2 (double width).
        let cluster = 144.0 * 0.55 + 36.0 * 0.79;
        let expect = 8.0 * cluster + 2.0 * 2.0 * cluster;
        assert!((n.leakage_weight() - expect).abs() < 1e-9);
    }

    #[test]
    fn hier_ring_transfer_traverses_ring() {
        let mut n = Network::new(NetConfig::new(Topology::hier16(), b_l_link()));
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(8),
                class: WireClass::B,
                kind: MessageKind::RegisterValue,
            },
            0,
        );
        n.tick(1);
        // Latency 2 + 2*4 = 10, departing at 1 -> delivered at 11.
        assert!(n.take_delivered(10).is_empty());
        assert_eq!(n.take_delivered(11).len(), 1);
    }

    #[test]
    fn stats_class_share() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        let s = n.stats();
        assert_eq!(s.total_transfers(), 3);
        assert!((s.class_share(WireClass::B) - 2.0 / 3.0).abs() < 1e-9);
    }
}
