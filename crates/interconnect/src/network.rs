//! The O(events) network engine: indexed lane arbitration, a calendar-queue
//! delivery wheel, and energy accounting.
//!
//! Per the paper's model: every link offers the full degree of heterogeneity
//! (its composition in wire planes), transfers are fully pipelined (a lane
//! accepts a new transfer every cycle), contention buffers losers in
//! unbounded FIFOs, and the links in/out of the cache have twice the wires
//! of cluster links.
//!
//! The engine is pinned bit-identical to the retained scan-based
//! [`ReferenceNetwork`](crate::reference::ReferenceNetwork) (same stats,
//! same delivery sets, same probe event sequences — enforced by randomized
//! differential tests). The structural invariants that make the indexed
//! path exact are documented in DESIGN.md §10:
//!
//! * Pending transfers are partitioned into per-(source link, wire class)
//!   FIFO queues. A transfer's first route link is always its source's
//!   injection link, and transfer ids are assigned in send order, so each
//!   queue is id-sorted and the queues partition the pending set.
//! * Each tick merges the queue heads through a min-heap on id, which
//!   reproduces the reference scan's global oldest-first order exactly.
//!   When a grant saturates a queue's own (link, class) lanes the whole
//!   queue is closed for the tick — every later entry shares that first
//!   link and class, so the reference scan would deny them all.
//! * Departed transfers go into a power-of-two calendar wheel keyed by
//!   delivery cycle, so draining deliveries touches only due buckets and
//!   `next_event_cycle` reads the exact earliest delivery in O(1).
//!
//! The engine is additionally generic over a [`FaultModel`]. With the
//! default [`NullFaultModel`] (`ENABLED = false`) every corruption check
//! monomorphizes away and the behaviour above is exactly the fault-free
//! engine. With an injector, a corrupted transfer detected at delivery is
//! NACKed back over the reverse route and re-enters arbitration with a
//! fresh arbitration sequence number (`aseq`), escalating to the B plane
//! after the model's retry limit — see DESIGN.md §14 for the invariants
//! that keep the indexed and reference engines bit-identical under
//! injection.

use std::collections::VecDeque;

use heterowire_telemetry::{NullProbe, Probe};
use heterowire_wires::{LinkComposition, WireClass};

use crate::fault::{FaultModel, NullFaultModel};
use crate::message::{MessageKind, Transfer};
use crate::topology::{LinkId, Node, Topology, MAX_ROUTE_LINKS};

/// Identifier of an in-flight or delivered transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

/// Network configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Topology (crossbar or hierarchical ring).
    pub topology: Topology,
    /// Wire composition of one direction of a cluster link. Cache links are
    /// twice this; ring segments equal a cluster link.
    pub cluster_link: LinkComposition,
    /// Latency multiplier for wire-constrained sensitivity studies
    /// (§5.3 doubles all interconnect latencies).
    pub latency_scale: f64,
    /// Implement L-Wires as transmission lines (paper §2/§5.2): their
    /// latency stops scaling with the RC-constrained `latency_scale` and
    /// their dynamic energy drops to one third (Chang et al.).
    pub transmission_line_l: bool,
}

impl NetConfig {
    /// Creates a config with unit latency scale.
    pub fn new(topology: Topology, cluster_link: LinkComposition) -> Self {
        NetConfig {
            topology,
            cluster_link,
            latency_scale: 1.0,
            transmission_line_l: false,
        }
    }
}

/// Per-class traffic and energy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetStats {
    /// Transfers injected per class (indexed by `WireClass::ALL` order).
    pub transfers: [u64; 4],
    /// Bit-hops per class (payload bits x energy hops).
    pub bit_hops: [u64; 4],
    /// Weighted dynamic energy units (bit-hops x relative dynamic energy).
    pub dynamic_energy: f64,
    /// Total cycles transfers spent buffered waiting for a lane.
    pub queue_cycles: u64,
    /// Transfers delivered.
    pub delivered: u64,
    /// Deliveries that arrived corrupted (fault injection); each one is
    /// NACKed and retransmitted rather than delivered.
    pub faults_detected: u64,
    /// Retransmissions injected back into arbitration.
    pub retransmits: u64,
    /// Retransmissions escalated from their original class to B-Wires
    /// after exhausting the same-class retry budget.
    pub escalations: u64,
    /// Extra delivery delay accumulated by retried transfers: for each
    /// transfer that eventually arrived clean after one or more
    /// corruptions, the gap between its final and its first scheduled
    /// delivery cycle (NACK transit and re-arbitration included).
    pub retry_cycles: u64,
}

impl NetStats {
    /// Total transfers injected.
    pub fn total_transfers(&self) -> u64 {
        self.transfers.iter().sum()
    }

    /// Fraction of transfers carried on the given class.
    pub fn class_share(&self, class: WireClass) -> f64 {
        let total = self.total_transfers();
        if total == 0 {
            return 0.0;
        }
        self.transfers[class_index(class)] as f64 / total as f64
    }
}

pub(crate) fn class_index(class: WireClass) -> usize {
    WireClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("class is one of the four")
}

/// A route resolved once at construction: link slots, energy hops and the
/// latency-scaled base delivery latency (before per-message serialization
/// cycles), cached per (source node, destination node, wire class) so the
/// send hot path is a table lookup instead of a ring walk.
#[derive(Debug, Clone, Copy)]
struct CachedRoute {
    links: [u16; MAX_ROUTE_LINKS],
    nlinks: u8,
    hops: u32,
    base_latency: u64,
}

const EMPTY_ROUTE: CachedRoute = CachedRoute {
    links: [0; MAX_ROUTE_LINKS],
    nlinks: 0,
    hops: 0,
    base_latency: 0,
};

/// Slab entry holding only the fields the per-tick arbitration loop reads
/// (SoA split: the departure-only fields live in [`DepSlot`]; the id rides
/// in the queue entry next to the slot index, so denials never touch the
/// slab at all).
#[derive(Debug, Clone, Copy)]
struct ArbSlot {
    enqueued: u64,
    links: [u16; MAX_ROUTE_LINKS],
    nlinks: u8,
    ci: u8,
}

/// Slab entry holding the fields only read when a transfer departs.
#[derive(Debug, Clone, Copy)]
struct DepSlot {
    transfer: Transfer,
    latency: u64,
    hops: u32,
    /// External transfer id. Queues order by `aseq` (which equals the id
    /// until a retransmission is injected), so departures read the id
    /// here.
    id: u64,
    /// Prior corrupted deliveries of this transfer (0 = original send).
    attempt: u32,
    /// Delivery cycle the first attempt was scheduled for; retried
    /// attempts carry it forward so clean arrival can account the total
    /// retry delay. Unused (0) while `attempt == 0`.
    first_deliver: u64,
}

/// One merge-frontier entry: the oldest not-yet-visited candidate of one
/// active queue during a tick (see `Network::heads`).
#[derive(Debug, Clone, Copy)]
struct Head {
    /// Candidate arbitration sequence number (`u64::MAX` = queue
    /// exhausted/closed). Equal to the transfer id while faults are off.
    id: u64,
    /// Candidate's slab slot.
    slot: u32,
    /// Owning queue index.
    q: u32,
    /// Scan position within the queue (denied entries sit before it).
    cur: u32,
}

/// One departed transfer waiting on the delivery wheel. `dseq` is a
/// monotone grant counter: sorting a drained batch by it restores the
/// reference engine's departure order for probe emission.
#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    deliver_at: u64,
    dseq: u64,
    id: u64,
    transfer: Transfer,
    /// Route energy hops (the corruption draw's exposure term).
    hops: u32,
    /// Prior corrupted deliveries of this transfer.
    attempt: u32,
    /// First attempt's scheduled delivery cycle (retry-delay accounting).
    first_deliver: u64,
}

/// Calendar queue of in-transit transfers keyed by delivery cycle (same
/// shape as the processor's completion wheel). The bucket count is a
/// power of two strictly greater than the longest possible delivery
/// latency for the network's configuration, so under monotone use a
/// bucket only ever holds entries for one cycle; every drain still checks
/// per-entry due-ness, and `earliest` never overestimates, so deliveries
/// are never missed even for manual non-monotone call patterns.
#[derive(Debug, Clone)]
struct DeliveryWheel {
    buckets: Vec<Vec<WheelEntry>>,
    mask: u64,
    scheduled: usize,
    /// Earliest scheduled delivery cycle — exact under monotone use,
    /// never an overestimate otherwise (`u64::MAX` when empty).
    earliest: u64,
}

impl DeliveryWheel {
    fn new(horizon: u64) -> Self {
        let n = horizon.next_power_of_two().max(8);
        DeliveryWheel {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            mask: n - 1,
            scheduled: 0,
            earliest: u64::MAX,
        }
    }

    fn schedule(&mut self, now: u64, entry: WheelEntry) {
        debug_assert!(
            entry.deliver_at > now && entry.deliver_at - now <= self.mask,
            "delivery {} outside wheel horizon at cycle {now}",
            entry.deliver_at
        );
        self.buckets[(entry.deliver_at & self.mask) as usize].push(entry);
        self.scheduled += 1;
        self.earliest = self.earliest.min(entry.deliver_at);
    }

    /// Moves every entry due at or before `cycle` into `out` (in bucket
    /// order, not departure order) and advances `earliest` to the first
    /// surviving delivery.
    fn drain_due(&mut self, cycle: u64, out: &mut Vec<WheelEntry>) {
        if self.earliest > cycle {
            return;
        }
        let nb = self.buckets.len() as u64;
        let lo = self.earliest;
        let span = cycle - lo + 1;
        let before = out.len();
        // Due entries lie in cycles [earliest, cycle]; visit exactly those
        // buckets (all of them if the span wraps the whole ring).
        for i in 0..span.min(nb) {
            let b = &mut self.buckets[((lo + i) & self.mask) as usize];
            let mut kept = 0;
            for j in 0..b.len() {
                let e = b[j];
                if e.deliver_at <= cycle {
                    out.push(e);
                } else {
                    b[kept] = e;
                    kept += 1;
                }
            }
            b.truncate(kept);
        }
        self.scheduled -= out.len() - before;
        // Everything due is gone, so the survivors' earliest is past
        // `cycle`: walk the ring forward to the first non-empty bucket.
        // Under the kernel's monotone use a bucket holds a single cycle's
        // entries within any one lap, making this exact; a survivor from a
        // later lap only ever makes it an underestimate, which is safe —
        // the next drain re-checks per-entry due-ness and walks again.
        self.earliest = u64::MAX;
        if self.scheduled > 0 {
            for i in 1..=nb {
                if !self.buckets[((cycle + i) & self.mask) as usize].is_empty() {
                    self.earliest = cycle + i;
                    break;
                }
            }
            debug_assert_ne!(self.earliest, u64::MAX, "scheduled > 0");
        }
    }

    /// The earliest scheduled delivery cycle, if any.
    fn next_due(&self) -> Option<u64> {
        (self.scheduled > 0).then_some(self.earliest)
    }
}

/// The inter-cluster network, generic over fault injection (`F`). The
/// default [`NullFaultModel`] compiles every corruption check away, so
/// `Network` (no parameter) is exactly the fault-free engine.
#[derive(Debug, Clone)]
pub struct Network<F: FaultModel = NullFaultModel> {
    config: NetConfig,
    link_ids: Vec<LinkId>,
    /// Lane capacity per link per wire class.
    caps: Vec<[u32; 4]>,
    /// Lanes used in the current cycle per link per class.
    used: Vec<[u32; 4]>,
    /// Routes cached per (src node, dst node, class); see [`CachedRoute`].
    routes: Vec<CachedRoute>,
    /// Arbitration-read slab half, parallel to `dep` (SoA split).
    arb: Vec<ArbSlot>,
    /// Departure-read slab half, parallel to `arb`.
    dep: Vec<DepSlot>,
    /// Free slab slots.
    free: Vec<u32>,
    /// Per-(source link slot, class) FIFO queues of `(aseq, slab slot)`
    /// pairs, aseq-sorted because arbitration sequence numbers are
    /// assigned in enqueue order (sends and retransmissions alike; with
    /// faults off `aseq == id` exactly). Indexed `slot * 4 + ci`; only
    /// injection links (ClusterOut / CacheOut) ever host entries.
    /// Carrying the key inline keeps the tick's frontier maintenance off
    /// the slab.
    queues: Vec<VecDeque<(u64, u32)>>,
    /// Queues currently holding entries (lazily pruned each tick).
    active: Vec<u32>,
    /// Membership flags for `active`.
    in_active: Vec<bool>,
    /// Tick-local merge frontier: each active queue's current candidate
    /// (id `u64::MAX` once the queue is exhausted or closed for the tick)
    /// plus its scan cursor — entries before the cursor were already
    /// denied this cycle. A linear min-scan over this small array replaces
    /// a heap: the active-queue count is bounded by (source links x
    /// classes) and is almost always a handful, so the scan is
    /// cache-resident and branch-predictable.
    heads: Vec<Head>,
    /// Pending transfers across all queues.
    pending_count: usize,
    wheel: DeliveryWheel,
    /// Scratch for wheel drains (reused; no steady-state allocation).
    drained: Vec<WheelEntry>,
    /// Monotone grant counter tagging wheel entries with departure order.
    dseq: u64,
    next_id: u64,
    /// Monotone arbitration sequence: the queue/frontier ordering key,
    /// advanced per enqueue (send or retransmission). Tracks `next_id`
    /// exactly until the first retransmission.
    next_aseq: u64,
    last_tick: Option<u64>,
    stats: NetStats,
    /// Total link leakage weight, precomputed at construction.
    leakage_weight: f64,
    /// Fault injection (zero-sized and check-free for the default
    /// [`NullFaultModel`]).
    faults: F,
}

fn node_of(index: usize, clusters: usize) -> Node {
    if index == clusters {
        Node::Cache
    } else {
        Node::Cluster(index)
    }
}

fn node_index(node: Node, clusters: usize) -> usize {
    match node {
        Node::Cluster(c) => {
            assert!(c < clusters, "cluster {c} out of range");
            c
        }
        Node::Cache => clusters,
    }
}

impl Network {
    /// Builds the fault-free network for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn new(config: NetConfig) -> Self {
        Network::with_faults(config, NullFaultModel)
    }
}

impl<F: FaultModel> Network<F> {
    /// Builds the network for `config` with the given fault model; with
    /// [`NullFaultModel`] this is exactly [`Network::new`].
    ///
    /// # Panics
    ///
    /// Panics if the cluster link composition is empty.
    pub fn with_faults(config: NetConfig, faults: F) -> Self {
        assert!(
            !config.cluster_link.is_empty(),
            "links need at least one wire plane"
        );
        // The spec layer and the Topology constructors already run the
        // shared capacity checker; re-running it here keeps the inline
        // route arrays safe against any future construction path.
        if let Err(e) = config.topology.check_capacity() {
            panic!("{e}");
        }
        let link_ids = config.topology.all_links();
        let cache_link = config.cluster_link.widened(2);
        let mut caps = Vec::with_capacity(link_ids.len());
        for &id in &link_ids {
            let comp = match id {
                LinkId::CacheIn | LinkId::CacheOut => &cache_link,
                _ => &config.cluster_link,
            };
            let mut lanes = [0u32; 4];
            for (ci, &c) in WireClass::ALL.iter().enumerate() {
                lanes[ci] = comp.lanes(c);
            }
            caps.push(lanes);
        }
        let used = vec![[0; 4]; link_ids.len()];
        // `Topology::link_slot` must agree with the enumeration order of
        // `all_links` (the route table below stores slots, not LinkIds).
        for (i, &id) in link_ids.iter().enumerate() {
            debug_assert_eq!(
                config.topology.link_slot(id),
                i,
                "link slot mismatch for {id:?}"
            );
        }

        // Resolve every (src, dst, class) route once. The wheel horizon is
        // the longest base latency plus the worst-case serialization tail.
        let clusters = config.topology.clusters();
        let nodes = clusters + 1;
        let mut routes = vec![EMPTY_ROUTE; nodes * nodes * 4];
        let max_serialization = MessageKind::SplitValue.serialization_cycles(WireClass::L);
        let mut max_latency = 1u64;
        for si in 0..nodes {
            for di in 0..nodes {
                if si == di {
                    continue;
                }
                let src = node_of(si, clusters);
                let dst = node_of(di, clusters);
                for (ci, &class) in WireClass::ALL.iter().enumerate() {
                    let r = config.topology.route_inline(src, dst, class);
                    let scale = if config.transmission_line_l && class == WireClass::L {
                        1.0
                    } else {
                        config.latency_scale
                    };
                    let base = ((r.latency as f64) * scale).round() as u64;
                    let mut links = [0u16; MAX_ROUTE_LINKS];
                    for (slot, &l) in links.iter_mut().zip(r.links()) {
                        *slot = config.topology.link_slot(l) as u16;
                    }
                    routes[(si * nodes + di) * 4 + ci] = CachedRoute {
                        links,
                        nlinks: r.links().len() as u8,
                        hops: r.hops,
                        base_latency: base,
                    };
                    max_latency = max_latency.max(base.max(1) + max_serialization);
                }
            }
        }

        let leakage_weight = link_ids
            .iter()
            .map(|id| match id {
                LinkId::CacheIn | LinkId::CacheOut => cache_link.leakage_weight(),
                _ => config.cluster_link.leakage_weight(),
            })
            .sum();

        let nqueues = link_ids.len() * 4;
        Network {
            config,
            caps,
            used,
            routes,
            arb: Vec::new(),
            dep: Vec::new(),
            free: Vec::new(),
            queues: (0..nqueues).map(|_| VecDeque::new()).collect(),
            active: Vec::new(),
            in_active: vec![false; nqueues],
            heads: Vec::new(),
            pending_count: 0,
            wheel: DeliveryWheel::new(max_latency + 1),
            drained: Vec::new(),
            dseq: 0,
            next_id: 0,
            next_aseq: 0,
            last_tick: None,
            stats: NetStats::default(),
            leakage_weight,
            faults,
            link_ids,
        }
    }

    /// True if the link composition offers any lanes of `class`.
    pub fn has_class(&self, class: WireClass) -> bool {
        self.config.cluster_link.lanes(class) > 0
    }

    /// Enqueues a transfer at `cycle`. It will compete for lanes starting
    /// with the next [`Network::tick`].
    ///
    /// # Panics
    ///
    /// Panics if the message kind is not allowed on the chosen wire class
    /// or the network has no lanes of that class.
    pub fn send(&mut self, transfer: Transfer, cycle: u64) -> TransferId {
        self.send_probed(transfer, cycle, &mut NullProbe)
    }

    /// [`Network::send`] with telemetry: emits [`Probe::enqueue`]. With
    /// [`NullProbe`] this monomorphizes to exactly `send`.
    #[inline(never)]
    pub fn send_probed<P: Probe>(
        &mut self,
        transfer: Transfer,
        cycle: u64,
        probe: &mut P,
    ) -> TransferId {
        assert!(
            transfer.kind.allowed_on(transfer.class),
            "{:?} cannot ride {} wires",
            transfer.kind,
            transfer.class
        );
        assert!(
            self.has_class(transfer.class),
            "network has no {} plane",
            transfer.class
        );
        assert!(
            transfer.src != transfer.dst,
            "no self-transfers on the network"
        );
        let clusters = self.config.topology.clusters();
        let nodes = clusters + 1;
        let si = node_index(transfer.src, clusters);
        let di = node_index(transfer.dst, clusters);
        let ci = class_index(transfer.class);
        let route = &self.routes[(si * nodes + di) * 4 + ci];
        // Chunked messages (a SplitValue on an L lane) trail their first
        // chunk by the serialization cycles; the flit count is a property
        // of the message/lane pair, so latency scaling (already baked into
        // the cached base latency) does not apply to it.
        let latency =
            (route.base_latency + transfer.kind.serialization_cycles(transfer.class)).max(1);
        let id = TransferId(self.next_id);
        self.next_id += 1;
        self.stats.transfers[ci] += 1;
        let route = *route;
        let slot = self.alloc_slot(transfer);
        self.arb[slot] = ArbSlot {
            enqueued: cycle,
            links: route.links,
            nlinks: route.nlinks,
            ci: ci as u8,
        };
        self.dep[slot] = DepSlot {
            transfer,
            latency,
            hops: route.hops,
            id: id.0,
            attempt: 0,
            first_deliver: 0,
        };
        self.enqueue_for_arbitration(route.links[0] as usize * 4 + ci, slot);
        if P::ENABLED {
            probe.enqueue(cycle, id.0, transfer.class);
        }
        id
    }

    /// Pops or grows a slab slot (the caller overwrites both halves).
    fn alloc_slot(&mut self, transfer: Transfer) -> usize {
        match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.arb.push(ArbSlot {
                    enqueued: 0,
                    links: [0; MAX_ROUTE_LINKS],
                    nlinks: 0,
                    ci: 0,
                });
                self.dep.push(DepSlot {
                    transfer,
                    latency: 0,
                    hops: 0,
                    id: 0,
                    attempt: 0,
                    first_deliver: 0,
                });
                self.arb.len() - 1
            }
        }
    }

    /// Appends `slot` to arbitration queue `q` under a fresh `aseq` and
    /// keeps the active set and pending count in sync.
    fn enqueue_for_arbitration(&mut self, q: usize, slot: usize) {
        let aseq = self.next_aseq;
        self.next_aseq += 1;
        self.queues[q].push_back((aseq, slot as u32));
        if !self.in_active[q] {
            self.in_active[q] = true;
            self.active.push(q as u32);
        }
        self.pending_count += 1;
    }

    /// Arbitrates lanes for `cycle`: pending transfers (oldest first) that
    /// can reserve a lane on every link of their route depart and will be
    /// delivered `latency` cycles later.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` moves backwards.
    pub fn tick(&mut self, cycle: u64) {
        self.tick_probed(cycle, &mut NullProbe)
    }

    /// Departure bookkeeping shared by the arbitration paths: stats,
    /// probe events, wheel scheduling and slab reclamation. Lane usage
    /// and queue removal stay with the caller — the single-transfer fast
    /// path never touches either.
    #[inline]
    fn grant<P: Probe>(&mut self, cycle: u64, slot: usize, a: ArbSlot, probe: &mut P) {
        let d = self.dep[slot];
        let id = d.id;
        let ci = a.ci as usize;
        self.stats.queue_cycles += cycle - a.enqueued - 1;
        let bits = d.transfer.kind.bits() as u64 * d.hops as u64;
        self.stats.bit_hops[ci] += bits;
        let mut unit = d.transfer.class.params().relative_dynamic;
        if self.config.transmission_line_l && d.transfer.class == WireClass::L {
            unit /= 3.0; // Chang et al.: 3x energy reduction
        }
        self.stats.dynamic_energy += bits as f64 * unit;
        if P::ENABLED {
            probe.depart(cycle, id, d.transfer.class, cycle - a.enqueued - 1);
            for &l in &a.links[..a.nlinks as usize] {
                probe.link_busy(cycle, l as usize, d.transfer.class);
            }
        }
        let deliver_at = cycle + d.latency;
        self.wheel.schedule(
            cycle,
            WheelEntry {
                deliver_at,
                dseq: self.dseq,
                id,
                transfer: d.transfer,
                hops: d.hops,
                attempt: d.attempt,
                // The first departure pins the baseline delivery cycle the
                // retry-delay metric is measured against.
                first_deliver: if d.attempt == 0 {
                    deliver_at
                } else {
                    d.first_deliver
                },
            },
        );
        self.dseq += 1;
        self.free.push(slot as u32);
        self.pending_count -= 1;
    }

    /// [`Network::tick`] with telemetry: emits [`Probe::depart`] for every
    /// transfer that wins arbitration and [`Probe::link_busy`] for each
    /// lane-cycle it consumes. With [`NullProbe`] this monomorphizes to
    /// exactly `tick`.
    #[inline(never)]
    pub fn tick_probed<P: Probe>(&mut self, cycle: u64, probe: &mut P) {
        if let Some(last) = self.last_tick {
            assert!(cycle > last, "network ticked backwards ({last} -> {cycle})");
        }
        self.last_tick = Some(cycle);
        if self.pending_count == 0 {
            // Nothing can depart; drop stale (drained-empty) queue
            // activations so future ticks start from a clean set.
            for &q in &self.active {
                self.in_active[q as usize] = false;
            }
            self.active.clear();
            return;
        }
        if self.pending_count == 1 {
            // A sole pending transfer cannot be contended: every lane of
            // its route has capacity >= 1 (`send` rejects classes without
            // lanes), so it departs as soon as it is eligible — no lane
            // accounting or merge frontier needed. This is the dominant
            // case under light traffic.
            loop {
                let q = self.active[0] as usize;
                if let Some(&(_, slot)) = self.queues[q].front() {
                    let a = self.arb[slot as usize];
                    if a.enqueued < cycle {
                        self.grant(cycle, slot as usize, a, probe);
                        self.queues[q].pop_front();
                    }
                    return;
                }
                self.in_active[q] = false;
                self.active.swap_remove(0);
            }
        }
        for u in &mut self.used {
            *u = [0; 4];
        }
        // Seed the merge frontier with the oldest entry of every non-empty
        // queue, pruning queues that drained since their last activation.
        self.heads.clear();
        let mut i = 0;
        while i < self.active.len() {
            let q = self.active[i] as usize;
            match self.queues[q].front() {
                Some(&(id, slot)) => {
                    self.heads.push(Head {
                        id,
                        slot,
                        q: q as u32,
                        cur: 0,
                    });
                    i += 1;
                }
                None => {
                    self.in_active[q] = false;
                    self.active.swap_remove(i);
                }
            }
        }
        // Repeatedly take the globally-oldest frontier candidate; each
        // visit is exactly the transfer the reference scan would visit
        // next among those still able to depart this cycle.
        loop {
            let mut best = 0usize;
            let mut best_id = u64::MAX;
            for (i, h) in self.heads.iter().enumerate() {
                if h.id < best_id {
                    best_id = h.id;
                    best = i;
                }
            }
            if best_id == u64::MAX {
                break;
            }
            let Head {
                slot, q: qi, cur, ..
            } = self.heads[best];
            let q = qi as usize;
            let slot = slot as usize;
            let a = self.arb[slot];
            let ci = a.ci as usize;
            let links = &a.links[..a.nlinks as usize];
            // A transfer sent this cycle is eligible next cycle (send
            // buffers add one cycle of wire scheduling).
            let departs = a.enqueued < cycle
                && links
                    .iter()
                    .all(|&l| self.used[l as usize][ci] < self.caps[l as usize][ci]);
            let ncur = if departs {
                for &l in links {
                    self.used[l as usize][ci] += 1;
                }
                self.grant(cycle, slot, a, probe);
                // Remove at the cursor — almost always the front; denied
                // older entries may sit before it, in which case the shift
                // cost is bounded by the denials already paid this tick.
                if cur == 0 {
                    self.queues[q].pop_front();
                } else {
                    self.queues[q].remove(cur as usize);
                }
                cur
            } else {
                cur + 1
            };
            // Close the queue once its own (link, class) lanes are
            // saturated: every later entry shares that first link and
            // class, so the reference scan would deny them all.
            let own_link = q >> 2;
            let own_ci = q & 3;
            match self.queues[q].get(ncur as usize) {
                Some(&(id, slot)) if self.used[own_link][own_ci] < self.caps[own_link][own_ci] => {
                    self.heads[best] = Head {
                        id,
                        slot,
                        q: qi,
                        cur: ncur,
                    };
                }
                _ => self.heads[best].id = u64::MAX,
            }
        }
    }

    /// Removes all transfers delivered at or before `cycle` into `out`
    /// (cleared first, then sorted by id) without allocating in steady
    /// state. O(1) when nothing is due.
    pub fn take_delivered_into(&mut self, cycle: u64, out: &mut Vec<(TransferId, Transfer)>) {
        self.take_delivered_into_probed(cycle, out, &mut NullProbe)
    }

    /// [`Network::take_delivered_into`] with telemetry: emits
    /// [`Probe::deliver`] per delivered transfer. With [`NullProbe`] this
    /// monomorphizes to exactly `take_delivered_into`.
    #[inline(never)]
    pub fn take_delivered_into_probed<P: Probe>(
        &mut self,
        cycle: u64,
        out: &mut Vec<(TransferId, Transfer)>,
        probe: &mut P,
    ) {
        out.clear();
        if self.wheel.next_due().is_none_or(|d| d > cycle) {
            return;
        }
        self.drained.clear();
        self.wheel.drain_due(cycle, &mut self.drained);
        if P::ENABLED || F::ENABLED {
            // The reference engine processes deliveries in departure
            // order; restore it so probe event sequences match
            // bit-for-bit — and, under fault injection, so corrupted
            // transfers re-enter arbitration in the same order (requeue
            // order decides their `aseq` and therefore future
            // arbitration priority).
            self.drained.sort_unstable_by_key(|e| e.dseq);
        }
        for i in 0..self.drained.len() {
            let e = self.drained[i];
            if F::ENABLED
                && self.faults.corrupts(
                    e.id,
                    e.attempt,
                    e.transfer.class,
                    e.transfer.kind.bits(),
                    e.hops,
                )
            {
                self.requeue(e, probe);
                continue;
            }
            self.stats.delivered += 1;
            if F::ENABLED && e.attempt > 0 {
                self.stats.retry_cycles += e.deliver_at - e.first_deliver;
            }
            if P::ENABLED {
                // `deliver_at`, not `cycle`: the kernel may have skipped
                // idle cycles past the actual delivery time.
                probe.deliver(e.deliver_at, e.id, e.transfer.class);
            }
            out.push((TransferId(e.id), e.transfer));
        }
        out.sort_unstable_by_key(|(id, _)| *id);
    }

    /// NACK + retransmission (cold: only compiled in with `F::ENABLED`,
    /// only reached on a corrupted delivery). The receiver detected the
    /// corruption at `e.deliver_at`; a NACK rides the reverse route on
    /// the failed attempt's class, and the transfer re-enters arbitration
    /// when it arrives. After the model's retry limit the retry escalates
    /// to the B plane (wider swing, better noise margin) when one exists
    /// and the message may ride it. The external id is preserved — the
    /// processor's per-transfer action table is keyed by it — while queue
    /// ordering uses a fresh `aseq`, keeping the FIFO-per-queue invariant
    /// intact.
    #[inline(never)]
    fn requeue<P: Probe>(&mut self, e: WheelEntry, probe: &mut P) {
        let clusters = self.config.topology.clusters();
        let nodes = clusters + 1;
        let si = node_index(e.transfer.src, clusters);
        let di = node_index(e.transfer.dst, clusters);
        let old_ci = class_index(e.transfer.class);
        self.stats.faults_detected += 1;
        if P::ENABLED {
            probe.fault_detected(e.deliver_at, e.id, e.transfer.class, e.attempt);
        }
        let nack = self.routes[(di * nodes + si) * 4 + old_ci]
            .base_latency
            .max(1);
        let attempt = e.attempt + 1;
        let mut transfer = e.transfer;
        if attempt >= self.faults.retry_limit()
            && transfer.class != WireClass::B
            && self.has_class(WireClass::B)
            && transfer.kind.allowed_on(WireClass::B)
        {
            transfer.class = WireClass::B;
            self.stats.escalations += 1;
        }
        let ci = class_index(transfer.class);
        let route = self.routes[(si * nodes + di) * 4 + ci];
        let latency =
            (route.base_latency + transfer.kind.serialization_cycles(transfer.class)).max(1);
        let enqueued = e.deliver_at + nack;
        let slot = self.alloc_slot(transfer);
        self.arb[slot] = ArbSlot {
            enqueued,
            links: route.links,
            nlinks: route.nlinks,
            ci: ci as u8,
        };
        self.dep[slot] = DepSlot {
            transfer,
            latency,
            hops: route.hops,
            id: e.id,
            attempt,
            first_deliver: e.first_deliver,
        };
        self.enqueue_for_arbitration(route.links[0] as usize * 4 + ci, slot);
        self.stats.retransmits += 1;
        if P::ENABLED {
            probe.retransmit(enqueued, e.id, transfer.class, attempt);
        }
    }

    /// The pending transfer with the smallest arbitration sequence (the
    /// one every tick arbitrates first), as `(id, class, enqueued cycle,
    /// attempt)`. Cold diagnostic accessor for the forward-progress
    /// watchdog's stall report.
    pub fn oldest_pending(&self) -> Option<(TransferId, WireClass, u64, u32)> {
        let mut best: Option<(u64, u32)> = None;
        for q in &self.queues {
            if let Some(&(aseq, slot)) = q.front() {
                if best.is_none_or(|(b, _)| aseq < b) {
                    best = Some((aseq, slot));
                }
            }
        }
        best.map(|(_, slot)| {
            let a = self.arb[slot as usize];
            let d = self.dep[slot as usize];
            (TransferId(d.id), d.transfer.class, a.enqueued, d.attempt)
        })
    }

    /// Removes and returns all transfers delivered at or before `cycle`
    /// (allocating convenience form of [`Network::take_delivered_into`]).
    /// Unit-test only, so the production alloc-free invariant cannot
    /// regress through it; everything else reuses a buffer via
    /// [`Network::take_delivered_into`].
    #[cfg(test)]
    pub(crate) fn take_delivered(&mut self, cycle: u64) -> Vec<(TransferId, Transfer)> {
        let mut out = Vec::new();
        self.take_delivered_into(cycle, &mut out);
        out
    }

    /// The earliest future cycle at which the network can change state:
    /// next cycle while anything is pending arbitration (departures and
    /// queueing stats accrue per tick), otherwise the earliest in-flight
    /// delivery (read off the wheel in O(1)). `None` when the network is
    /// empty — ticks may then be skipped without observable effect.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        if self.pending_count > 0 {
            return Some(now + 1);
        }
        self.wheel.next_due().map(|d| d.max(now + 1))
    }

    /// Transfers still queued or in flight.
    pub fn inflight_len(&self) -> usize {
        self.pending_count + self.wheel.scheduled
    }

    /// Transfers buffered awaiting lane arbitration (not yet departed).
    /// Telemetry reconciliation: `injected - departed == pending_len`.
    pub fn pending_len(&self) -> usize {
        self.pending_count
    }

    /// Labels of all links in stable slot order (the `link` index emitted
    /// by [`Probe::link_busy`] indexes this list).
    pub fn link_labels(&self) -> Vec<String> {
        self.link_ids
            .iter()
            .map(|id| id.label().into_owned())
            .collect()
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Total leakage weight of all wire planes on all links — multiply by
    /// executed cycles and the leakage energy unit to get leakage energy.
    /// Precomputed at construction; the derivation from the link list is
    /// kept as a debug assertion.
    pub fn leakage_weight(&self) -> f64 {
        debug_assert_eq!(
            self.leakage_weight,
            self.derive_leakage_weight(),
            "precomputed leakage weight diverged from the link list"
        );
        self.leakage_weight
    }

    fn derive_leakage_weight(&self) -> f64 {
        let cache_link = self.config.cluster_link.widened(2);
        self.link_ids
            .iter()
            .map(|id| match id {
                LinkId::CacheIn | LinkId::CacheOut => cache_link.leakage_weight(),
                _ => self.config.cluster_link.leakage_weight(),
            })
            .sum()
    }

    /// Total metal area of the interconnect in W-wire track units.
    pub fn metal_area(&self) -> f64 {
        let cache_link = self.config.cluster_link.widened(2);
        self.link_ids
            .iter()
            .map(|id| match id {
                LinkId::CacheIn | LinkId::CacheOut => cache_link.metal_area(),
                _ => self.config.cluster_link.metal_area(),
            })
            .sum()
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;
    use crate::message::MessageKind;
    use crate::topology::Node;
    use heterowire_wires::WirePlane;

    fn b_l_link() -> LinkComposition {
        LinkComposition::new(vec![
            WirePlane::new(WireClass::B, 144),
            WirePlane::new(WireClass::L, 36),
        ])
        .unwrap()
    }

    fn net() -> Network {
        Network::new(NetConfig::new(Topology::crossbar4(), b_l_link()))
    }

    fn reg_transfer(src: usize, dst: usize, class: WireClass) -> Transfer {
        Transfer {
            src: Node::Cluster(src),
            dst: Node::Cluster(dst),
            class,
            kind: if class == WireClass::L {
                MessageKind::NarrowValue
            } else {
                MessageKind::RegisterValue
            },
        }
    }

    #[test]
    fn b_wire_transfer_takes_two_cycles() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        assert!(n.take_delivered(2).is_empty());
        n.tick(2);
        n.tick(3);
        let d = n.take_delivered(3);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l_wire_transfer_is_faster() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        n.tick(1);
        let d = n.take_delivered(2);
        assert_eq!(d.len(), 1, "L transfer: 1 cycle after departing at 1");
    }

    #[test]
    fn contention_buffers_excess_transfers() {
        let mut n = net();
        // 144 B-wires = 2 lanes; three same-route transfers in one cycle.
        for _ in 0..3 {
            n.send(reg_transfer(0, 1, WireClass::B), 0);
        }
        n.tick(1);
        n.tick(2);
        n.tick(3);
        n.tick(4);
        let d = n.take_delivered(10);
        assert_eq!(d.len(), 3);
        assert_eq!(n.stats().queue_cycles, 1, "third transfer waited a cycle");
    }

    #[test]
    fn different_routes_do_not_contend() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(2, 3, WireClass::B), 0);
        n.tick(1);
        n.tick(2);
        n.tick(3);
        assert_eq!(n.take_delivered(3).len(), 2);
        assert_eq!(n.stats().queue_cycles, 0);
    }

    #[test]
    fn cache_link_has_double_capacity() {
        let mut n = net();
        // 4 transfers from different clusters into the cache: cache-in has
        // 4 B lanes, each cluster-out has 2 -> all four depart together.
        for c in 0..4 {
            n.send(
                Transfer {
                    src: Node::Cluster(c),
                    dst: Node::Cache,
                    class: WireClass::B,
                    kind: MessageKind::FullAddress,
                },
                0,
            );
        }
        n.tick(1);
        n.tick(2);
        n.tick(3);
        assert_eq!(n.take_delivered(3).len(), 4);
        assert_eq!(n.stats().queue_cycles, 0);
    }

    #[test]
    fn younger_transfer_bypasses_blocked_older_one() {
        let mut n = net();
        // Saturate c1.in's two B lanes from cluster 2, then race an older
        // blocked transfer (0 -> 1) against a younger one (0 -> 3): the
        // younger departs around it (mid-queue removal in the (c0.out, B)
        // queue) while the older waits a cycle.
        n.send(reg_transfer(2, 1, WireClass::B), 0);
        n.send(reg_transfer(2, 1, WireClass::B), 0);
        let blocked = n.send(reg_transfer(0, 1, WireClass::B), 0);
        let bypass = n.send(reg_transfer(0, 3, WireClass::B), 0);
        n.tick(1);
        n.tick(2);
        n.tick(3);
        n.tick(4);
        let d = n.take_delivered(10);
        assert_eq!(d.len(), 4);
        assert_eq!(n.stats().queue_cycles, 1, "only the blocked one waited");
        // The bypasser departed at cycle 1 (delivered 3), the blocked
        // transfer at cycle 2 (delivered 4).
        assert!(d.iter().any(|&(id, _)| id == bypass));
        assert!(d.iter().any(|&(id, _)| id == blocked));
    }

    #[test]
    fn next_event_is_exact_for_pending_and_in_flight() {
        let mut n = net();
        assert_eq!(n.next_event_cycle(0), None, "empty network has no events");
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        assert_eq!(n.next_event_cycle(0), Some(1), "pending -> next tick");
        n.tick(1);
        // Departed at 1, B crossbar latency 2 -> delivery at 3 exactly.
        assert_eq!(n.next_event_cycle(1), Some(3));
        let mut out = Vec::new();
        n.take_delivered_into(3, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(n.next_event_cycle(3), None);
    }

    #[test]
    fn delivery_wheel_drains_across_skipped_cycles() {
        let mut n = net();
        // Deliveries due at several different cycles, drained in one call
        // far in the future (the kernel skips idle cycles).
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        n.send(reg_transfer(2, 3, WireClass::B), 5);
        n.tick(6);
        let d = n.take_delivered(1000);
        assert_eq!(d.len(), 3);
        assert_eq!(n.inflight_len(), 0);
        // Ids come back sorted.
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    #[should_panic(expected = "cannot ride")]
    fn wide_message_on_l_wire_panics() {
        let mut n = net();
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(1),
                class: WireClass::L,
                kind: MessageKind::RegisterValue,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "no PW-Wires plane")]
    fn missing_plane_panics() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::Pw), 0);
    }

    #[test]
    fn split_value_pays_serialization_on_l_wires() {
        let mut n = net();
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(1),
                class: WireClass::L,
                kind: MessageKind::SplitValue,
            },
            0,
        );
        n.tick(1);
        // L crossbar latency 1 + 3 trailing chunks: delivered at 1 + 4.
        assert!(n.take_delivered(4).is_empty());
        assert_eq!(n.take_delivered(5).len(), 1);
        // Energy charges all 72 bits at the L dynamic weight.
        assert!((n.stats().dynamic_energy - 72.0 * 0.84).abs() < 1e-9);
    }

    #[test]
    fn latency_scale_doubles_delivery_time() {
        let mut cfg = NetConfig::new(Topology::crossbar4(), b_l_link());
        cfg.latency_scale = 2.0;
        let mut n = Network::new(cfg);
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        assert!(n.take_delivered(4).is_empty());
        let d = n.take_delivered(5);
        assert_eq!(d.len(), 1, "doubled B latency = 4 cycles after depart");
    }

    #[test]
    fn energy_accounting_weights_by_class() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.tick(1);
        let e_b = n.stats().dynamic_energy;
        assert!((e_b - 72.0 * 0.58).abs() < 1e-9);
        n.send(reg_transfer(0, 1, WireClass::L), 1);
        n.tick(2);
        let e_total = n.stats().dynamic_energy;
        assert!((e_total - e_b - 18.0 * 0.84).abs() < 1e-9);
    }

    #[test]
    fn leakage_weight_counts_all_links() {
        let n = net();
        // 4 cluster links x2 dirs + cache x2 (double width).
        let cluster = 144.0 * 0.55 + 36.0 * 0.79;
        let expect = 8.0 * cluster + 2.0 * 2.0 * cluster;
        assert!((n.leakage_weight() - expect).abs() < 1e-9);
    }

    #[test]
    fn hier_ring_transfer_traverses_ring() {
        let mut n = Network::new(NetConfig::new(Topology::hier16(), b_l_link()));
        n.send(
            Transfer {
                src: Node::Cluster(0),
                dst: Node::Cluster(8),
                class: WireClass::B,
                kind: MessageKind::RegisterValue,
            },
            0,
        );
        n.tick(1);
        // Latency 2 + 2*4 = 10, departing at 1 -> delivered at 11.
        assert!(n.take_delivered(10).is_empty());
        assert_eq!(n.take_delivered(11).len(), 1);
    }

    #[test]
    fn stats_class_share() {
        let mut n = net();
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(0, 1, WireClass::B), 0);
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        let s = n.stats();
        assert_eq!(s.total_transfers(), 3);
        assert!((s.class_share(WireClass::B) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn corrupted_transfer_retries_and_escalates_to_b() {
        // Saturated L error rate, one same-class retry allowed. The full
        // timeline on a crossbar (L latency 1, B latency 2, NACK 1):
        //   send @0 -> depart @1 -> corrupt at delivery @2
        //   -> NACK back (1 cycle) -> re-enqueued @3, escalated to B
        //   (attempt 1 >= retry limit 1) -> depart @4 -> deliver @6.
        let faults = FaultSpec::parse("faults:l@1+retry:1").unwrap().injector();
        let mut n = Network::with_faults(NetConfig::new(Topology::crossbar4(), b_l_link()), faults);
        let id = n.send(reg_transfer(0, 1, WireClass::L), 0);
        n.tick(1);
        assert!(n.take_delivered(2).is_empty(), "first copy arrives corrupt");
        assert_eq!(n.stats().faults_detected, 1);
        assert_eq!(n.stats().retransmits, 1);
        assert_eq!(n.stats().escalations, 1, "retry limit 1 escalates at once");
        assert_eq!(n.pending_len(), 1, "retransmission waits for arbitration");
        n.tick(3); // NACK still in flight: enqueued @3 is not yet eligible
        assert!(n.take_delivered(3).is_empty());
        n.tick(4);
        let d = n.take_delivered(6);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, id, "the retried copy keeps its transfer id");
        assert_eq!(
            d[0].1.class,
            WireClass::B,
            "delivered on the escalated plane"
        );
        let s = n.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(s.total_transfers(), 1, "retries are not new sends");
        assert_eq!(s.retry_cycles, 4, "clean arrival @6 vs first schedule @2");
        // Both copies paid wire energy: 18 bits on L, then 18 bits on B.
        assert!((s.dynamic_energy - (18.0 * 0.84 + 18.0 * 0.58)).abs() < 1e-9);
    }

    #[test]
    fn same_class_retry_precedes_escalation() {
        // Default retry limit 2: attempt 1 retries on L, attempt 2
        // escalates. A saturated rate corrupts every L copy, so exactly
        // one same-class retry happens before the B-plane rescue.
        let faults = FaultSpec::parse("l@1").unwrap().injector();
        let mut n = Network::with_faults(NetConfig::new(Topology::crossbar4(), b_l_link()), faults);
        n.send(reg_transfer(0, 1, WireClass::L), 0);
        for cycle in 1..20 {
            n.tick(cycle);
            if !n.take_delivered(cycle).is_empty() {
                break;
            }
        }
        let s = n.stats();
        assert_eq!(s.delivered, 1);
        assert_eq!(
            s.faults_detected, 2,
            "original + one same-class retry corrupt"
        );
        assert_eq!(s.retransmits, 2);
        assert_eq!(s.escalations, 1);
    }

    #[test]
    fn zero_rate_injector_changes_nothing() {
        // An all-zero transient spec must reproduce the baseline stats
        // bit-for-bit even though the fault plumbing is compiled in.
        let faults = FaultSpec::parse("l@0+b@0").unwrap().injector();
        let mut base = net();
        let mut faulty =
            Network::with_faults(NetConfig::new(Topology::crossbar4(), b_l_link()), faults);
        fn drive<F: crate::fault::FaultModel>(n: &mut Network<F>) {
            let mut out = Vec::new();
            n.send(reg_transfer(0, 1, WireClass::B), 0);
            n.send(reg_transfer(0, 1, WireClass::B), 0);
            n.send(reg_transfer(2, 3, WireClass::L), 0);
            n.tick(1);
            n.tick(2);
            n.take_delivered_into(10, &mut out);
            assert_eq!(out.len(), 3);
        }
        drive(&mut base);
        drive(&mut faulty);
        let (b, f) = (base.stats(), faulty.stats());
        assert_eq!(b, f);
        assert_eq!(f.faults_detected, 0);
        assert_eq!(f.retry_cycles, 0);
    }

    #[test]
    fn oldest_pending_reports_the_arbitration_head() {
        let mut n = net();
        assert_eq!(n.oldest_pending(), None);
        let first = n.send(reg_transfer(0, 1, WireClass::B), 3);
        n.send(reg_transfer(2, 3, WireClass::B), 5);
        let (id, class, enqueued, attempt) = n.oldest_pending().unwrap();
        assert_eq!(id, first);
        assert_eq!(class, WireClass::B);
        assert_eq!(enqueued, 3);
        assert_eq!(attempt, 0);
    }
}
