//! Network topologies: the 4-cluster crossbar and the 16-cluster
//! hierarchical crossbar-of-rings (Figure 2 of the paper).

use heterowire_wires::WireClass;

/// A network endpoint: one of the clusters or the centralized L1 D-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Cluster `i`.
    Cluster(usize),
    /// The centralized data cache / LSQ.
    Cache,
}

/// A directed link in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Cluster `i`'s injection link into its crossbar.
    ClusterOut(usize),
    /// Cluster `i`'s delivery link from its crossbar.
    ClusterIn(usize),
    /// The cache's injection link (double width).
    CacheOut,
    /// The cache's delivery link (double width).
    CacheIn,
    /// Directed ring segment between adjacent crossbar hubs.
    Ring {
        /// Source quad.
        from: usize,
        /// Destination quad (adjacent on the ring).
        to: usize,
    },
}

impl LinkId {
    /// Short human-readable label, used for telemetry track names and
    /// utilization CSV rows.
    pub fn label(self) -> String {
        match self {
            LinkId::ClusterOut(c) => format!("c{c}.out"),
            LinkId::ClusterIn(c) => format!("c{c}.in"),
            LinkId::CacheOut => "cache.out".to_string(),
            LinkId::CacheIn => "cache.in".to_string(),
            LinkId::Ring { from, to } => format!("ring.{from}-{to}"),
        }
    }
}

/// The shape of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `clusters` clusters and the cache on a single crossbar
    /// (Figure 2(a); the paper uses 4 clusters).
    Crossbar {
        /// Number of clusters.
        clusters: usize,
    },
    /// Quads of 4 clusters on local crossbars, crossbars on a ring, cache
    /// attached to quad 0's crossbar (Figure 2(b); 16 clusters = 4 quads).
    HierRing {
        /// Number of quads (4 clusters each).
        quads: usize,
    },
}

/// A computed route: the links traversed and the end-to-end latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Directed links that must each grant a lane at injection time.
    pub links: Vec<LinkId>,
    /// Delivery latency in cycles for the given wire class.
    pub latency: u64,
    /// Energy hops: 1 for the crossbar traversal plus 1 per ring segment.
    pub hops: u32,
}

/// Longest possible route: source link + `quads/2` ring segments + sink
/// link. With the paper's 4 quads that is 4; 6 leaves headroom for an
/// 8-quad ring.
pub const MAX_ROUTE_LINKS: usize = 6;

/// An allocation-free [`Route`] with the link set stored inline — the
/// network's hot send path computes one of these per transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineRoute {
    links: [LinkId; MAX_ROUTE_LINKS],
    len: u8,
    /// Delivery latency in cycles for the given wire class.
    pub latency: u64,
    /// Energy hops: 1 for the crossbar traversal plus 1 per ring segment.
    pub hops: u32,
}

impl InlineRoute {
    /// The links traversed, in order.
    pub fn links(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }
}

impl Topology {
    /// A 4-cluster crossbar (the paper's main configuration).
    pub fn crossbar4() -> Self {
        Topology::Crossbar { clusters: 4 }
    }

    /// The 16-cluster hierarchical configuration.
    pub fn hier16() -> Self {
        Topology::HierRing { quads: 4 }
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        match *self {
            Topology::Crossbar { clusters } => clusters,
            Topology::HierRing { quads } => quads * 4,
        }
    }

    /// Quad of a cluster (0 for flat crossbars).
    pub fn quad_of(&self, cluster: usize) -> usize {
        match *self {
            Topology::Crossbar { .. } => 0,
            Topology::HierRing { .. } => cluster / 4,
        }
    }

    /// The quad that hosts the centralized cache.
    pub const CACHE_QUAD: usize = 0;

    /// All directed links in this topology, in a stable order.
    pub fn all_links(&self) -> Vec<LinkId> {
        let mut links = Vec::new();
        for c in 0..self.clusters() {
            links.push(LinkId::ClusterOut(c));
            links.push(LinkId::ClusterIn(c));
        }
        links.push(LinkId::CacheOut);
        links.push(LinkId::CacheIn);
        if let Topology::HierRing { quads } = *self {
            for q in 0..quads {
                links.push(LinkId::Ring {
                    from: q,
                    to: (q + 1) % quads,
                });
                links.push(LinkId::Ring {
                    from: q,
                    to: (q + quads - 1) % quads,
                });
            }
        }
        links
    }

    /// Index of `id` in [`Topology::all_links`] order, computed
    /// arithmetically so hot paths need no hash lookup. The network checks
    /// this against the enumeration at construction time.
    pub fn link_slot(&self, id: LinkId) -> usize {
        let n = self.clusters();
        match id {
            LinkId::ClusterOut(c) => 2 * c,
            LinkId::ClusterIn(c) => 2 * c + 1,
            LinkId::CacheOut => 2 * n,
            LinkId::CacheIn => 2 * n + 1,
            LinkId::Ring { from, to } => {
                let quads = n / 4;
                let clockwise = to == (from + 1) % quads;
                2 * n + 2 + 2 * from + usize::from(!clockwise)
            }
        }
    }

    /// Computes the route from `src` to `dst` for a transfer on `class`
    /// wires without heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, a cluster index is out of range, or the
    /// route exceeds [`MAX_ROUTE_LINKS`] links.
    pub fn route_inline(&self, src: Node, dst: Node, class: WireClass) -> InlineRoute {
        assert!(src != dst, "no self-transfers on the network");
        let params = class.params();
        let xbar = params.crossbar_latency as u64;
        let ring = params.ring_hop_latency as u64;

        let mut links = [LinkId::CacheOut; MAX_ROUTE_LINKS];
        let mut len = 0usize;
        let src_quad = match src {
            Node::Cluster(c) => {
                assert!(c < self.clusters(), "cluster {c} out of range");
                links[len] = LinkId::ClusterOut(c);
                self.quad_of(c)
            }
            Node::Cache => {
                links[len] = LinkId::CacheOut;
                Self::CACHE_QUAD
            }
        };
        len += 1;
        let dst_quad = match dst {
            Node::Cluster(c) => {
                assert!(c < self.clusters(), "cluster {c} out of range");
                self.quad_of(c)
            }
            Node::Cache => Self::CACHE_QUAD,
        };

        // Ring path between quads: shortest direction, clockwise on ties.
        let mut segments = 0u64;
        if let Topology::HierRing { quads } = *self {
            if src_quad != dst_quad {
                let cw = (dst_quad + quads - src_quad) % quads;
                let ccw = (src_quad + quads - dst_quad) % quads;
                let step = if cw <= ccw { 1 } else { quads - 1 };
                let mut q = src_quad;
                while q != dst_quad {
                    let n = (q + step) % quads;
                    links[len] = LinkId::Ring { from: q, to: n };
                    len += 1;
                    segments += 1;
                    q = n;
                }
            }
        }
        links[len] = match dst {
            Node::Cluster(c) => LinkId::ClusterIn(c),
            Node::Cache => LinkId::CacheIn,
        };
        len += 1;
        InlineRoute {
            links,
            len: len as u8,
            latency: xbar + ring * segments,
            hops: 1 + segments as u32,
        }
    }

    /// Computes the route from `src` to `dst` for a transfer on `class`
    /// wires (allocating convenience form of [`Topology::route_inline`]).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or a cluster index is out of range.
    pub fn route(&self, src: Node, dst: Node, class: WireClass) -> Route {
        let r = self.route_inline(src, dst, class);
        Route {
            links: r.links().to_vec(),
            latency: r.latency,
            hops: r.hops,
        }
    }

    /// Cluster nearest to the cache (steering gives loads affinity to it).
    /// For the crossbar every cluster is equidistant; quad-0 clusters win in
    /// the hierarchical topology.
    pub fn cache_adjacent(&self, cluster: usize) -> bool {
        self.quad_of(cluster) == Self::CACHE_QUAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_latencies_match_table2() {
        let t = Topology::crossbar4();
        for (class, lat) in [(WireClass::Pw, 3), (WireClass::B, 2), (WireClass::L, 1)] {
            let r = t.route(Node::Cluster(0), Node::Cluster(2), class);
            assert_eq!(r.latency, lat, "{class}");
            assert_eq!(r.hops, 1);
            assert_eq!(r.links, vec![LinkId::ClusterOut(0), LinkId::ClusterIn(2)]);
        }
    }

    #[test]
    fn cache_routes_use_cache_links() {
        let t = Topology::crossbar4();
        let r = t.route(Node::Cluster(1), Node::Cache, WireClass::B);
        assert_eq!(r.links, vec![LinkId::ClusterOut(1), LinkId::CacheIn]);
        let r = t.route(Node::Cache, Node::Cluster(3), WireClass::B);
        assert_eq!(r.links, vec![LinkId::CacheOut, LinkId::ClusterIn(3)]);
    }

    #[test]
    fn hier_ring_same_quad_is_one_crossbar() {
        let t = Topology::hier16();
        let r = t.route(Node::Cluster(4), Node::Cluster(7), WireClass::B);
        assert_eq!(r.latency, 2);
        assert_eq!(r.hops, 1);
    }

    #[test]
    fn hier_ring_adjacent_quad_adds_one_hop() {
        let t = Topology::hier16();
        // Quad 0 -> quad 1.
        let r = t.route(Node::Cluster(0), Node::Cluster(4), WireClass::B);
        assert_eq!(r.latency, 2 + 4);
        assert_eq!(r.hops, 2);
        assert!(r.links.contains(&LinkId::Ring { from: 0, to: 1 }));
    }

    #[test]
    fn hier_ring_opposite_quad_is_two_hops() {
        let t = Topology::hier16();
        // Quad 0 -> quad 2: two hops either way.
        let r = t.route(Node::Cluster(0), Node::Cluster(8), WireClass::L);
        assert_eq!(r.latency, 1 + 2 * 2);
        assert_eq!(r.hops, 3);
    }

    #[test]
    fn hier_ring_picks_short_direction() {
        let t = Topology::hier16();
        // Quad 3 -> quad 0 should go 3->0 directly (one hop ccw... the ring
        // is bidirectional so 3->0 clockwise is 1 hop).
        let r = t.route(Node::Cluster(12), Node::Cache, WireClass::B);
        assert_eq!(r.hops, 2);
        assert!(r.links.contains(&LinkId::Ring { from: 3, to: 0 }));
    }

    #[test]
    fn cache_is_adjacent_to_quad0_only() {
        let t = Topology::hier16();
        assert!(t.cache_adjacent(2));
        assert!(!t.cache_adjacent(5));
        let t4 = Topology::crossbar4();
        assert!(t4.cache_adjacent(3));
    }

    #[test]
    fn all_links_enumerates_everything_once() {
        let t = Topology::hier16();
        let links = t.all_links();
        let unique: std::collections::HashSet<_> = links.iter().collect();
        assert_eq!(links.len(), unique.len());
        // 16 clusters * 2 + cache 2 + 8 ring segments.
        assert_eq!(links.len(), 16 * 2 + 2 + 8);
    }

    #[test]
    fn link_slot_matches_enumeration_order() {
        for t in [Topology::crossbar4(), Topology::hier16()] {
            for (i, &id) in t.all_links().iter().enumerate() {
                assert_eq!(t.link_slot(id), i, "{id:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "self-transfers")]
    fn self_route_panics() {
        let _ = Topology::crossbar4().route(Node::Cluster(0), Node::Cluster(0), WireClass::B);
    }
}
